"""Saving and loading sequence databases and windows.

The on-disk format is a single ``.npz`` archive (numpy's zipped container)
plus a JSON metadata blob stored inside it.  The format is intentionally
simple: the expensive artefact in this system is the *index*, and an index
is cheap to rebuild from its windows (the paper's preprocessing step), so we
persist the data and rebuild structures on load rather than pickling
pointer-heavy hierarchies.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.exceptions import StorageError
from repro.sequences.alphabet import Alphabet
from repro.sequences.database import SequenceDatabase
from repro.sequences.sequence import Sequence, SequenceKind
from repro.sequences.windows import Window

_FORMAT_VERSION = 1

PathLike = Union[str, Path]


def save_database(database: SequenceDatabase, path: PathLike) -> None:
    """Persist ``database`` (sequences, ids, kind, alphabet) to ``path``."""
    path = Path(path)
    arrays = {}
    entries = []
    for position, sequence in enumerate(database):
        arrays[f"seq_{position}"] = np.asarray(sequence.values)
        entry = {
            "seq_id": sequence.seq_id,
            "kind": sequence.kind.value,
            "alphabet": list(sequence.alphabet.symbols) if sequence.alphabet else None,
            "alphabet_name": sequence.alphabet.name if sequence.alphabet else None,
        }
        entries.append(entry)
    metadata = {
        "format_version": _FORMAT_VERSION,
        "name": database.name,
        "kind": database.kind.value,
        "entries": entries,
    }
    arrays["metadata"] = np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8)
    try:
        np.savez_compressed(path, **arrays)
    except OSError as error:
        raise StorageError(f"could not write database to {path}: {error}") from error


def load_database(path: PathLike) -> SequenceDatabase:
    """Load a database previously written by :func:`save_database`."""
    path = Path(path)
    try:
        with np.load(_with_suffix(path), allow_pickle=False) as archive:
            metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
            if metadata.get("format_version") != _FORMAT_VERSION:
                raise StorageError(
                    f"unsupported database format version {metadata.get('format_version')}"
                )
            kind = SequenceKind(metadata["kind"])
            database = SequenceDatabase(kind, name=metadata["name"])
            for position, entry in enumerate(metadata["entries"]):
                values = archive[f"seq_{position}"]
                alphabet = None
                if entry["alphabet"] is not None:
                    alphabet = Alphabet(entry["alphabet"], name=entry["alphabet_name"] or "alphabet")
                sequence = Sequence(values, kind, entry["seq_id"], alphabet)
                database.add(sequence)
            return database
    except FileNotFoundError as error:
        raise StorageError(f"no database file at {path}") from error


def save_windows(windows: List[Window], path: PathLike) -> None:
    """Persist a window collection (values + provenance) to ``path``."""
    path = Path(path)
    arrays = {}
    entries = []
    for position, window in enumerate(windows):
        arrays[f"win_{position}"] = np.asarray(window.sequence.values)
        entries.append(
            {
                "source_id": window.source_id,
                "start": window.start,
                "ordinal": window.ordinal,
                "kind": window.sequence.kind.value,
                "alphabet": (
                    list(window.sequence.alphabet.symbols) if window.sequence.alphabet else None
                ),
            }
        )
    metadata = {"format_version": _FORMAT_VERSION, "entries": entries}
    arrays["metadata"] = np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8)
    try:
        np.savez_compressed(path, **arrays)
    except OSError as error:
        raise StorageError(f"could not write windows to {path}: {error}") from error


def load_windows(path: PathLike) -> List[Window]:
    """Load windows previously written by :func:`save_windows`."""
    path = Path(path)
    try:
        with np.load(_with_suffix(path), allow_pickle=False) as archive:
            metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
            if metadata.get("format_version") != _FORMAT_VERSION:
                raise StorageError(
                    f"unsupported window format version {metadata.get('format_version')}"
                )
            windows: List[Window] = []
            for position, entry in enumerate(metadata["entries"]):
                values = archive[f"win_{position}"]
                kind = SequenceKind(entry["kind"])
                alphabet = Alphabet(entry["alphabet"]) if entry["alphabet"] else None
                sequence = Sequence(values, kind, entry["source_id"], alphabet)
                windows.append(
                    Window(
                        sequence=sequence,
                        source_id=entry["source_id"],
                        start=entry["start"],
                        ordinal=entry["ordinal"],
                    )
                )
            return windows
    except FileNotFoundError as error:
        raise StorageError(f"no window file at {path}") from error


def _with_suffix(path: Path) -> Path:
    """``np.savez`` appends ``.npz`` when missing; mirror that on load."""
    if path.suffix == ".npz" or path.exists():
        return path
    candidate = path.with_suffix(path.suffix + ".npz")
    return candidate if candidate.exists() else path
