"""Saving and loading sequence databases, windows, and matcher snapshots.

The on-disk format is a single ``.npz`` archive (numpy's zipped container)
plus a JSON metadata blob stored inside it.  Two tiers exist:

* :func:`save_database` / :func:`save_windows` persist raw data only --
  cheap, stable, and sufficient when rebuilding the index on load is
  acceptable;
* :func:`save_matcher` / :func:`load_matcher` additionally persist the
  *built* index state -- reference distance vectors, tree topology, link
  distances, the staleness counters, and the distance-cache contents -- so
  a loaded :class:`~repro.core.matcher.SubsequenceMatcher` answers queries
  immediately, with zero rebuild work and byte-identical results (including
  the :class:`~repro.core.queries.QueryStats` work counters) to the matcher
  that was saved.

Snapshots are versioned independently of the raw-data format
(``snapshot_version``); loading a snapshot written by an incompatible
version raises :class:`~repro.exceptions.StorageError` instead of
misinterpreting it.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.exceptions import StorageError
from repro.sequences.alphabet import Alphabet
from repro.sequences.database import SequenceDatabase
from repro.sequences.sequence import Sequence, SequenceKind
from repro.sequences.windows import Window

_FORMAT_VERSION = 1

#: Version of the matcher-snapshot layout (database + config + distance +
#: index structure + cache pool).  Bump on any incompatible change.
_SNAPSHOT_VERSION = 1

#: Version of the *sharded* matcher-snapshot layout: a ``shards`` manifest
#: plus one version-1 single-matcher payload per shard under an ``s{i}_``
#: array prefix.  Plain matcher snapshots keep writing version 1, so older
#: readers stay compatible with everything but sharded snapshots.
_SHARDED_SNAPSHOT_VERSION = 2

PathLike = Union[str, Path]


def _database_arrays(database: SequenceDatabase, prefix: str = "seq") -> Tuple[dict, dict]:
    """Split ``database`` into npz arrays (``{prefix}_{i}``) and JSON metadata."""
    arrays = {}
    entries = []
    for position, sequence in enumerate(database):
        arrays[f"{prefix}_{position}"] = np.asarray(sequence.values)
        entry = {
            "seq_id": sequence.seq_id,
            "kind": sequence.kind.value,
            "alphabet": list(sequence.alphabet.symbols) if sequence.alphabet else None,
            "alphabet_name": sequence.alphabet.name if sequence.alphabet else None,
        }
        entries.append(entry)
    metadata = {
        "name": database.name,
        "kind": database.kind.value,
        "entries": entries,
    }
    return arrays, metadata


def _database_from(archive, metadata: dict, prefix: str = "seq") -> SequenceDatabase:
    """Inverse of :func:`_database_arrays`."""
    kind = SequenceKind(metadata["kind"])
    database = SequenceDatabase(kind, name=metadata["name"])
    for position, entry in enumerate(metadata["entries"]):
        values = archive[f"{prefix}_{position}"]
        alphabet = None
        if entry["alphabet"] is not None:
            alphabet = Alphabet(entry["alphabet"], name=entry["alphabet_name"] or "alphabet")
        database.add(Sequence(values, kind, entry["seq_id"], alphabet))
    return database


def save_database(database: SequenceDatabase, path: PathLike) -> None:
    """Persist ``database`` (sequences, ids, kind, alphabet) to ``path``."""
    path = Path(path)
    arrays, metadata = _database_arrays(database)
    metadata["format_version"] = _FORMAT_VERSION
    arrays["metadata"] = np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8)
    try:
        np.savez_compressed(path, **arrays)
    except OSError as error:
        raise StorageError(f"could not write database to {path}: {error}") from error


def load_database(path: PathLike) -> SequenceDatabase:
    """Load a database previously written by :func:`save_database`."""
    path = Path(path)
    try:
        with np.load(_with_suffix(path), allow_pickle=False) as archive:
            metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
            if metadata.get("format_version") != _FORMAT_VERSION:
                raise StorageError(
                    f"unsupported database format version {metadata.get('format_version')}"
                )
            return _database_from(archive, metadata)
    except FileNotFoundError as error:
        raise StorageError(f"no database file at {path}") from error


def save_windows(windows: List[Window], path: PathLike) -> None:
    """Persist a window collection (values + provenance) to ``path``."""
    path = Path(path)
    arrays = {}
    entries = []
    for position, window in enumerate(windows):
        arrays[f"win_{position}"] = np.asarray(window.sequence.values)
        entries.append(
            {
                "source_id": window.source_id,
                "start": window.start,
                "ordinal": window.ordinal,
                "kind": window.sequence.kind.value,
                "alphabet": (
                    list(window.sequence.alphabet.symbols) if window.sequence.alphabet else None
                ),
            }
        )
    metadata = {"format_version": _FORMAT_VERSION, "entries": entries}
    arrays["metadata"] = np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8)
    try:
        np.savez_compressed(path, **arrays)
    except OSError as error:
        raise StorageError(f"could not write windows to {path}: {error}") from error


def load_windows(path: PathLike) -> List[Window]:
    """Load windows previously written by :func:`save_windows`."""
    path = Path(path)
    try:
        with np.load(_with_suffix(path), allow_pickle=False) as archive:
            metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
            if metadata.get("format_version") != _FORMAT_VERSION:
                raise StorageError(
                    f"unsupported window format version {metadata.get('format_version')}"
                )
            windows: List[Window] = []
            for position, entry in enumerate(metadata["entries"]):
                values = archive[f"win_{position}"]
                kind = SequenceKind(entry["kind"])
                alphabet = Alphabet(entry["alphabet"]) if entry["alphabet"] else None
                sequence = Sequence(values, kind, entry["source_id"], alphabet)
                windows.append(
                    Window(
                        sequence=sequence,
                        source_id=entry["source_id"],
                        start=entry["start"],
                        ordinal=entry["ordinal"],
                    )
                )
            return windows
    except FileNotFoundError as error:
        raise StorageError(f"no window file at {path}") from error


def _with_suffix(path: Path) -> Path:
    """``np.savez`` appends ``.npz`` when missing; mirror that on load."""
    if path.suffix == ".npz" or path.exists():
        return path
    candidate = path.with_suffix(path.suffix + ".npz")
    return candidate if candidate.exists() else path


# --------------------------------------------------------------------- #
# Matcher snapshots: database + config + built index + distance cache
# --------------------------------------------------------------------- #
def _export_cache(cache, kind: SequenceKind, prefix: str = "") -> Tuple[dict, dict]:
    """Serialize the distance-cache contents into compact npz arrays.

    The cache keys repeat the same windows and segments over and over, so
    the payloads are deduplicated into a *pool* of unique sequences (flat
    value data plus per-sequence length/dim) and the entries become three
    parallel arrays of pool positions, values, and exact flags -- in
    insertion order, which preserves the eviction order of a bounded cache.
    """
    pool_positions: Dict[Sequence, int] = {}
    pool_sequences: List[Sequence] = []
    firsts: List[int] = []
    seconds: List[int] = []
    values: List[float] = []
    exacts: List[bool] = []

    def pooled(sequence: Sequence) -> int:
        position = pool_positions.get(sequence)
        if position is None:
            position = len(pool_sequences)
            pool_positions[sequence] = position
            pool_sequences.append(sequence)
        return position

    for first, second, value, exact in cache.iter_entries():
        if first.kind is not kind or second.kind is not kind:
            continue  # defensive: a shared cache could hold foreign entries
        firsts.append(pooled(first))
        seconds.append(pooled(second))
        values.append(value)
        exacts.append(exact)

    dtype = np.int64 if kind is SequenceKind.STRING else np.float64
    lengths = np.array([len(sequence) for sequence in pool_sequences], dtype=np.int64)
    dims = np.array(
        [sequence.values.shape[1] if sequence.values.ndim == 2 else 0 for sequence in pool_sequences],
        dtype=np.int64,
    )
    if pool_sequences:
        data = np.concatenate([sequence.values.reshape(-1) for sequence in pool_sequences])
        data = np.asarray(data, dtype=dtype)
    else:
        data = np.empty(0, dtype=dtype)
    arrays = {
        f"{prefix}cache_pool_data": data,
        f"{prefix}cache_pool_lengths": lengths,
        f"{prefix}cache_pool_dims": dims,
        f"{prefix}cache_entry_first": np.array(firsts, dtype=np.int64),
        f"{prefix}cache_entry_second": np.array(seconds, dtype=np.int64),
        f"{prefix}cache_entry_values": np.array(values, dtype=np.float64),
        f"{prefix}cache_entry_exact": np.array(exacts, dtype=np.uint8),
    }
    meta = {"entries": len(firsts), "pool": len(pool_sequences)}
    return arrays, meta


def _restore_cache(archive, kind: SequenceKind, cache, prefix: str = "") -> None:
    """Seed ``cache`` with the entries exported by :func:`_export_cache`."""
    data = archive[f"{prefix}cache_pool_data"]
    lengths = archive[f"{prefix}cache_pool_lengths"]
    dims = archive[f"{prefix}cache_pool_dims"]
    pool: List[Sequence] = []
    offset = 0
    for length, dim in zip(lengths.tolist(), dims.tolist()):
        span = length * dim if dim else length
        values = data[offset : offset + span]
        offset += span
        if dim:
            values = values.reshape(length, dim)
        pool.append(Sequence(values, kind))
    firsts = archive[f"{prefix}cache_entry_first"].tolist()
    seconds = archive[f"{prefix}cache_entry_second"].tolist()
    values = archive[f"{prefix}cache_entry_values"].tolist()
    exacts = archive[f"{prefix}cache_entry_exact"].tolist()
    for first, second, value, exact in zip(firsts, seconds, values, exacts):
        cache.seed(pool[first], pool[second], value, bool(exact))


def _matcher_payload(matcher, prefix: str = "") -> Tuple[dict, dict]:
    """One matcher's snapshot as ``(arrays, metadata)`` under ``prefix``.

    Shared by the plain and sharded writers: a sharded snapshot is N of
    these payloads under ``s{i}_`` prefixes plus a manifest.
    """
    database = matcher.database
    arrays, db_meta = _database_arrays(database, prefix=f"{prefix}db_seq")
    cache_arrays, cache_meta = _export_cache(
        matcher.distance_cache, database.kind, prefix=prefix
    )
    arrays.update(cache_arrays)
    metadata = {
        "database": db_meta,
        "config": asdict(matcher.config),
        "distance": matcher.distance.name,
        "window_keys": [list(window.key) for window in matcher.windows],
        "index": {
            "name": matcher.index.index_name,
            "structure": matcher.index.export_structure(),
        },
        "cache": cache_meta,
    }
    return arrays, metadata


def _matcher_from_payload(archive, metadata: dict, prefix: str, distance, cache):
    """Restore one matcher from a payload written by :func:`_matcher_payload`."""
    # Imported here: the core layer must stay importable without storage.
    from repro.core.config import MatcherConfig
    from repro.core.matcher import SubsequenceMatcher, build_index
    from repro.core.segmentation import partition_database
    from repro.distances.cache import DistanceCache
    from repro.distances.registry import get_distance

    database = _database_from(archive, metadata["database"], prefix=f"{prefix}db_seq")
    config = MatcherConfig(**metadata["config"])
    saved_name = metadata["distance"]
    if distance is None:
        distance = get_distance(saved_name)
    elif distance.name != saved_name:
        raise StorageError(
            f"snapshot was built with distance {saved_name!r} but "
            f"{distance.name!r} was supplied"
        )
    windows = partition_database(database, config)
    saved_keys = [tuple(key) for key in metadata["window_keys"]]
    if [window.key for window in windows] != saved_keys:
        raise StorageError(
            "snapshot is internally inconsistent: the persisted window "
            "keys do not match the windows derived from the persisted "
            "database"
        )
    target_cache = (
        cache if cache is not None else DistanceCache(max_entries=config.cache_max_entries)
    )
    _restore_cache(archive, database.kind, target_cache, prefix=prefix)
    index = build_index(config, distance, target_cache)
    structure = metadata["index"]["structure"]
    structure["keys"] = [tuple(key) for key in structure["keys"]]
    payloads = {window.key: window.sequence for window in windows}
    index.restore_structure(structure, payloads)
    matcher = SubsequenceMatcher._restore(
        database, distance, config, target_cache, windows, index
    )
    matcher._owns_cache = cache is None
    return matcher


def save_matcher(matcher, path: PathLike) -> None:
    """Persist a versioned snapshot of a built matcher to ``path``.

    The snapshot contains everything the matcher's offline steps produced:
    the database itself, the :class:`~repro.core.config.MatcherConfig`, the
    distance *name* (the distance object is reconstructed through the
    registry on load -- pass an explicitly configured instance to
    :func:`load_matcher` for non-default parameters), the built index
    structure as exported by
    :meth:`~repro.indexing.base.MetricIndex.export_structure` (reference
    vectors, tree topology, exact link distances, staleness counters), and
    the distance-cache contents.  :func:`load_matcher` therefore answers
    queries immediately, with the same results *and the same work counters*
    as the matcher that was saved -- no ``refresh()``, no re-measured pairs.

    A :class:`~repro.core.sharded.ShardedMatcher` round-trips too: its
    snapshot (layout version 2) carries one single-matcher payload per
    shard plus the shard assignment and round-robin cursor, so a loaded
    sharded matcher keeps answering queries -- and routing future
    :meth:`~repro.core.sharded.ShardedMatcher.add_sequence` calls -- exactly
    like the one that was saved.
    """
    from repro.core.sharded import ShardedMatcher

    path = Path(path)
    if isinstance(matcher, ShardedMatcher):
        arrays: dict = {}
        shard_payloads = []
        for position, shard in enumerate(matcher.shards):
            shard_arrays, shard_meta = _matcher_payload(shard, prefix=f"s{position}_")
            arrays.update(shard_arrays)
            shard_payloads.append(shard_meta)
        metadata = {
            "snapshot_version": _SHARDED_SNAPSHOT_VERSION,
            "sharded": True,
            "config": asdict(matcher.config),
            "distance": matcher.distance.name,
            "database_name": matcher.database.name,
            "database_ids": matcher.database.ids(),
            "assignment": matcher._assignment,
            "assigned": matcher._assigned,
            "shards": shard_payloads,
        }
    else:
        arrays, metadata = _matcher_payload(matcher)
        metadata["snapshot_version"] = _SNAPSHOT_VERSION
    arrays["metadata"] = np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8)
    try:
        np.savez_compressed(path, **arrays)
    except OSError as error:
        raise StorageError(f"could not write matcher snapshot to {path}: {error}") from error


def load_matcher(path: PathLike, distance=None, cache=None):
    """Load a matcher snapshot written by :func:`save_matcher`.

    Parameters
    ----------
    path:
        The snapshot ``.npz``.
    distance:
        Optional pre-configured :class:`~repro.distances.base.Distance`
        instance.  When omitted, the snapshot's distance name is resolved
        through :func:`repro.distances.registry.get_distance` with default
        parameters; when given, its ``name`` must match the snapshot's.
    cache:
        Optional externally-owned cache (e.g.
        :func:`repro.distances.cache.shared_cache`) to seed with the
        snapshot's entries; when omitted the matcher owns a private cache
        sized by the snapshot's ``cache_max_entries``.  Sharded snapshots
        refuse an external cache: their shards own one private cache each
        (that independence is what keeps sharded statistics deterministic
        under parallel fan-out).

    Returns
    -------
    SubsequenceMatcher or ShardedMatcher
        Ready to answer queries with **zero rebuild work**: windows are
        re-derived from the database (pure slicing, no distance
        computations) and validated against the snapshot's key list, and
        the index structure and cache contents come straight from disk.
        The loaded matcher serves the full declarative query API --
        ``execute`` / ``execute_many`` over every spec type including
        :class:`~repro.core.queries.TopKQuery` -- with byte-identical
        results and work counters to the in-memory matcher that was saved;
        :class:`~repro.core.service.SearchService` accepts a snapshot path
        directly and defers this load to the first query.
    """
    from repro.core.config import MatcherConfig
    from repro.core.sharded import ShardedMatcher
    from repro.distances.registry import get_distance
    from repro.sequences.database import SequenceDatabase

    path = Path(path)
    try:
        with np.load(_with_suffix(path), allow_pickle=False) as archive:
            metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
            version = metadata.get("snapshot_version")
            if version == _SNAPSHOT_VERSION:
                return _matcher_from_payload(archive, metadata, "", distance, cache)
            if version == _SHARDED_SNAPSHOT_VERSION and metadata.get("sharded"):
                if cache is not None:
                    raise StorageError(
                        "sharded matcher snapshots cannot load into an external "
                        "cache; each shard owns a private one"
                    )
                config = MatcherConfig(**metadata["config"])
                saved_name = metadata["distance"]
                if distance is None:
                    distance = get_distance(saved_name)
                elif distance.name != saved_name:
                    raise StorageError(
                        f"snapshot was built with distance {saved_name!r} but "
                        f"{distance.name!r} was supplied"
                    )
                shards = [
                    _matcher_from_payload(
                        archive, shard_meta, f"s{position}_", distance, None
                    )
                    for position, shard_meta in enumerate(metadata["shards"])
                ]
                database = SequenceDatabase(
                    shards[0].database.kind if shards else None,
                    name=metadata["database_name"],
                )
                assignment = {
                    seq_id: int(shard) for seq_id, shard in metadata["assignment"].items()
                }
                for seq_id in metadata["database_ids"]:
                    database.add(shards[assignment[seq_id]].database[seq_id])
                return ShardedMatcher._restore(
                    database,
                    distance,
                    config,
                    shards,
                    assignment,
                    int(metadata["assigned"]),
                )
            hint = " (not a snapshot file?)" if version is None else ""
            raise StorageError(
                f"unsupported matcher snapshot version {version!r}; this "
                f"build reads versions {_SNAPSHOT_VERSION} and "
                f"{_SHARDED_SNAPSHOT_VERSION}{hint}"
            )
    except FileNotFoundError as error:
        raise StorageError(f"no matcher snapshot at {path}") from error
