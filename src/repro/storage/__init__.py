"""Persistence of sequence databases, windows, and matcher snapshots."""

from repro.storage.persistence import (
    save_database,
    load_database,
    save_windows,
    load_windows,
    save_matcher,
    load_matcher,
)

__all__ = [
    "save_database",
    "load_database",
    "save_windows",
    "load_windows",
    "save_matcher",
    "load_matcher",
]
