"""Persistence of sequence databases and window collections."""

from repro.storage.persistence import (
    save_database,
    load_database,
    save_windows,
    load_windows,
)

__all__ = ["save_database", "load_database", "save_windows", "load_windows"]
