"""Window extraction: the raw material of the segmentation step.

The framework partitions every database sequence into *tumbling* (i.e.
non-overlapping, fixed-length) windows of length ``lambda / 2`` and extracts
*sliding* segments of several lengths from the query.  A :class:`Window`
couples the extracted subsequence with its provenance (source sequence id,
start offset, window ordinal) so that candidate generation can later stitch
consecutive windows back into supersequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.exceptions import SequenceError
from repro.sequences.sequence import Sequence


@dataclass(frozen=True)
class Window:
    """A contiguous piece of a sequence, with provenance.

    Attributes
    ----------
    sequence:
        The extracted subsequence itself.
    source_id:
        Identifier of the sequence this window was cut from.
    start:
        Zero-based start offset of the window within the source sequence.
    ordinal:
        The index of this window in the tumbling partition of its source
        (``start // window_length`` for tumbling windows, position for
        sliding windows).  Two windows of the same source with consecutive
        ordinals are adjacent in the original sequence; candidate
        generation relies on this to concatenate matches.
    """

    sequence: Sequence
    source_id: str
    start: int
    ordinal: int = field(default=0)

    @property
    def length(self) -> int:
        """Number of elements in the window."""
        return len(self.sequence)

    @property
    def stop(self) -> int:
        """Zero-based exclusive end offset within the source sequence."""
        return self.start + self.length

    @property
    def key(self) -> tuple:
        """A hashable identity ``(source_id, start, length)``."""
        return (self.source_id, self.start, self.length)

    def is_adjacent_to(self, other: "Window") -> bool:
        """True when ``other`` starts exactly where this window ends."""
        return self.source_id == other.source_id and other.start == self.stop

    def __repr__(self) -> str:
        return (
            f"Window(source={self.source_id!r}, start={self.start}, "
            f"length={self.length}, ordinal={self.ordinal})"
        )


def tumbling_windows(
    sequence: Sequence,
    window_length: int,
    source_id: Optional[str] = None,
    include_tail: bool = False,
) -> Iterator[Window]:
    """Partition ``sequence`` into non-overlapping windows of fixed length.

    This is the paper's step 1: each database sequence ``X`` is partitioned
    into ``|X| / l`` windows ``w_i`` of length ``l = lambda / 2``.

    Parameters
    ----------
    sequence:
        The sequence to partition.
    window_length:
        Length ``l`` of every window.
    source_id:
        Overrides the sequence's own ``seq_id`` in the produced windows.
    include_tail:
        When true, a final shorter window is produced if the sequence length
        is not an exact multiple of ``window_length``.  The paper drops the
        tail; the option exists because it is occasionally useful to index
        the leftover elements too.

    Yields
    ------
    Window
        Consecutive windows with increasing ``ordinal``.
    """
    if window_length < 1:
        raise SequenceError(f"window_length must be >= 1, got {window_length}")
    origin = source_id if source_id is not None else (sequence.seq_id or "seq")
    ordinal = 0
    for start in range(0, len(sequence) - window_length + 1, window_length):
        yield Window(
            sequence=sequence.subsequence(start, start + window_length),
            source_id=origin,
            start=start,
            ordinal=ordinal,
        )
        ordinal += 1
    if include_tail:
        tail_start = (len(sequence) // window_length) * window_length
        if tail_start < len(sequence) and len(sequence) % window_length:
            yield Window(
                sequence=sequence.subsequence(tail_start, len(sequence)),
                source_id=origin,
                start=tail_start,
                ordinal=ordinal,
            )


def sliding_windows(
    sequence: Sequence,
    window_length: int,
    step: int = 1,
    source_id: Optional[str] = None,
) -> Iterator[Window]:
    """Extract overlapping windows of fixed length from ``sequence``.

    The query side of the framework (step 3) extracts *all* segments with
    lengths between ``lambda/2 - lambda0`` and ``lambda/2 + lambda0``;
    this helper produces the segments of one particular length.

    Parameters
    ----------
    sequence:
        The sequence to slide over.
    window_length:
        Length of each extracted segment.
    step:
        Offset between consecutive segment starts (1 = every position).
    source_id:
        Overrides the sequence's own ``seq_id`` in the produced windows.
    """
    if window_length < 1:
        raise SequenceError(f"window_length must be >= 1, got {window_length}")
    if step < 1:
        raise SequenceError(f"step must be >= 1, got {step}")
    origin = source_id if source_id is not None else (sequence.seq_id or "seq")
    if window_length > len(sequence):
        return
    for ordinal, start in enumerate(range(0, len(sequence) - window_length + 1, step)):
        yield Window(
            sequence=sequence.subsequence(start, start + window_length),
            source_id=origin,
            start=start,
            ordinal=ordinal,
        )
