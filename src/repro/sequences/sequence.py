"""The :class:`Sequence` type: one model for strings, time series, and trajectories.

The paper's framework makes no distinction between strings and time series
other than the alphabet and distance employed: a sequence is an ordered list
of elements drawn from an alphabet ``Sigma``, which may be a finite set of
characters, the reals, or a multi-dimensional vector space.  This module
mirrors that abstraction with a single numpy-backed class.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional, Sequence as TypingSequence, Union

import numpy as np

from repro.exceptions import SequenceError
from repro.sequences.alphabet import Alphabet


class SequenceKind(enum.Enum):
    """Broad families of sequences handled by the framework."""

    #: A string over a finite alphabet; elements are integer symbol codes.
    STRING = "string"
    #: A scalar time series; elements are real numbers.
    TIME_SERIES = "time_series"
    #: A multi-dimensional time series (e.g. a 2-D trajectory).
    TRAJECTORY = "trajectory"


ArrayLike = Union[np.ndarray, TypingSequence[float], TypingSequence[TypingSequence[float]]]


class Sequence:
    """An immutable sequence of elements with optional identity and alphabet.

    Parameters
    ----------
    values:
        A 1-D array for strings and scalar time series, or a 2-D array of
        shape ``(length, dim)`` for trajectories.
    kind:
        Which :class:`SequenceKind` this sequence belongs to.
    seq_id:
        Optional stable identifier.  Windows extracted from this sequence
        carry the identifier so that matches can be traced back to their
        source sequence.
    alphabet:
        For :attr:`SequenceKind.STRING` sequences, the alphabet used to
        encode them; required to decode the sequence back into text.

    Notes
    -----
    The underlying numpy array is kept read-only.  Subsequence extraction
    returns views where possible, so extracting every window of a long
    database sequence is cheap.
    """

    __slots__ = ("_values", "_kind", "_seq_id", "_alphabet", "_hash")

    def __init__(
        self,
        values: ArrayLike,
        kind: SequenceKind,
        seq_id: Optional[str] = None,
        alphabet: Optional[Alphabet] = None,
    ) -> None:
        array = np.asarray(values)
        if array.size == 0:
            raise SequenceError("a sequence must contain at least one element")
        if kind is SequenceKind.STRING:
            if array.ndim != 1:
                raise SequenceError("string sequences must be one-dimensional")
            array = array.astype(np.int64, copy=False)
        elif kind is SequenceKind.TIME_SERIES:
            if array.ndim != 1:
                raise SequenceError("scalar time series must be one-dimensional")
            array = array.astype(np.float64, copy=False)
        elif kind is SequenceKind.TRAJECTORY:
            if array.ndim != 2:
                raise SequenceError(
                    "trajectories must be two-dimensional arrays of shape (length, dim)"
                )
            array = array.astype(np.float64, copy=False)
        else:  # pragma: no cover - defensive, enum is closed
            raise SequenceError(f"unknown sequence kind: {kind!r}")
        array = np.ascontiguousarray(array)
        array.setflags(write=False)
        self._values = array
        self._kind = kind
        self._seq_id = seq_id
        self._alphabet = alphabet
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_string(
        cls, text: str, alphabet: Alphabet, seq_id: Optional[str] = None
    ) -> "Sequence":
        """Build a :attr:`SequenceKind.STRING` sequence from text."""
        if not text:
            raise SequenceError("cannot build a sequence from an empty string")
        return cls(alphabet.encode(text), SequenceKind.STRING, seq_id, alphabet)

    @classmethod
    def from_values(
        cls, values: Iterable[float], seq_id: Optional[str] = None
    ) -> "Sequence":
        """Build a scalar :attr:`SequenceKind.TIME_SERIES` sequence."""
        return cls(np.asarray(list(values), dtype=np.float64), SequenceKind.TIME_SERIES, seq_id)

    @classmethod
    def from_points(
        cls, points: ArrayLike, seq_id: Optional[str] = None
    ) -> "Sequence":
        """Build a :attr:`SequenceKind.TRAJECTORY` sequence from 2-D points."""
        return cls(np.asarray(points, dtype=np.float64), SequenceKind.TRAJECTORY, seq_id)

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    @property
    def values(self) -> np.ndarray:
        """The read-only numpy array of elements."""
        return self._values

    @property
    def kind(self) -> SequenceKind:
        """The :class:`SequenceKind` of this sequence."""
        return self._kind

    @property
    def seq_id(self) -> Optional[str]:
        """The identifier given at construction, if any."""
        return self._seq_id

    @property
    def alphabet(self) -> Optional[Alphabet]:
        """The alphabet for string sequences, ``None`` otherwise."""
        return self._alphabet

    @property
    def dim(self) -> int:
        """Dimensionality of each element (1 for strings and scalar series)."""
        if self._values.ndim == 1:
            return 1
        return int(self._values.shape[1])

    def __len__(self) -> int:
        return int(self._values.shape[0])

    def __iter__(self):
        return iter(self._values)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return self.subsequence(*item.indices(len(self))[:2])
        return self._values[item]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Sequence):
            return NotImplemented
        return (
            self._kind is other._kind
            and self._values.shape == other._values.shape
            and bool(np.array_equal(self._values, other._values))
        )

    def __hash__(self) -> int:
        # Memoized: sequences are immutable and the distance cache hashes
        # the same window/segment objects over and over.
        if self._hash is None:
            self._hash = hash((self._kind, self._values.tobytes()))
        return self._hash

    def __repr__(self) -> str:
        ident = f", seq_id={self._seq_id!r}" if self._seq_id else ""
        return f"Sequence(kind={self._kind.value}, length={len(self)}{ident})"

    # ------------------------------------------------------------------ #
    # Subsequences
    # ------------------------------------------------------------------ #
    def subsequence(self, start: int, stop: int) -> "Sequence":
        """Return the contiguous subsequence ``self[start:stop]``.

        ``start`` is inclusive, ``stop`` exclusive, both zero-based, matching
        Python slicing conventions (the paper uses one-based inclusive
        indices; the conversion is handled by callers that report results).
        """
        if not 0 <= start < stop <= len(self):
            raise SequenceError(
                f"invalid subsequence bounds [{start}, {stop}) for length {len(self)}"
            )
        return Sequence(self._values[start:stop], self._kind, self._seq_id, self._alphabet)

    def prefix(self, length: int) -> "Sequence":
        """Return the first ``length`` elements as a sequence."""
        return self.subsequence(0, length)

    def suffix(self, length: int) -> "Sequence":
        """Return the last ``length`` elements as a sequence."""
        return self.subsequence(len(self) - length, len(self))

    def concat(self, other: "Sequence") -> "Sequence":
        """Concatenate two sequences of the same kind."""
        if self._kind is not other._kind:
            raise SequenceError(
                f"cannot concatenate {self._kind.value} with {other._kind.value}"
            )
        values = np.concatenate([self._values, other._values], axis=0)
        return Sequence(values, self._kind, self._seq_id, self._alphabet)

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_string(self) -> str:
        """Decode a string sequence back into text."""
        if self._kind is not SequenceKind.STRING:
            raise SequenceError("only string sequences can be decoded to text")
        if self._alphabet is None:
            raise SequenceError("this string sequence carries no alphabet")
        return self._alphabet.decode(self._values)

    def to_list(self) -> list:
        """Return the elements as a plain Python list."""
        return self._values.tolist()
