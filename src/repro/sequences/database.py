"""A small in-memory sequence database.

The database is intentionally simple: it stores named sequences of a single
kind, exposes iteration and lookup, and produces the tumbling-window view the
subsequence-matching framework indexes.  Persistence is handled by
:mod:`repro.storage.persistence`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.exceptions import SequenceError
from repro.sequences.sequence import Sequence, SequenceKind
from repro.sequences.windows import Window, tumbling_windows


class SequenceDatabase:
    """A keyed collection of sequences of a single :class:`SequenceKind`.

    Parameters
    ----------
    kind:
        The kind every stored sequence must have.  Mixing strings and
        trajectories in one database would make no sense to the distance
        functions, so the database enforces homogeneity.
    name:
        Optional human-readable database name.
    """

    def __init__(self, kind: SequenceKind, name: str = "db") -> None:
        self._kind = kind
        self.name = name
        self._sequences: Dict[str, Sequence] = {}

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, sequence: Sequence, seq_id: Optional[str] = None) -> str:
        """Add ``sequence`` under ``seq_id`` (or its own id) and return the id."""
        if sequence.kind is not self._kind:
            raise SequenceError(
                f"database {self.name!r} stores {self._kind.value} sequences, "
                f"got {sequence.kind.value}"
            )
        key = seq_id if seq_id is not None else sequence.seq_id
        if key is None:
            key = f"{self.name}-{len(self._sequences)}"
        if key in self._sequences:
            raise SequenceError(f"sequence id {key!r} already exists in {self.name!r}")
        if sequence.seq_id != key:
            sequence = Sequence(sequence.values, sequence.kind, key, sequence.alphabet)
        self._sequences[key] = sequence
        return key

    def add_all(self, sequences: Iterable[Sequence]) -> List[str]:
        """Add many sequences; returns the assigned ids in order."""
        return [self.add(sequence) for sequence in sequences]

    def remove(self, seq_id: str) -> Sequence:
        """Remove and return the sequence stored under ``seq_id``."""
        try:
            return self._sequences.pop(seq_id)
        except KeyError:
            raise SequenceError(f"no sequence with id {seq_id!r} in {self.name!r}") from None

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def kind(self) -> SequenceKind:
        """The kind of the sequences stored in this database."""
        return self._kind

    def __len__(self) -> int:
        return len(self._sequences)

    def __contains__(self, seq_id: object) -> bool:
        return seq_id in self._sequences

    def __iter__(self) -> Iterator[Sequence]:
        return iter(self._sequences.values())

    def __getitem__(self, seq_id: str) -> Sequence:
        try:
            return self._sequences[seq_id]
        except KeyError:
            raise SequenceError(f"no sequence with id {seq_id!r} in {self.name!r}") from None

    def get(self, seq_id: str, default: Optional[Sequence] = None) -> Optional[Sequence]:
        """Return the sequence under ``seq_id`` or ``default``."""
        return self._sequences.get(seq_id, default)

    def ids(self) -> List[str]:
        """All sequence ids, in insertion order."""
        return list(self._sequences.keys())

    @property
    def total_length(self) -> int:
        """Sum of the lengths of all stored sequences."""
        return sum(len(sequence) for sequence in self._sequences.values())

    def __repr__(self) -> str:
        return (
            f"SequenceDatabase(name={self.name!r}, kind={self._kind.value}, "
            f"sequences={len(self)}, total_length={self.total_length})"
        )

    # ------------------------------------------------------------------ #
    # Window view
    # ------------------------------------------------------------------ #
    def windows(self, window_length: int) -> List[Window]:
        """Tumbling windows of every stored sequence (the paper's step 1)."""
        extracted: List[Window] = []
        for seq_id, sequence in self._sequences.items():
            extracted.extend(tumbling_windows(sequence, window_length, source_id=seq_id))
        return extracted

    def window_count(self, window_length: int) -> int:
        """Number of tumbling windows without materialising them."""
        return sum(len(sequence) // window_length for sequence in self._sequences.values())
