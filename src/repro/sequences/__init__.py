"""Sequence substrate: alphabets, sequences, windows, and databases.

The paper treats two kinds of sequences uniformly -- strings over a finite
alphabet (DNA, proteins) and time series over a possibly multi-dimensional,
infinite alphabet (pitch curves, trajectories).  This subpackage provides a
single :class:`~repro.sequences.sequence.Sequence` type backed by numpy that
covers both, plus the window machinery the framework's segmentation step
relies on.
"""

from repro.sequences.alphabet import (
    Alphabet,
    DNA_ALPHABET,
    PROTEIN_ALPHABET,
    PITCH_ALPHABET,
)
from repro.sequences.sequence import Sequence, SequenceKind
from repro.sequences.windows import Window, sliding_windows, tumbling_windows
from repro.sequences.database import SequenceDatabase

__all__ = [
    "Alphabet",
    "DNA_ALPHABET",
    "PROTEIN_ALPHABET",
    "PITCH_ALPHABET",
    "Sequence",
    "SequenceKind",
    "Window",
    "sliding_windows",
    "tumbling_windows",
    "SequenceDatabase",
]
