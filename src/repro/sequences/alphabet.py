"""Finite alphabets for string sequences.

An :class:`Alphabet` maps symbols (single characters) to small integer codes
and back.  Encoding strings to integer arrays lets every distance in
:mod:`repro.distances` operate on numpy arrays regardless of whether the
underlying data is a protein string or a trajectory.
"""

from __future__ import annotations

from typing import Iterable, Sequence as TypingSequence

import numpy as np

from repro.exceptions import AlphabetError


class Alphabet:
    """A finite, ordered set of single-character symbols.

    Parameters
    ----------
    symbols:
        The symbols of the alphabet, in code order.  Symbol ``symbols[i]``
        is encoded as integer ``i``.
    name:
        Human-readable name used in ``repr`` and error messages.
    """

    def __init__(self, symbols: Iterable[str], name: str = "alphabet") -> None:
        symbols = list(symbols)
        if not symbols:
            raise AlphabetError("an alphabet needs at least one symbol")
        for symbol in symbols:
            if not isinstance(symbol, str) or len(symbol) != 1:
                raise AlphabetError(
                    f"alphabet symbols must be single characters, got {symbol!r}"
                )
        if len(set(symbols)) != len(symbols):
            raise AlphabetError("alphabet symbols must be unique")
        self._symbols = tuple(symbols)
        self._codes = {symbol: code for code, symbol in enumerate(self._symbols)}
        self.name = name

    @property
    def symbols(self) -> tuple:
        """The symbols in code order."""
        return self._symbols

    @property
    def size(self) -> int:
        """Number of symbols, i.e. ``|Sigma|`` in the paper's notation."""
        return len(self._symbols)

    def __len__(self) -> int:
        return self.size

    def __contains__(self, symbol: object) -> bool:
        return symbol in self._codes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return self._symbols == other._symbols

    def __hash__(self) -> int:
        return hash(self._symbols)

    def __repr__(self) -> str:
        return f"Alphabet(name={self.name!r}, size={self.size})"

    def code(self, symbol: str) -> int:
        """Return the integer code of ``symbol``.

        Raises
        ------
        AlphabetError
            If the symbol is not part of the alphabet.
        """
        try:
            return self._codes[symbol]
        except KeyError:
            raise AlphabetError(
                f"symbol {symbol!r} is not in {self.name} (size {self.size})"
            ) from None

    def symbol(self, code: int) -> str:
        """Return the symbol for an integer ``code``."""
        if not 0 <= code < self.size:
            raise AlphabetError(
                f"code {code} is out of range for {self.name} (size {self.size})"
            )
        return self._symbols[code]

    def encode(self, text: str | TypingSequence[str]) -> np.ndarray:
        """Encode a string (or sequence of symbols) into an int array."""
        return np.fromiter(
            (self.code(symbol) for symbol in text), dtype=np.int64, count=len(text)
        )

    def decode(self, codes: Iterable[int]) -> str:
        """Decode an iterable of integer codes back into a string."""
        return "".join(self.symbol(int(code)) for code in codes)


#: The four-letter DNA alphabet used as a running example in the paper.
DNA_ALPHABET = Alphabet("ACGT", name="dna")

#: The twenty standard amino acids (PROTEINS dataset, |Sigma| = 20).
PROTEIN_ALPHABET = Alphabet("ACDEFGHIKLMNPQRSTVWY", name="protein")

#: The twelve pitch classes used by the SONGS dataset (values 0..11).
PITCH_ALPHABET = Alphabet("0123456789ab", name="pitch")
