"""Packed window tensors: same-shape sequences as one contiguous array.

The batched distance kernels (:meth:`repro.distances.base.Distance.batch`
and the counting wrapper in :mod:`repro.indexing.stats`) operate on
``(k, length, dim)`` tensors, one per shape group.  Without preparation
every batch call re-coerces each stored window with ``as_array`` and
re-stacks the group -- an O(total elements) copy per query that dominates
the runtime of short-window scans once the DP kernels themselves are
compiled.

:class:`PackedWindowStore` moves that work to insertion time: windows are
coerced once, grouped by ``(length, dim)``, and each group is lazily
stacked into one C-contiguous float64 tensor that is reused (and
fancy-indexed) by every subsequent query.  Two adapters expose the packed
layout to the batch entry points, which accept them as the optional
``packed`` argument:

* :class:`StoreGather` aligns a per-call item list (by position) with the
  store, preserving the exact per-item iteration order of the un-packed
  path -- results, counters, and cache interactions stay byte-identical;
* :class:`TensorGather` serves rows of one already-stacked tensor (a
  single shape group, e.g. a parallel work unit's payload).

Packing is purely an execution-layout change: the gathered tensors hold
the same float64 values ``np.stack`` would produce, so every kernel sees
identical input bytes.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence as TypingSequence, Tuple

import numpy as np

from repro.distances.base import as_array
from repro.exceptions import IndexError_

Shape = Tuple[int, int]


class _ShapeGroup:
    """One ``(length, dim)`` bucket: member arrays plus a cached stack."""

    __slots__ = ("keys", "arrays", "rows", "tensor")

    def __init__(self) -> None:
        self.keys: List[Hashable] = []
        self.arrays: List[np.ndarray] = []
        #: key -> row position inside :attr:`tensor` / :attr:`arrays`.
        self.rows: Dict[Hashable, int] = {}
        self.tensor: Optional[np.ndarray] = None


class PackedWindowStore:
    """Keyed storage of ``(length, dim)`` windows in packed shape groups.

    Insertion order is preserved within each group, and groups remember
    their first-insertion order, so a scan that walks the store in the
    caller's key order sees exactly the arrays it inserted.  Mutations
    invalidate only the affected group's cached tensor; ``remove`` is
    O(group size) (it compacts the row table), which is fine for the
    query-dominated workloads the store exists for.
    """

    def __init__(self) -> None:
        self._groups: Dict[Shape, _ShapeGroup] = {}
        self._shapes: Dict[Hashable, Shape] = {}

    def __len__(self) -> int:
        return len(self._shapes)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._shapes

    def add(self, key: Hashable, item: object) -> None:
        """Coerce ``item`` once and file it under its shape group."""
        if key in self._shapes:
            raise IndexError_(f"key {key!r} is already packed")
        array = np.ascontiguousarray(as_array(item))
        shape: Shape = (array.shape[0], array.shape[1])
        group = self._groups.get(shape)
        if group is None:
            group = self._groups[shape] = _ShapeGroup()
        group.rows[key] = len(group.keys)
        group.keys.append(key)
        group.arrays.append(array)
        group.tensor = None
        self._shapes[key] = shape

    def remove(self, key: Hashable) -> None:
        """Drop ``key``; empty groups disappear entirely."""
        try:
            shape = self._shapes.pop(key)
        except KeyError:
            raise IndexError_(f"key {key!r} is not packed") from None
        group = self._groups[shape]
        row = group.rows.pop(key)
        del group.keys[row]
        del group.arrays[row]
        for later in group.keys[row:]:
            group.rows[later] -= 1
        group.tensor = None
        if not group.keys:
            del self._groups[shape]

    def clear(self) -> None:
        self._groups.clear()
        self._shapes.clear()

    def shape_of(self, key: Hashable) -> Shape:
        """The ``(length, dim)`` shape of the stored window."""
        return self._shapes[key]

    def array(self, key: Hashable) -> np.ndarray:
        """The coerced ``(length, dim)`` array stored under ``key``."""
        shape = self._shapes[key]
        group = self._groups[shape]
        return group.arrays[group.rows[key]]

    def group_shapes(self) -> List[Shape]:
        """Group shapes in first-insertion order."""
        return list(self._groups.keys())

    def group_keys(self, shape: Shape) -> List[Hashable]:
        """Member keys of one group, in insertion order."""
        return list(self._groups[shape].keys)

    def group_tensor(self, shape: Shape) -> np.ndarray:
        """The group's packed ``(k, length, dim)`` tensor (cached stack)."""
        group = self._groups[shape]
        if group.tensor is None:
            group.tensor = np.stack(group.arrays)
        return group.tensor

    def row_of(self, key: Hashable) -> int:
        """Row of ``key`` inside its group's tensor."""
        return self._groups[self._shapes[key]].rows[key]

    def __repr__(self) -> str:
        return (
            f"PackedWindowStore(items={len(self._shapes)}, "
            f"groups={len(self._groups)})"
        )


class StoreGather:
    """Adapter: a positional item list backed by a :class:`PackedWindowStore`.

    ``keys[i]`` names the store entry behind position ``i`` of the batch
    call's item list.  ``gather`` fancy-indexes the group tensor, so the
    per-call cost is one index array instead of ``k`` coercions and a
    stack.
    """

    __slots__ = ("store", "keys")

    def __init__(self, store: PackedWindowStore, keys: TypingSequence[Hashable]) -> None:
        self.store = store
        self.keys = keys

    def shape_of(self, position: int) -> Shape:
        return self.store.shape_of(self.keys[position])

    def gather(self, positions: TypingSequence[int]) -> np.ndarray:
        """Stack the windows at ``positions`` (which share one shape)."""
        shape = self.store.shape_of(self.keys[positions[0]])
        tensor = self.store.group_tensor(shape)
        rows = np.fromiter(
            (self.store.row_of(self.keys[position]) for position in positions),
            dtype=np.intp,
            count=len(positions),
        )
        if rows.shape[0] == tensor.shape[0] and np.array_equal(
            rows, np.arange(tensor.shape[0])
        ):
            return tensor
        return tensor[rows]


class TensorGather:
    """Adapter: positions are rows of one pre-stacked ``(k, m, dim)`` tensor."""

    __slots__ = ("tensor",)

    def __init__(self, tensor: np.ndarray) -> None:
        self.tensor = tensor

    def shape_of(self, position: int) -> Shape:
        return (self.tensor.shape[1], self.tensor.shape[2])

    def gather(self, positions: TypingSequence[int]) -> np.ndarray:
        if len(positions) == self.tensor.shape[0] and list(positions) == list(
            range(self.tensor.shape[0])
        ):
            return self.tensor
        return self.tensor[np.asarray(positions, dtype=np.intp)]
