"""Packed window tensors: same-shape sequences as one contiguous array.

The batched distance kernels (:meth:`repro.distances.base.Distance.batch`
and the counting wrapper in :mod:`repro.indexing.stats`) operate on
``(k, length, dim)`` tensors, one per shape group.  Without preparation
every batch call re-coerces each stored window with ``as_array`` and
re-stacks the group -- an O(total elements) copy per query that dominates
the runtime of short-window scans once the DP kernels themselves are
compiled.

:class:`PackedWindowStore` moves that work to insertion time: windows are
coerced once, grouped by ``(length, dim)``, and each group is lazily
stacked into one C-contiguous float64 tensor that is reused (and
fancy-indexed) by every subsequent query.  Two adapters expose the packed
layout to the batch entry points, which accept them as the optional
``packed`` argument:

* :class:`StoreGather` aligns a per-call item list (by position) with the
  store, preserving the exact per-item iteration order of the un-packed
  path -- results, counters, and cache interactions stay byte-identical;
* :class:`TensorGather` serves rows of one already-stacked tensor (a
  single shape group, e.g. a parallel work unit's payload).

Packing is purely an execution-layout change: the gathered tensors hold
the same float64 values ``np.stack`` would produce, so every kernel sees
identical input bytes.
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, List, Optional, Sequence as TypingSequence, Tuple

import numpy as np

from repro.distances.base import as_array
from repro.exceptions import IndexError_

try:  # pragma: no cover - stdlib, but absent on exotic platforms
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]

Shape = Tuple[int, int]

#: Parent-side registry of live shared-memory exports, by segment name.
#: Consulted by :func:`live_shared_segments` (leak tests) and swept by
#: :func:`release_all_shared_exports` (pool shutdown, server teardown).
_EXPORTS: Dict[str, "SharedWindowExport"] = {}
_EXPORTS_LOCK = threading.Lock()

#: Child-side cache of attached segments (name -> SharedMemory), LRU-bounded
#: so a worker that outlives many matcher epochs does not accumulate maps.
_ATTACHED: Dict[str, object] = {}
_ATTACHED_LOCK = threading.Lock()
_ATTACH_CAPACITY = 8


class _ShapeGroup:
    """One ``(length, dim)`` bucket: member arrays plus a cached stack."""

    __slots__ = ("keys", "arrays", "rows", "tensor")

    def __init__(self) -> None:
        self.keys: List[Hashable] = []
        self.arrays: List[np.ndarray] = []
        #: key -> row position inside :attr:`tensor` / :attr:`arrays`.
        self.rows: Dict[Hashable, int] = {}
        self.tensor: Optional[np.ndarray] = None


class SharedRows:
    """A picklable reference to rows of one exported shape-group tensor.

    This is what a process-pool chunk carries instead of a pickled window
    tensor: segment name, byte offset and shape of the group inside the
    segment, plus the selected row indices (``None`` means the whole group
    in insertion order).  :meth:`resolve` reconstructs the operand tensor
    in the worker -- a zero-copy view for whole groups, one fancy-index
    gather otherwise -- after attaching to the segment at most once per
    process (see :func:`_attach_segment`).
    """

    __slots__ = ("name", "offset", "count", "length", "dim", "rows")

    def __init__(
        self,
        name: str,
        offset: int,
        count: int,
        length: int,
        dim: int,
        rows: Optional[np.ndarray],
    ) -> None:
        self.name = name
        self.offset = offset
        self.count = count
        self.length = length
        self.dim = dim
        self.rows = rows

    def __getstate__(self) -> tuple:
        return (self.name, self.offset, self.count, self.length, self.dim, self.rows)

    def __setstate__(self, state: tuple) -> None:
        self.name, self.offset, self.count, self.length, self.dim, self.rows = state

    def resolve(self) -> np.ndarray:
        """Materialize the referenced rows from the shared segment."""
        shm = _attach_segment(self.name)
        tensor = np.ndarray(
            (self.count, self.length, self.dim),
            dtype=np.float64,
            buffer=shm.buf,
            offset=self.offset,
        )
        if self.rows is None:
            return tensor
        return tensor[self.rows]

    def __repr__(self) -> str:
        selected = self.count if self.rows is None else len(self.rows)
        return (
            f"SharedRows(segment={self.name!r}, group=({self.length}, {self.dim}), "
            f"rows={selected}/{self.count})"
        )


class SharedWindowExport:
    """Parent-side shared-memory image of one :class:`PackedWindowStore` epoch.

    All group tensors are concatenated into a single segment (one syscall,
    one name to track) with a ``shape -> (offset, rows)`` layout table.
    The export lives until the store mutates (a new epoch releases and
    re-exports lazily) or an owner tears it down (:meth:`close`, matcher
    ``close()``, :func:`release_all_shared_exports`).  Creation registers
    the segment in the module registry so tests can assert that nothing
    leaks.
    """

    def __init__(self, store: "PackedWindowStore") -> None:
        if shared_memory is None:  # pragma: no cover - guarded by export_shared
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        layout: Dict[Shape, Tuple[int, int]] = {}
        sources: List[Tuple[int, np.ndarray]] = []
        total = 0
        for shape in store.group_shapes():
            tensor = store.group_tensor(shape)
            layout[shape] = (total, tensor.shape[0])
            sources.append((total, tensor))
            total += tensor.nbytes
        self._shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        for offset, tensor in sources:
            view = np.ndarray(tensor.shape, dtype=np.float64, buffer=self._shm.buf, offset=offset)
            view[...] = tensor
            del view
        self.name = self._shm.name
        self.layout = layout
        self.epoch = store._epoch
        self.nbytes = total
        self._closed = False
        with _EXPORTS_LOCK:
            _EXPORTS[self.name] = self

    def rows(self, shape: Shape, rows: Optional[np.ndarray]) -> SharedRows:
        """A :class:`SharedRows` reference into this export's ``shape`` group."""
        offset, count = self.layout[shape]
        return SharedRows(self.name, offset, count, shape[0], shape[1], rows)

    def close(self) -> None:
        """Unlink and unmap the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        with _EXPORTS_LOCK:
            _EXPORTS.pop(self.name, None)
        try:
            self._shm.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - already gone
            pass
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a view is still alive
            pass

    def __repr__(self) -> str:
        return (
            f"SharedWindowExport(segment={self.name!r}, groups={len(self.layout)}, "
            f"bytes={self.nbytes}, closed={self._closed})"
        )


def _attach_segment(name: str):
    """Attach to segment ``name``, at most once per process.

    The parent resolves its own exports straight from the registry (under
    ``fork`` the children inherit that mapping too, making attachment
    free).  Genuine attachments are LRU-cached; Python < 3.13 lacks the
    ``track=False`` flag, so the attachment is explicitly unregistered
    from the ``resource_tracker`` -- the parent owns the segment and
    unlinks it, a tracked child attachment would just produce spurious
    leaked-segment warnings at interpreter exit.
    """
    with _EXPORTS_LOCK:
        export = _EXPORTS.get(name)
    if export is not None:
        return export._shm
    with _ATTACHED_LOCK:
        shm = _ATTACHED.get(name)
        if shm is not None:
            _ATTACHED[name] = _ATTACHED.pop(name)
            return shm
    if shared_memory is None:  # pragma: no cover
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        shm = shared_memory.SharedMemory(name=name)
        if resource_tracker is not None:
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals vary
                pass
    with _ATTACHED_LOCK:
        existing = _ATTACHED.get(name)
        if existing is not None:
            shm.close()
            return existing
        _ATTACHED[name] = shm
        while len(_ATTACHED) > _ATTACH_CAPACITY:
            stale_name = next(iter(_ATTACHED))
            stale = _ATTACHED.pop(stale_name)
            try:
                stale.close()
            except BufferError:
                # A tensor view still references the mapping; keep it live.
                _ATTACHED[stale_name] = stale
                break
        return shm


def resolve_remote_tensor(tensor):
    """Materialize a batch operand: pass tensors through, resolve refs."""
    if isinstance(tensor, SharedRows):
        return tensor.resolve()
    return tensor


def live_shared_segments() -> List[str]:
    """Names of this process's live exported segments (leak checks)."""
    with _EXPORTS_LOCK:
        return sorted(_EXPORTS)


def release_all_shared_exports() -> None:
    """Tear down every live export (pool shutdown / server exit path)."""
    with _EXPORTS_LOCK:
        exports = list(_EXPORTS.values())
    for export in exports:
        export.close()


class PackedWindowStore:
    """Keyed storage of ``(length, dim)`` windows in packed shape groups.

    Insertion order is preserved within each group, and groups remember
    their first-insertion order, so a scan that walks the store in the
    caller's key order sees exactly the arrays it inserted.  Mutations
    invalidate only the affected group's cached tensor; ``remove`` is
    O(group size) (it compacts the row table), which is fine for the
    query-dominated workloads the store exists for.
    """

    def __init__(self) -> None:
        self._groups: Dict[Shape, _ShapeGroup] = {}
        self._shapes: Dict[Hashable, Shape] = {}
        #: Mutation counter; a shared-memory export belongs to one epoch.
        self._epoch = 0
        self._export: Optional[SharedWindowExport] = None
        self._export_failed_epoch: Optional[int] = None

    def __len__(self) -> int:
        return len(self._shapes)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._shapes

    def add(self, key: Hashable, item: object) -> None:
        """Coerce ``item`` once and file it under its shape group."""
        if key in self._shapes:
            raise IndexError_(f"key {key!r} is already packed")
        array = np.ascontiguousarray(as_array(item))
        shape: Shape = (array.shape[0], array.shape[1])
        group = self._groups.get(shape)
        if group is None:
            group = self._groups[shape] = _ShapeGroup()
        group.rows[key] = len(group.keys)
        group.keys.append(key)
        group.arrays.append(array)
        group.tensor = None
        self._shapes[key] = shape
        self._bump_epoch()

    def remove(self, key: Hashable) -> None:
        """Drop ``key``; empty groups disappear entirely."""
        try:
            shape = self._shapes.pop(key)
        except KeyError:
            raise IndexError_(f"key {key!r} is not packed") from None
        group = self._groups[shape]
        row = group.rows.pop(key)
        del group.keys[row]
        del group.arrays[row]
        for later in group.keys[row:]:
            group.rows[later] -= 1
        group.tensor = None
        if not group.keys:
            del self._groups[shape]
        self._bump_epoch()

    def clear(self) -> None:
        self._groups.clear()
        self._shapes.clear()
        self._bump_epoch()

    def _bump_epoch(self) -> None:
        """Start a new epoch: any shared export of the old one is stale."""
        self._epoch += 1
        if self._export is not None:
            self._export.close()
            self._export = None

    def export_shared(self) -> Optional[SharedWindowExport]:
        """The shared-memory export of the current epoch, built on demand.

        Returns ``None`` when shared memory is unusable on this platform
        (or creation failed for this epoch -- the failure is remembered so
        a busy scan does not retry per batch) or the store is empty; the
        caller then falls back to shipping materialized tensors.
        """
        if self._export is not None:
            return self._export
        if shared_memory is None or not self._groups:
            return None
        if self._export_failed_epoch == self._epoch:
            return None
        try:
            self._export = SharedWindowExport(self)
        except (OSError, ValueError):
            self._export_failed_epoch = self._epoch
            return None
        return self._export

    def release_shared(self) -> None:
        """Tear down this store's shared export, if one is live."""
        if self._export is not None:
            self._export.close()
            self._export = None

    def shape_of(self, key: Hashable) -> Shape:
        """The ``(length, dim)`` shape of the stored window."""
        return self._shapes[key]

    def array(self, key: Hashable) -> np.ndarray:
        """The coerced ``(length, dim)`` array stored under ``key``."""
        shape = self._shapes[key]
        group = self._groups[shape]
        return group.arrays[group.rows[key]]

    def group_shapes(self) -> List[Shape]:
        """Group shapes in first-insertion order."""
        return list(self._groups.keys())

    def group_keys(self, shape: Shape) -> List[Hashable]:
        """Member keys of one group, in insertion order."""
        return list(self._groups[shape].keys)

    def group_tensor(self, shape: Shape) -> np.ndarray:
        """The group's packed ``(k, length, dim)`` tensor (cached stack)."""
        group = self._groups[shape]
        if group.tensor is None:
            group.tensor = np.stack(group.arrays)
        return group.tensor

    def row_of(self, key: Hashable) -> int:
        """Row of ``key`` inside its group's tensor."""
        return self._groups[self._shapes[key]].rows[key]

    def __repr__(self) -> str:
        return (
            f"PackedWindowStore(items={len(self._shapes)}, "
            f"groups={len(self._groups)})"
        )


class StoreGather:
    """Adapter: a positional item list backed by a :class:`PackedWindowStore`.

    ``keys[i]`` names the store entry behind position ``i`` of the batch
    call's item list.  ``gather`` fancy-indexes the group tensor, so the
    per-call cost is one index array instead of ``k`` coercions and a
    stack.
    """

    __slots__ = ("store", "keys")

    def __init__(self, store: PackedWindowStore, keys: TypingSequence[Hashable]) -> None:
        self.store = store
        self.keys = keys

    def shape_of(self, position: int) -> Shape:
        return self.store.shape_of(self.keys[position])

    def group_positions(
        self, positions: TypingSequence[int]
    ) -> List[Tuple[Shape, List[int]]]:
        """Split ``positions`` into shape groups, first-occurrence order.

        Equivalent to grouping ``shape_of(position)`` position by position,
        but a single-shape store -- the common case, every fixed-length
        window extraction -- resolves in O(1) instead of two method calls
        and a dict access per position.
        """
        groups = self.store._groups
        if len(groups) == 1:
            shape = next(iter(groups))
            return [(shape, list(positions))] if len(positions) else []
        shapes = self.store._shapes
        keys = self.keys
        grouped: dict = {}
        for position in positions:
            grouped.setdefault(shapes[keys[position]], []).append(position)
        return list(grouped.items())

    def gather(self, positions: TypingSequence[int]) -> np.ndarray:
        """Stack the windows at ``positions`` (which share one shape)."""
        shape = self.store.shape_of(self.keys[positions[0]])
        tensor = self.store.group_tensor(shape)
        rows = np.fromiter(
            (self.store.row_of(self.keys[position]) for position in positions),
            dtype=np.intp,
            count=len(positions),
        )
        if rows.shape[0] == tensor.shape[0] and np.array_equal(
            rows, np.arange(tensor.shape[0])
        ):
            return tensor
        return tensor[rows]

    def remote_payload(self, positions: TypingSequence[int], require: bool = False):
        """A process-pool operand for ``positions``: a shared-memory row
        reference when the store exports one, else the gathered tensor.

        The reference resolves to byte-identical operand rows in the
        worker, so results/counters cannot depend on the transport.  With
        ``require=True`` (the forced ``transport="shared"`` setting) an
        unexportable store raises instead of silently pickling.
        """
        export = self.store.export_shared()
        if export is None:
            if require:
                raise RuntimeError(
                    "transport='shared' requires a shared-memory export, but the "
                    "packed store could not create one on this platform"
                )
            return self.gather(positions)
        shape = self.store.shape_of(self.keys[positions[0]])
        rows = np.fromiter(
            (self.store.row_of(self.keys[position]) for position in positions),
            dtype=np.intp,
            count=len(positions),
        )
        count = export.layout[shape][1]
        if rows.shape[0] == count and np.array_equal(rows, np.arange(count)):
            return export.rows(shape, None)
        return export.rows(shape, rows)


class TensorGather:
    """Adapter: positions are rows of one pre-stacked ``(k, m, dim)`` tensor."""

    __slots__ = ("tensor",)

    def __init__(self, tensor: np.ndarray) -> None:
        self.tensor = tensor

    def shape_of(self, position: int) -> Shape:
        return (self.tensor.shape[1], self.tensor.shape[2])

    def group_positions(
        self, positions: TypingSequence[int]
    ) -> List[Tuple[Shape, List[int]]]:
        """One tensor, one shape: all positions form a single group."""
        if not len(positions):
            return []
        return [((self.tensor.shape[1], self.tensor.shape[2]), list(positions))]

    def gather(self, positions: TypingSequence[int]) -> np.ndarray:
        if len(positions) == self.tensor.shape[0] and list(positions) == list(
            range(self.tensor.shape[0])
        ):
            return self.tensor
        return self.tensor[np.asarray(positions, dtype=np.intp)]

    def remote_payload(self, positions: TypingSequence[int], require: bool = False) -> np.ndarray:
        """No backing store to export; ship the materialized rows."""
        return self.gather(positions)
