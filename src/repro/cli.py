"""Command-line interface: ``repro <command>`` / ``python -m repro``.

Commands
--------
``generate``
    Generate a synthetic dataset (proteins / songs / traj) and save it.
``search``
    Run a query of a saved database against a query sequence cut from it.
    ``--type`` selects the query: ``range`` (Type I), ``longest`` (Type II,
    the default), ``nearest`` (Type III), or ``topk`` (the ``--k`` nearest
    pairs); ``--json`` emits the machine-readable result envelope
    documented in the README.  Every variant is served through the
    :class:`~repro.core.service.SearchService` facade.  With ``--snapshot``
    the positional path is a matcher snapshot (see ``snapshot``) and the
    query runs immediately, with zero index-rebuild work.
``snapshot``
    Build a matcher over a saved database and persist the *built* state
    (index structure, distance cache) as a versioned snapshot.
``add``
    Generate new sequences and add them to a saved snapshot *incrementally*
    -- windows are inserted into the persisted index without a rebuild --
    then write the snapshot back in place.
``serve``
    Put the declarative query API on the wire: serve a database or matcher
    snapshot over HTTP (``POST /search`` and friends; see
    :mod:`repro.server`).  With ``--snapshot`` the state loads lazily and
    is written back on shutdown, so mutations made over ``POST /sequences``
    survive a restart.
``distribution``
    Print the pairwise window distance distribution of a dataset
    (the paper's Figure 4 for one dataset/distance pairing).
``compare-indexes``
    Print the query-cost comparison of reference net / cover tree /
    reference-based indexing at several ranges (Figures 8-11 style).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.distributions import distance_distribution
from repro.analysis.pruning import compare_indexes
from repro.analysis.reporting import (
    format_histogram,
    format_index_stats,
    format_query_stats,
    format_table,
)
from repro.core.config import MatcherConfig, _default_executor
from repro.core.executor import EXECUTOR_NAMES, make_executor
from repro.distances.backend import KNOWN_KERNELS
from repro.core.matcher import SubsequenceMatcher
from repro.core.queries import (
    LongestSubsequenceQuery,
    NearestSubsequenceQuery,
    QueryResult,
    RangeQuery,
    TopKQuery,
)
from repro.core.service import SearchService
from repro.core.wire import result_envelope
from repro.core.sharded import ShardedMatcher
from repro.datasets.loaders import dataset_distance, dataset_windows, load_dataset
from repro.datasets.proteins import generate_protein_query
from repro.datasets.songs import generate_song_query
from repro.datasets.trajectories import generate_trajectory_query
from repro.exceptions import ReproError
from repro.indexing.cover_tree import CoverTree
from repro.indexing.linear_scan import LinearScanIndex
from repro.indexing.reference_based import ReferenceIndex
from repro.indexing.reference_net import ReferenceNet
from repro.storage.persistence import (
    load_database,
    load_matcher,
    save_database,
    save_matcher,
)


def _add_execution_flags(parser: argparse.ArgumentParser, shards: bool = True) -> None:
    """The execution-engine flags shared by the query-running commands."""
    parser.add_argument(
        "--executor",
        choices=list(EXECUTOR_NAMES),
        default=None,
        help="execution engine for probe/verify work units (default: the "
        "REPRO_EXECUTOR environment variable, else 'serial'); results and "
        "work counters are identical for every choice",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the thread/process executors (default: one per CPU)",
    )
    parser.add_argument(
        "--kernel",
        choices=list(KNOWN_KERNELS),
        default=None,
        help="distance-kernel tier for the DP sweeps (default: the "
        "REPRO_KERNEL environment variable, else 'auto'); every tier is "
        "value-exact, so results and work counters are identical",
    )
    if shards:
        parser.add_argument(
            "--shards",
            type=int,
            default=1,
            help="partition the database across N independent matcher shards "
            "and fan queries out across them (default: 1, unsharded)",
        )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Generic subsequence retrieval framework (VLDB 2012 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument("dataset", choices=["proteins", "songs", "traj"])
    generate.add_argument("output", help="output .npz path")
    generate.add_argument("--windows", type=int, default=1000, help="approximate window count")
    generate.add_argument("--seed", type=int, default=0)

    search = subparsers.add_parser("search", help="run a Type II query against a saved database")
    search.add_argument(
        "database",
        help="database .npz produced by 'generate' (or a matcher snapshot "
        "produced by 'snapshot' when --snapshot is given)",
    )
    search.add_argument("--dataset", choices=["proteins", "songs", "traj"], required=True)
    search.add_argument("--distance", default=None, help="distance name (defaults per dataset)")
    search.add_argument(
        "--type",
        dest="query_type",
        choices=["range", "longest", "nearest", "topk"],
        default="longest",
        help="query type: Type I range, Type II longest (default), Type III "
        "nearest, or the k nearest pairs (topk)",
    )
    search.add_argument(
        "--k",
        type=int,
        default=3,
        help="result count for --type topk (ignored otherwise)",
    )
    search.add_argument(
        "--radius",
        type=float,
        default=5.0,
        help="query radius; for nearest/topk this is the sweep's max_radius",
    )
    search.add_argument("--min-length", type=int, default=40)
    search.add_argument("--max-shift", type=int, default=2)
    search.add_argument("--seed", type=int, default=1)
    search.add_argument(
        "--limit",
        type=int,
        default=None,
        help="result paging: return at most this many matches",
    )
    search.add_argument(
        "--offset",
        type=int,
        default=0,
        help="result paging: skip this many matches first",
    )
    search.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable JSON result envelope (schema in the "
        "README's 'repro search --json' section) instead of the text report",
    )
    search.add_argument(
        "--request-id",
        default=None,
        help="with --json: echo this id in the envelope's request_id field "
        "(the HTTP service echoes the same field, making CLI and server "
        "envelopes byte-comparable)",
    )
    search.add_argument(
        "--no-timings",
        action="store_true",
        help="with --json: emit empty stage_seconds/cpu_stage_seconds blocks "
        "so two identical invocations produce byte-identical envelopes",
    )
    search.add_argument(
        "--stats",
        action="store_true",
        help="print the QueryStats table (pruning ratio, cache hits, "
        "prefilter counts, per-stage timings)",
    )
    search.add_argument(
        "--snapshot",
        action="store_true",
        help="treat the positional path as a matcher snapshot: the matcher "
        "(config, index structure, distance cache) loads ready-built, so "
        "--min-length/--max-shift/--shards are taken from the snapshot "
        "(--executor/--workers/--kernel still override the engine)",
    )
    _add_execution_flags(search)

    snapshot = subparsers.add_parser(
        "snapshot", help="build a matcher and persist its built index state"
    )
    snapshot.add_argument("database", help="database .npz produced by 'generate'")
    snapshot.add_argument("output", help="output snapshot .npz path")
    snapshot.add_argument("--dataset", choices=["proteins", "songs", "traj"], required=True)
    snapshot.add_argument("--distance", default=None, help="distance name (defaults per dataset)")
    snapshot.add_argument("--min-length", type=int, default=40)
    snapshot.add_argument("--max-shift", type=int, default=2)
    snapshot.add_argument(
        "--index",
        choices=["reference-net", "cover-tree", "reference-based", "vp-tree", "linear-scan"],
        default="reference-net",
    )
    _add_execution_flags(snapshot)

    add = subparsers.add_parser(
        "add", help="incrementally add generated sequences to a matcher snapshot"
    )
    add.add_argument("snapshot", help="matcher snapshot .npz produced by 'snapshot'")
    add.add_argument("--dataset", choices=["proteins", "songs", "traj"], required=True)
    add.add_argument(
        "--windows", type=int, default=20, help="approximate window count of the new data"
    )
    add.add_argument(
        "--seed",
        type=int,
        default=1,
        help="generation seed; also namespaces the new sequence ids, so use "
        "a fresh value per invocation",
    )

    serve = subparsers.add_parser(
        "serve", help="serve the query API over HTTP (see the README's API section)"
    )
    serve.add_argument(
        "database",
        help="database .npz produced by 'generate' (or a matcher snapshot "
        "produced by 'snapshot' when --snapshot is given)",
    )
    serve.add_argument(
        "--dataset",
        choices=["proteins", "songs", "traj"],
        default=None,
        help="dataset family of the database (required unless --snapshot)",
    )
    serve.add_argument("--distance", default=None, help="distance name (defaults per dataset)")
    serve.add_argument("--min-length", type=int, default=40)
    serve.add_argument("--max-shift", type=int, default=2)
    serve.add_argument(
        "--snapshot",
        action="store_true",
        help="treat the positional path as a matcher snapshot: state loads "
        "lazily on the first query and is written back on shutdown",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000)
    serve.add_argument(
        "--server-backend",
        choices=["auto", "uvicorn", "stdlib"],
        default="auto",
        help="HTTP runtime: auto picks uvicorn when installed, else the "
        "dependency-free stdlib server",
    )
    serve.add_argument(
        "--max-in-flight",
        type=int,
        default=16,
        help="admission control: reject (503) beyond this many concurrent queries",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="default per-request deadline in seconds (504 past it)",
    )
    serve.add_argument(
        "--no-snapshot-on-exit",
        action="store_true",
        help="with --snapshot: do not write the matcher state back on shutdown",
    )
    _add_execution_flags(serve)

    distribution = subparsers.add_parser(
        "distribution", help="pairwise window distance distribution (Figure 4)"
    )
    distribution.add_argument("dataset", choices=["proteins", "songs", "traj"])
    distribution.add_argument("--distance", default=None)
    distribution.add_argument("--windows", type=int, default=300)
    distribution.add_argument("--pairs", type=int, default=2000)
    distribution.add_argument("--seed", type=int, default=0)

    compare = subparsers.add_parser(
        "compare-indexes", help="query-cost comparison across indexes (Figures 8-11)"
    )
    compare.add_argument("dataset", choices=["proteins", "songs", "traj"])
    compare.add_argument("--distance", default=None)
    compare.add_argument("--windows", type=int, default=400)
    compare.add_argument("--queries", type=int, default=5)
    compare.add_argument("--radii", type=float, nargs="+", default=None)
    compare.add_argument("--seed", type=int, default=0)
    _add_execution_flags(compare, shards=False)
    return parser


def _matcher_config(args: argparse.Namespace, **overrides) -> MatcherConfig:
    """A :class:`MatcherConfig` from the shared CLI flags."""
    settings = dict(
        min_length=args.min_length,
        max_shift=args.max_shift,
        shards=getattr(args, "shards", 1),
    )
    if args.executor is not None:
        settings["executor"] = args.executor
    if args.workers is not None:
        settings["workers"] = args.workers
    if getattr(args, "kernel", None) is not None:
        settings["kernel"] = args.kernel
    settings.update(overrides)
    return MatcherConfig(**settings)


def _build_matcher(database, distance, config: MatcherConfig):
    """A sharded or plain matcher, as the configuration demands."""
    if config.shards > 1:
        return ShardedMatcher(database, distance, config)
    return SubsequenceMatcher(database, distance, config)


def _default_distance(dataset: str, distance: Optional[str]) -> str:
    if distance is not None:
        return distance
    return "levenshtein" if dataset == "proteins" else "frechet"


def _cmd_generate(args: argparse.Namespace) -> int:
    database = load_dataset(args.dataset, num_windows=args.windows, seed=args.seed)
    save_database(database, args.output)
    print(f"wrote {len(database)} sequences ({database.total_length} elements) to {args.output}")
    return 0


def _generate_query(dataset: str, database, seed: int):
    if dataset == "proteins":
        return generate_protein_query(database, seed=seed)
    if dataset == "songs":
        return generate_song_query(database, seed=seed)
    return generate_trajectory_query(database, seed=seed)


def _build_query_spec(args: argparse.Namespace):
    """The declarative spec the ``search`` flags describe."""
    paging = dict(limit=args.limit, offset=args.offset)
    if args.query_type == "range":
        return RangeQuery(radius=args.radius, **paging)
    if args.query_type == "longest":
        return LongestSubsequenceQuery(radius=args.radius, **paging)
    if args.query_type == "nearest":
        return NearestSubsequenceQuery(max_radius=args.radius, **paging)
    return TopKQuery(k=args.k, max_radius=args.radius, **paging)


def _json_envelope(
    result: QueryResult,
    service: SearchService,
    source_id: str,
    offset: int,
    request_id: Optional[str] = None,
    include_timings: bool = True,
) -> dict:
    """The ``repro search --json`` envelope (see README for the schema).

    Built by :func:`repro.core.wire.result_envelope` -- the identical
    builder behind every HTTP response -- with the CLI's query provenance
    echoed as ``query_origin``.
    """
    return result_envelope(
        result,
        service,
        request_id=request_id,
        query_origin={"source_id": source_id, "offset": int(offset)},
        include_timings=include_timings,
    )


def _cmd_search(args: argparse.Namespace) -> int:
    if args.snapshot:
        distance = None
        if args.distance is not None:
            distance = dataset_distance(args.dataset, args.distance)
        service = SearchService(args.database, distance=distance)
        matcher = service.backend  # load the snapshot now: the query cut needs it
        if args.executor is not None or args.workers is not None:
            matcher.set_executor(
                args.executor if args.executor is not None else matcher.config.executor,
                args.workers,
            )
        if args.kernel is not None:
            matcher.set_kernel(args.kernel)
        database = matcher.database
    else:
        database = load_database(args.database)
        distance_name = _default_distance(args.dataset, args.distance)
        distance = dataset_distance(args.dataset, distance_name)
        service = SearchService(_build_matcher(database, distance, _matcher_config(args)))
    query, source_id, offset = _generate_query(args.dataset, database, args.seed)
    result = service.execute(_build_query_spec(args).bind(query))
    if args.json:
        envelope = _json_envelope(
            result,
            service,
            source_id,
            offset,
            request_id=args.request_id,
            include_timings=not args.no_timings,
        )
        print(json.dumps(envelope, indent=2))
        return 0
    print(f"query cut from {source_id!r} at offset {offset}")
    if not result.matches:
        plural = "s" if args.query_type in ("range", "topk") else ""
        print(f"no similar subsequence{plural} found at this radius")
    else:
        for match in result.matches:
            print(match)
        if result.total_matches != len(result.matches):
            print(
                f"(showing {len(result.matches)} of {result.total_matches} "
                "matches; adjust --limit/--offset)"
            )
        stats = result.stats
        print(
            f"index distance computations: {stats.index_distance_computations} "
            f"(naive: {stats.naive_distance_computations}, "
            f"pruning ratio {stats.pruning_ratio:.2%})"
        )
    if args.stats:
        print()
        print(format_query_stats(result.stats, title="query statistics"))
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    database = load_database(args.database)
    distance_name = _default_distance(args.dataset, args.distance)
    distance = dataset_distance(args.dataset, distance_name)
    config = _matcher_config(args, index=args.index)
    matcher = _build_matcher(database, distance, config)
    save_matcher(matcher, args.output)
    shard_note = f", {config.shards} shards" if config.shards > 1 else ""
    print(
        f"wrote matcher snapshot ({len(matcher.windows)} windows, "
        f"distance {distance_name!r}, index {args.index!r}{shard_note}) to {args.output}"
    )
    _print_index_stats(matcher, title="index state")
    return 0


def _print_index_stats(matcher, title: str) -> None:
    """Index-state tables for a plain matcher or every shard of a sharded one."""
    if isinstance(matcher, ShardedMatcher):
        for position, shard in enumerate(matcher.shards):
            print(format_index_stats(shard.index, title=f"{title} (shard {position})"))
    else:
        print(format_index_stats(matcher.index, title=title))


def _cmd_add(args: argparse.Namespace) -> int:
    matcher = load_matcher(args.snapshot)
    fresh = load_dataset(args.dataset, num_windows=args.windows, seed=args.seed)
    windows_before = len(matcher.windows)
    for position, sequence in enumerate(fresh):
        matcher.add_sequence(sequence, seq_id=f"added-{args.seed}-{position}")
    save_matcher(matcher, args.snapshot)
    print(
        f"incrementally added {len(fresh)} sequences "
        f"({len(matcher.windows) - windows_before} windows) and updated "
        f"{args.snapshot} in place"
    )
    _print_index_stats(matcher, title="index state after update")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here: the CLI stays usable even if the server package is
    # stripped from a deployment.
    from repro.server import serve

    if args.snapshot:
        distance = None
        if args.distance is not None:
            if args.dataset is None:
                raise ReproError("--distance with --snapshot also needs --dataset")
            distance = dataset_distance(args.dataset, args.distance)
        service = SearchService(args.database, distance=distance)
    else:
        if args.dataset is None:
            raise ReproError("serve needs --dataset (or --snapshot)")
        database = load_database(args.database)
        distance_name = _default_distance(args.dataset, args.distance)
        distance = dataset_distance(args.dataset, distance_name)
        service = SearchService(_build_matcher(database, distance, _matcher_config(args)))
    serve(
        service,
        host=args.host,
        port=args.port,
        backend=args.server_backend,
        snapshot_on_exit=not args.no_snapshot_on_exit,
        max_in_flight=args.max_in_flight,
        default_timeout=args.timeout,
    )
    return 0


def _cmd_distribution(args: argparse.Namespace) -> int:
    distance_name = _default_distance(args.dataset, args.distance)
    distance = dataset_distance(args.dataset, distance_name)
    windows = dataset_windows(args.dataset, args.windows, seed=args.seed)
    sample = distance_distribution(
        [window.sequence for window in windows], distance, max_pairs=args.pairs
    )
    print(
        format_histogram(
            sample.bin_edges,
            sample.counts,
            title=f"{args.dataset} / {distance_name}: pairwise window distances",
        )
    )
    print(f"mean={sample.mean:.3f} std={sample.std:.3f} skewness={sample.skewness:.3f}")
    return 0


def _cmd_compare_indexes(args: argparse.Namespace) -> int:
    distance_name = _default_distance(args.dataset, args.distance)
    distance = dataset_distance(args.dataset, distance_name)
    windows = dataset_windows(args.dataset, args.windows, seed=args.seed)
    items = [window.sequence for window in windows]
    queries = items[: args.queries]
    sample = distance_distribution(items, distance, max_pairs=500)
    radii = args.radii or [sample.quantile(q) for q in (0.01, 0.05, 0.1, 0.25)]

    indexes = {
        "RN": ReferenceNet(distance),
        "CT": CoverTree(distance),
        "MV-5": ReferenceIndex(distance, num_references=5),
        # Linear scan with lower-bound prefilters: the baseline every figure
        # normalises against, now with the cheap-bounds-before-kernels stage.
        "LS+LB": LinearScanIndex(distance, prefilter=True),
    }
    for index in indexes.values():
        for window in windows:
            index.add(window.sequence, key=window.key)
    executor = make_executor(args.executor or _default_executor(), args.workers)
    results = compare_indexes(indexes, queries, radii, executor=executor)
    rows = [
        [result.index_name, result.radius, result.distance_computations,
         100.0 * result.fraction_of_naive, result.prefilter_evaluations,
         result.prefilter_pruned, result.cache_hits, result.matches]
        for result in results
    ]
    print(
        format_table(
            [
                "index", "radius", "distance computations", "% of naive",
                "prefilter evals", "prefilter pruned", "cache hits", "matches",
            ],
            rows,
            title=f"{args.dataset} / {distance_name}: query cost vs naive scan "
            f"(executor {executor.name}, {executor.workers} workers)",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "search": _cmd_search,
        "snapshot": _cmd_snapshot,
        "add": _cmd_add,
        "serve": _cmd_serve,
        "distribution": _cmd_distribution,
        "compare-indexes": _cmd_compare_indexes,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
