"""Exception hierarchy for the :mod:`repro` library.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SequenceError(ReproError):
    """Raised for malformed sequences, windows, or databases."""


class AlphabetError(SequenceError):
    """Raised when a symbol is not part of the expected alphabet."""


class DistanceError(ReproError):
    """Raised when a distance cannot be computed for the given inputs."""


class IncompatibleSequencesError(DistanceError):
    """Raised when two sequences cannot be compared.

    Typical causes are mismatched dimensionality (a 2-D trajectory compared
    with a scalar time series) or mismatched lengths for lockstep distances
    such as the Euclidean and Hamming distances.
    """


class IndexError_(ReproError):
    """Raised for invalid operations on a metric index.

    The trailing underscore avoids shadowing the built-in
    :class:`IndexError`, which has a completely different meaning.
    """


class ItemNotFoundError(IndexError_):
    """Raised when deleting or looking up an item absent from an index."""


class InvariantViolationError(IndexError_):
    """Raised when a structural invariant of an index is violated.

    The reference net and the cover tree expose ``check_invariants``
    methods used by the test-suite; a violation means the structure was
    corrupted by a bug, never by user input.
    """


class ConfigurationError(ReproError):
    """Raised for invalid framework configuration (lambda, lambda0, ...)."""


class QueryError(ReproError):
    """Raised when a query cannot be answered with the given parameters."""


class StorageError(ReproError):
    """Raised when persisting or loading library objects fails."""
