"""Experiment support: distance distributions, pruning ratios, space curves.

These helpers drive the figure reproductions in ``benchmarks/`` and are
public so users can run the same analyses on their own data.
"""

from repro.analysis.distributions import DistanceDistribution, distance_distribution
from repro.analysis.pruning import PruningResult, measure_pruning, compare_indexes
from repro.analysis.space import SpacePoint, space_overhead_curve
from repro.analysis.reporting import (
    format_table,
    format_histogram,
    format_index_stats,
    format_query_stats,
)

__all__ = [
    "DistanceDistribution",
    "distance_distribution",
    "PruningResult",
    "measure_pruning",
    "compare_indexes",
    "SpacePoint",
    "space_overhead_curve",
    "format_table",
    "format_histogram",
    "format_index_stats",
    "format_query_stats",
]
