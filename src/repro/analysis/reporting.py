"""Plain-text rendering of benchmark tables and histograms.

The benchmark harness prints the same rows and series the paper's figures
show; these helpers keep that printing readable without pulling in a
plotting dependency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence as TypingSequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.queries import QueryStats
    from repro.indexing.base import MetricIndex


def format_table(
    headers: TypingSequence[str],
    rows: TypingSequence[TypingSequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as an aligned plain-text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_query_stats(stats: "QueryStats", title: Optional[str] = None) -> str:
    """Render a :class:`~repro.core.queries.QueryStats` as a two-column table.

    This is what ``repro search --stats`` prints: the paper's step-4
    quantities (fresh computations vs naive, pruning ratio alpha), the
    cache and prefilter accounting, the execution engine (executor, worker
    count, shard fan-out), and the pipeline's per-stage wall-clock and CPU
    timings -- for parallel runs the CPU sum shows the work that several
    workers burned simultaneously, which wall-clock alone would hide.
    Queries that ran several step-3/4/5 passes (Type III) add a per-pass
    summary line.
    """
    rows: List[List[object]] = [
        ["executor", f"{stats.executor} ({stats.workers} workers)"],
        ["kernel backend", stats.kernel_backend],
        ["transport", stats.transport],
        ["shards", stats.shards],
        ["segments extracted (step 3)", stats.segments_extracted],
        ["segment matches (step 4)", stats.segment_matches],
        ["candidate chains (step 5)", stats.candidate_chains],
        ["index distance computations", stats.index_distance_computations],
        ["naive step-4 computations", stats.naive_distance_computations],
        ["pruning ratio alpha", f"{stats.pruning_ratio:.2%}"],
        ["verification computations", stats.verification_distance_computations],
        ["cache hits (index + verify)", stats.total_cache_hits],
        ["prefilter evaluations", stats.prefilter_evaluations],
        [
            "prefilter pruned",
            f"{stats.prefilter_pruned} ({stats.prefilter_prune_ratio:.2%})",
        ],
    ]
    for stage in ("segment", "probe", "chain", "verify"):
        if stage in stats.stage_timings:
            rows.append([f"stage time: {stage}", f"{stats.stage_timings[stage] * 1000:.2f} ms"])
        if stage in stats.cpu_stage_timings:
            rows.append(
                [f"stage cpu: {stage}", f"{stats.cpu_stage_timings[stage] * 1000:.2f} ms"]
            )
    if stats.passes:
        rows.append(["passes (radius sweep)", len(stats.passes)])
        per_pass = ", ".join(str(p.segment_matches) for p in stats.passes)
        rows.append(["segment matches per pass", per_pass])
    return format_table(["quantity", "value"], rows, title=title)


def format_index_stats(index: "MetricIndex", title: Optional[str] = None) -> str:
    """Render an index's incremental-update accounting as a table.

    This is what the CLI's ``repro add`` and ``repro snapshot`` commands
    print: the index's size, its documented staleness/rebuild policy, the
    :class:`~repro.indexing.stats.IndexStats` counters, and whether the
    structure is currently stale (i.e. the next query will rebuild first).
    """
    stats = index.update_stats
    rows: List[List[object]] = [
        ["index", index.index_name],
        ["stored items", len(index)],
        ["incremental inserts", stats.inserts],
        ["incremental deletes", stats.deletes],
        ["bulk rebuilds", stats.rebuilds],
        ["pending updates since build", stats.pending_updates],
        ["last rebuild reason", stats.last_rebuild_reason or "-"],
        ["stale (rebuilds on next query)", "yes" if index.is_stale else "no"],
        ["staleness policy", index.staleness_policy],
    ]
    return format_table(["quantity", "value"], rows, title=title)


def format_histogram(
    bin_edges: np.ndarray,
    counts: np.ndarray,
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Render a histogram as horizontal ASCII bars."""
    lines: List[str] = []
    if title:
        lines.append(title)
    peak = float(np.max(counts)) if len(counts) else 0.0
    for index in range(len(counts)):
        low = bin_edges[index]
        high = bin_edges[index + 1]
        if peak > 0:
            bar = "#" * int(round(width * counts[index] / peak))
        else:
            bar = ""
        lines.append(f"[{low:8.2f}, {high:8.2f})  {int(counts[index]):6d}  {bar}")
    return "\n".join(lines)
