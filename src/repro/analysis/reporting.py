"""Plain-text rendering of benchmark tables and histograms.

The benchmark harness prints the same rows and series the paper's figures
show; these helpers keep that printing readable without pulling in a
plotting dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence as TypingSequence

import numpy as np


def format_table(
    headers: TypingSequence[str],
    rows: TypingSequence[TypingSequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as an aligned plain-text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_histogram(
    bin_edges: np.ndarray,
    counts: np.ndarray,
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Render a histogram as horizontal ASCII bars."""
    lines: List[str] = []
    if title:
        lines.append(title)
    peak = float(np.max(counts)) if len(counts) else 0.0
    for index in range(len(counts)):
        low = bin_edges[index]
        high = bin_edges[index + 1]
        if peak > 0:
            bar = "#" * int(round(width * counts[index] / peak))
        else:
            bar = ""
        lines.append(f"[{low:8.2f}, {high:8.2f})  {int(counts[index]):6d}  {bar}")
    return "\n".join(lines)
