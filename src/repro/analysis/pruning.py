"""Query-cost measurement: distance computations relative to a linear scan.

Figures 8-11 of the paper plot, for each index and each query range, the
percentage of distance computations performed compared to the naive solution
(one distance per database window).  :func:`measure_pruning` reproduces that
measurement for one index; :func:`compare_indexes` sweeps a set of indexes
over a set of ranges, which is exactly what the figure benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence as TypingSequence

from repro.exceptions import ConfigurationError
from repro.indexing.base import MetricIndex


@dataclass
class PruningResult:
    """Query cost of one index at one range radius, averaged over queries."""

    index_name: str
    radius: float
    #: Average distance computations per query.
    distance_computations: float
    #: Average number of reported matches per query.
    matches: float
    #: Distance computations a linear scan would need (= number of items).
    naive_computations: int
    #: Average distance requests answered by an attached cache per query.
    cache_hits: float = 0.0
    #: Average lower-bound prefilter evaluations per query (probe stage).
    prefilter_evaluations: float = 0.0
    #: Average prefilter evaluations that skipped a kernel per query.
    prefilter_pruned: float = 0.0

    @property
    def fraction_of_naive(self) -> float:
        """Distance computations as a fraction of the naive linear scan."""
        if self.naive_computations == 0:
            return 0.0
        return self.distance_computations / self.naive_computations

    @property
    def pruning_ratio(self) -> float:
        """The paper's ``alpha``: fraction of computations avoided."""
        return 1.0 - self.fraction_of_naive


def measure_pruning(
    index: MetricIndex,
    queries: TypingSequence[object],
    radius: float,
    executor=None,
) -> PruningResult:
    """Average query cost of ``index`` over ``queries`` at one radius.

    Queries go through :meth:`~repro.indexing.base.MetricIndex.batch_range_query`
    (identical results to one-at-a-time queries, batched execution where the
    index supports it); the per-stage accounting -- cache hits and
    lower-bound prefilter work -- is read off the index counter alongside
    the fresh computation count the paper's figures report.  An optional
    :class:`~repro.core.executor.Executor` fans the batch out as parallel
    work units; the measured counters are identical either way (that is the
    executor contract), only the wall-clock changes.
    """
    if not queries:
        raise ConfigurationError("need at least one query to measure pruning")
    counter = index.counter
    counter.checkpoint()
    per_query = index.batch_range_query(queries, radius, executor=executor)
    total_computations = counter.since_checkpoint()
    total_cache_hits = counter.cache_hits_since_checkpoint()
    total_prefilter = counter.prefilter_since_checkpoint()
    total_pruned = counter.prefilter_pruned_since_checkpoint()
    total_matches = sum(len(matches) for matches in per_query)
    count = len(queries)
    return PruningResult(
        index_name=index.index_name,
        radius=radius,
        distance_computations=total_computations / count,
        matches=total_matches / count,
        naive_computations=len(index),
        cache_hits=total_cache_hits / count,
        prefilter_evaluations=total_prefilter / count,
        prefilter_pruned=total_pruned / count,
    )


def compare_indexes(
    indexes: Dict[str, MetricIndex],
    queries: TypingSequence[object],
    radii: TypingSequence[float],
    executor=None,
) -> List[PruningResult]:
    """Sweep every index over every radius; returns one result per cell.

    The label keys of ``indexes`` override the indexes' own ``index_name``
    so that configurations such as ``"MV-5"`` versus ``"MV-50"`` stay
    distinguishable in the output.  ``executor`` is forwarded to
    :func:`measure_pruning`.
    """
    results: List[PruningResult] = []
    for radius in radii:
        for label, index in indexes.items():
            result = measure_pruning(index, queries, radius, executor=executor)
            results.append(replace(result, index_name=label))
    return results
