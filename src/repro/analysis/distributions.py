"""Pairwise distance distributions (the paper's Figure 4).

The distribution of window-to-window distances explains most of the index
behaviour the paper reports: skewed, narrow distributions (SONGS under the
discrete Fréchet distance) blow up reference-list sizes and make pruning
hard, while spread-out distributions (TRAJ, or SONGS under ERP) keep the
structures small and selective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence as TypingSequence, Tuple

import numpy as np

from repro.distances.base import Distance
from repro.exceptions import ConfigurationError


@dataclass
class DistanceDistribution:
    """Summary of a sample of pairwise distances."""

    #: The sampled distance values.
    values: np.ndarray
    #: Histogram bin edges (length = len(counts) + 1).
    bin_edges: np.ndarray
    #: Histogram counts per bin.
    counts: np.ndarray

    @property
    def mean(self) -> float:
        """Mean of the sampled distances."""
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Standard deviation of the sampled distances."""
        return float(np.std(self.values))

    @property
    def minimum(self) -> float:
        """Smallest sampled distance."""
        return float(np.min(self.values))

    @property
    def maximum(self) -> float:
        """Largest sampled distance."""
        return float(np.max(self.values))

    @property
    def skewness(self) -> float:
        """Fisher skewness of the sample (0 for symmetric distributions)."""
        centred = self.values - self.mean
        spread = self.std
        if spread == 0:
            return 0.0
        return float(np.mean(centred ** 3) / spread ** 3)

    def quantile(self, fraction: float) -> float:
        """The ``fraction`` quantile of the sampled distances."""
        return float(np.quantile(self.values, fraction))

    def cdf(self, threshold: float) -> float:
        """Fraction of sampled pairs with distance at most ``threshold``."""
        return float(np.mean(self.values <= threshold))

    def normalised_counts(self) -> np.ndarray:
        """Histogram counts normalised to sum to one."""
        total = float(np.sum(self.counts))
        if total == 0:
            return self.counts.astype(np.float64)
        return self.counts / total


def distance_distribution(
    items: TypingSequence[object],
    distance: Distance,
    max_pairs: Optional[int] = 5000,
    bins: int = 20,
    rng: Optional[np.random.Generator] = None,
) -> DistanceDistribution:
    """Sample pairwise distances among ``items`` and histogram them.

    Parameters
    ----------
    items:
        Sequences (or windows' sequences) to compare.
    distance:
        The distance measure.
    max_pairs:
        Number of random pairs to sample; ``None`` computes every pair,
        which is quadratic and only sensible for small collections.
    bins:
        Number of histogram bins.
    rng:
        Random generator for pair sampling (fixed seed by default).
    """
    if len(items) < 2:
        raise ConfigurationError("need at least two items to sample pairwise distances")
    generator = rng or np.random.default_rng(0)
    pairs: List[Tuple[int, int]] = []
    total_pairs = len(items) * (len(items) - 1) // 2
    if max_pairs is None or max_pairs >= total_pairs:
        pairs = [(i, j) for i in range(len(items)) for j in range(i + 1, len(items))]
    else:
        chosen = set()
        while len(chosen) < max_pairs:
            i = int(generator.integers(len(items)))
            j = int(generator.integers(len(items)))
            if i == j:
                continue
            chosen.add((min(i, j), max(i, j)))
        pairs = sorted(chosen)
    values = np.fromiter(
        (distance(items[i], items[j]) for i, j in pairs), dtype=np.float64, count=len(pairs)
    )
    counts, bin_edges = np.histogram(values, bins=bins)
    return DistanceDistribution(values=values, bin_edges=bin_edges, counts=counts)
