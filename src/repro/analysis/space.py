"""Space-overhead curves (the paper's Figures 5-7).

The paper grows each dataset from a few thousand windows to its full size
and records, at each step, the number of index nodes, the average number of
parents per node, and the index size in megabytes.  :func:`space_overhead_curve`
reproduces that sweep for any index factory that exposes a ``stats()``
method (the reference net and the cover tree both do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence as TypingSequence

from repro.exceptions import ConfigurationError
from repro.indexing.base import MetricIndex
from repro.indexing.reference_net import ReferenceNetStats
from repro.sequences.windows import Window


@dataclass
class SpacePoint:
    """Space statistics of one index at one database size."""

    windows_inserted: int
    node_count: int
    parent_link_count: int
    average_parents: float
    estimated_size_mb: float


def _stats_of(index: MetricIndex) -> SpacePoint:
    stats = index.stats()  # type: ignore[attr-defined]
    if isinstance(stats, ReferenceNetStats):
        return SpacePoint(
            windows_inserted=len(index),
            node_count=stats.node_count,
            parent_link_count=stats.parent_link_count,
            average_parents=stats.average_parents,
            estimated_size_mb=stats.estimated_size_mb,
        )
    return SpacePoint(
        windows_inserted=len(index),
        node_count=int(stats.get("node_count", len(index))),
        parent_link_count=int(stats.get("parent_link_count", 0)),
        average_parents=float(stats.get("average_parents", 0.0)),
        estimated_size_mb=float(stats.get("estimated_size_bytes", 0)) / (1024.0 * 1024.0),
    )


def space_overhead_curve(
    index_factory: Callable[[], MetricIndex],
    windows: TypingSequence[Window],
    checkpoints: TypingSequence[int],
) -> List[SpacePoint]:
    """Insert windows incrementally and record space statistics.

    Parameters
    ----------
    index_factory:
        Zero-argument callable building a fresh index (with ``stats()``).
    windows:
        The windows to insert, in insertion order.
    checkpoints:
        Increasing window counts at which to record a :class:`SpacePoint`;
        every checkpoint must be at most ``len(windows)``.
    """
    ordered = sorted(set(checkpoints))
    if not ordered:
        raise ConfigurationError("need at least one checkpoint")
    if ordered[0] < 1 or ordered[-1] > len(windows):
        raise ConfigurationError(
            f"checkpoints must lie in [1, {len(windows)}], got {ordered[0]}..{ordered[-1]}"
        )
    index = index_factory()
    points: List[SpacePoint] = []
    inserted = 0
    for checkpoint in ordered:
        while inserted < checkpoint:
            window = windows[inserted]
            index.add(window.sequence, key=window.key)
            inserted += 1
        points.append(_stats_of(index))
    return points
