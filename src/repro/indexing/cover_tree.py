"""Cover tree baseline (Beygelzimer, Kakade, Langford, ICML 2006).

The cover tree is the main indexing baseline of the paper's experiments: a
linear-space metric tree whose level ``i`` nodes cover their children within
``2**i`` (scaled here by the same ``eps'`` base as the reference net so the
two structures are directly comparable).  Its key difference from the
reference net is that every node has exactly **one** parent, which is
precisely the situation Figure 2 of the paper shows can hurt range-query
pruning: an item close to two references is only discoverable through the
single list that contains it.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.distances.base import Distance, SequenceLike
from repro.distances.cache import DistanceCache
from repro.exceptions import IndexError_, InvariantViolationError
from repro.indexing.base import MetricIndex, RangeMatch
from repro.indexing.stats import DistanceCounter


class _TreeNode:
    """A cover-tree node: one item, one parent, children grouped by level."""

    __slots__ = ("key", "item", "home_level", "children", "parent", "parent_level")

    def __init__(self, key: Hashable, item: object, home_level: int) -> None:
        self.key = key
        self.item = item
        self.home_level = home_level
        self.children: Dict[int, List["_TreeNode"]] = {}
        self.parent: Optional["_TreeNode"] = None
        self.parent_level: Optional[int] = None

    def iter_children(self):
        """Yield ``(level, child)`` pairs over all children lists."""
        for level, kids in self.children.items():
            for child in kids:
                yield level, child


class CoverTree(MetricIndex):
    """Single-parent covering hierarchy for metric range queries.

    Parameters
    ----------
    distance:
        A metric distance measure.
    eps_prime:
        Base radius; level ``i`` covers within ``eps_prime * 2**i``.  Using
        the same base as :class:`~repro.indexing.reference_net.ReferenceNet`
        makes space and query comparisons apples-to-apples.
    counter:
        Optional shared distance counter.
    """

    index_name = "cover-tree"

    #: The insertion algorithm is incremental by construction and deletion
    #: re-inserts the removed node's subtree, so the tree is never stale;
    #: the one exception is removing the root, which (exactly like the
    #: reference net's Algorithm 2) rebuilds the structure eagerly.
    staleness_policy = (
        "fully incremental (single-parent covering insert, subtree "
        "re-insertion on delete); root deletion rebuilds eagerly"
    )

    def __init__(
        self,
        distance: Distance,
        eps_prime: float = 1.0,
        counter: Optional[DistanceCounter] = None,
        cache: Optional[DistanceCache] = None,
    ) -> None:
        super().__init__(distance, counter, require_metric=True, cache=cache)
        if eps_prime <= 0:
            raise IndexError_(f"eps_prime must be positive, got {eps_prime}")
        self.eps_prime = float(eps_prime)
        self._nodes: Dict[Hashable, _TreeNode] = {}
        self._root: Optional[_TreeNode] = None
        self._max_level = 1

    def radius(self, level: int) -> float:
        """Covering radius of level ``level``."""
        return self.eps_prime * (2.0 ** level)

    # ------------------------------------------------------------------ #
    # Insertion
    # ------------------------------------------------------------------ #
    def add(self, item: object, key: Optional[Hashable] = None) -> Hashable:
        if key is None:
            key = self._auto_key()
        if key in self._items:
            raise IndexError_(f"key {key!r} is already present")
        if self._root is None:
            node = _TreeNode(key, item, home_level=self._max_level)
            self._root = node
            self._nodes[key] = node
            self._items[key] = item
            return key

        root_distance = self._d(item, self._root.item)
        while root_distance > self.radius(self._max_level):
            self._max_level += 1
        self._root.home_level = self._max_level

        level = self._max_level
        candidates: List[Tuple[_TreeNode, float]] = [(self._root, root_distance)]
        while level > 1:
            threshold = self.radius(level - 1)
            next_candidates: List[Tuple[_TreeNode, float]] = [
                (node, dist) for node, dist in candidates if dist <= threshold
            ]
            seen = {node.key for node, _ in next_candidates}
            for node, _ in candidates:
                for child in node.children.get(level, ()):
                    if child.key in seen:
                        continue
                    child_distance = self._d(item, child.item)
                    if child_distance <= threshold:
                        seen.add(child.key)
                        next_candidates.append((child, child_distance))
            if not next_candidates:
                break
            candidates = next_candidates
            level -= 1

        parent, _ = min(candidates, key=lambda pair: pair[1])
        node = _TreeNode(key, item, home_level=level - 1)
        node.parent = parent
        node.parent_level = level
        parent.children.setdefault(level, []).append(node)
        self._nodes[key] = node
        self._items[key] = item
        return key

    # ------------------------------------------------------------------ #
    # Deletion
    # ------------------------------------------------------------------ #
    def remove(self, key: Hashable) -> object:
        if key not in self._nodes:
            raise IndexError_(f"no item with key {key!r} in this index")
        node = self._nodes[key]
        item = node.item

        if node is self._root:
            remaining = [
                (other.key, other.item) for other in self._nodes.values() if other is not node
            ]
            self._nodes = {}
            self._items = {}
            self._root = None
            self._max_level = 1
            for other_key, other_item in remaining:
                self.add(other_item, other_key)
            self.update_stats.record_rebuild("root deletion")
            return item

        del self._nodes[key]
        del self._items[key]
        assert node.parent is not None and node.parent_level is not None
        node.parent.children[node.parent_level].remove(node)
        if not node.parent.children[node.parent_level]:
            del node.parent.children[node.parent_level]

        # Children of a removed node lose their only parent: re-insert their
        # entire subtrees item by item so the covering invariant is restored.
        pending: List[_TreeNode] = [child for _, child in node.iter_children()]
        subtree: List[_TreeNode] = []
        while pending:
            current = pending.pop()
            subtree.append(current)
            pending.extend(child for _, child in current.iter_children())
        for member in subtree:
            del self._nodes[member.key]
            del self._items[member.key]
        for member in subtree:
            self.add(member.item, member.key)
        return item

    # ------------------------------------------------------------------ #
    # Range query
    # ------------------------------------------------------------------ #
    def _range_search(
        self, query: SequenceLike, radius: float, counting
    ) -> List[RangeMatch]:
        if radius < 0:
            raise IndexError_(f"radius must be non-negative, got {radius}")
        if self._root is None:
            return []
        matches: List[RangeMatch] = []
        stack: List[Tuple[_TreeNode, int]] = [(self._root, self._max_level)]
        while stack:
            node, level = stack.pop()
            value = counting(query, node.item)
            if value <= radius:
                matches.append(RangeMatch(node.key, node.item, value))
            subtree = self.radius(level + 1)
            if value + subtree <= radius:
                self._accept_subtree(node, matches)
                continue
            if value - subtree > radius:
                continue
            for child_level, child in node.iter_children():
                bound = self.radius(child_level) + self.radius(child_level)
                if value - bound > radius:
                    continue
                if value + bound <= radius:
                    matches.append(RangeMatch(child.key, child.item, None))
                    self._accept_subtree(child, matches)
                else:
                    stack.append((child, child.home_level))
        return matches

    def _accept_subtree(self, node: _TreeNode, matches: List[RangeMatch]) -> None:
        stack = [node]
        while stack:
            current = stack.pop()
            for _, child in current.iter_children():
                matches.append(RangeMatch(child.key, child.item, None))
                stack.append(child)

    # ------------------------------------------------------------------ #
    # Snapshot support
    # ------------------------------------------------------------------ #
    def _export_structure(self) -> dict:
        keys = list(self._items.keys())
        position = {key: index for index, key in enumerate(keys)}
        nodes = []
        for key in keys:
            node = self._nodes[key]
            # Children flattened with both the level-dict order and the
            # within-level list order preserved: traversal order -- and
            # therefore downstream match order -- depends on them.
            children = [
                [level, [position[child.key] for child in kids]]
                for level, kids in node.children.items()
            ]
            nodes.append({"home_level": node.home_level, "children": children})
        return {
            "max_level": self._max_level,
            "root_position": position[self._root.key] if self._root is not None else None,
            "nodes": nodes,
        }

    def _restore_structure(self, state: dict) -> None:
        keys = list(self._items.keys())
        records = state["nodes"]
        nodes = [
            _TreeNode(key, self._items[key], home_level=int(record["home_level"]))
            for key, record in zip(keys, records)
        ]
        for record, parent in zip(records, nodes):
            for level, child_positions in record["children"]:
                level = int(level)
                for child_position in child_positions:
                    child = nodes[int(child_position)]
                    child.parent = parent
                    child.parent_level = level
                    parent.children.setdefault(level, []).append(child)
        self._nodes = {node.key: node for node in nodes}
        self._max_level = int(state["max_level"])
        root_position = state["root_position"]
        self._root = None if root_position is None else nodes[int(root_position)]

    # ------------------------------------------------------------------ #
    # Statistics and invariants
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, float]:
        """Node and link counts (every node has at most one parent)."""
        node_count = len(self._nodes)
        link_count = sum(1 for node in self._nodes.values() if node.parent is not None)
        return {
            "node_count": node_count,
            "parent_link_count": link_count,
            "average_parents": link_count / max(node_count - 1, 1),
            "level_count": self._max_level + 1,
            "estimated_size_bytes": node_count * 112 + link_count * 16,
        }

    def check_invariants(self) -> None:
        """Verify the single-parent covering invariants."""
        if self._root is None:
            if self._nodes:
                raise InvariantViolationError("nodes present but no root")
            return
        count = 0
        stack = [self._root]
        while stack:
            current = stack.pop()
            count += 1
            for level, child in current.iter_children():
                if child.parent is not current or child.parent_level != level:
                    raise InvariantViolationError(
                        f"child {child.key!r} has inconsistent parent pointers"
                    )
                if child.home_level != level - 1:
                    raise InvariantViolationError(
                        f"child {child.key!r} home level {child.home_level} does not match "
                        f"list level {level}"
                    )
                covering = self.distance(current.item, child.item)
                if covering > self.radius(level) * (1 + 1e-9):
                    raise InvariantViolationError(
                        f"child {child.key!r} outside the covering radius of its parent"
                    )
                stack.append(child)
        if count != len(self._nodes):
            raise InvariantViolationError(
                f"tree reaches {count} nodes but {len(self._nodes)} are stored"
            )

    def __repr__(self) -> str:
        return (
            f"CoverTree(size={len(self)}, eps_prime={self.eps_prime}, "
            f"max_level={self._max_level}, distance={self.distance.name!r})"
        )
