"""Naive linear-scan "index".

The linear scan computes the distance from the query to every stored item.
It is the correctness oracle for the smarter indexes and the denominator of
the paper's query-cost figures: an index that needs ``c`` distance
computations for a query over ``n`` items achieves a pruning ratio of
``1 - c / n`` (Equation 5's ``alpha``).
"""

from __future__ import annotations

import heapq
from typing import Hashable, List, Optional

import numpy as np

from repro.distances.base import Distance, SequenceLike, as_array
from repro.distances.cache import DistanceCache
from repro.distances.recording import compute_batch_groups
from repro.exceptions import IndexError_
from repro.indexing.base import MetricIndex, QueryWorkUnit, RangeMatch
from repro.indexing.stats import DistanceCounter
from repro.sequences.packed import PackedWindowStore, StoreGather


class LinearScanIndex(MetricIndex):
    """Exhaustive scan over all stored items.

    Works with *any* distance, metric or not, which makes it the only index
    in this library usable with DTW, EDR, or LCSS.  Range queries use the
    early-abandoning :meth:`~repro.distances.base.Distance.bounded` path:
    the scan only needs each item's exact distance when it is within the
    radius, so the DP kernels may give up as soon as the radius is provably
    unreachable.

    With ``prefilter=True`` the registered lower bounds of
    :mod:`repro.distances.lower_bounds` run in front of every kernel: pairs
    whose bound already exceeds the radius are settled for O(n) instead of
    O(nm), counted on the counter's prefilter tallies.  Prefiltering never
    changes the result set (bounds are admissible); it is off by default so
    the bare index keeps the one-kernel-per-item accounting the paper's
    figures normalise against, and the matcher turns it on via
    :attr:`~repro.core.config.MatcherConfig.prefilter`.

    :meth:`batch_range_query` is genuinely batched: stored items are grouped
    by shape and each group's distances are computed by one vectorized
    kernel sweep (see :meth:`~repro.distances.base.Distance.batch`), which
    is substantially faster than per-pair calls for the elastic measures.
    Under a parallel executor every ``(query, shape group)`` pair becomes
    its own work unit -- one grouped kernel sweep -- and the units carry a
    picklable remote phase, so a process pool receives chunked batches of
    window tensors and returns raw kernel values while cache lookups and
    accounting stay in the parent.
    """

    index_name = "linear-scan"

    #: The scan keeps no structure beyond the item dict, so inserts and
    #: deletes are plain dict operations and the index is never stale.
    staleness_policy = "stateless scan; inserts/deletes are O(1), never rebuilds"

    def __init__(
        self,
        distance: Distance,
        counter: Optional[DistanceCounter] = None,
        cache: Optional[DistanceCache] = None,
        prefilter: bool = False,
    ) -> None:
        super().__init__(
            distance, counter, require_metric=False, cache=cache, prefilter=prefilter
        )
        self._packed = PackedWindowStore()
        #: Packing needs array-coercible items; the first item that is not
        #: (coercion errors surface at query time, as before) switches the
        #: whole scan back to the per-call stacking path.
        self._packed_ok = True

    def add(self, item: object, key: Optional[Hashable] = None) -> Hashable:
        if key is None:
            key = self._auto_key()
        if key in self._items:
            raise IndexError_(f"key {key!r} is already present")
        self._items[key] = item
        if self._packed_ok:
            try:
                self._packed.add(key, item)
            except Exception:
                self._packed_ok = False
                self._packed.clear()
        return key

    def remove(self, key: Hashable) -> object:
        try:
            item = self._items.pop(key)
        except KeyError:
            raise IndexError_(f"no item with key {key!r} in this index") from None
        if self._packed_ok and key in self._packed:
            self._packed.remove(key)
        return item

    def _restore_structure(self, state: dict) -> None:
        self._packed = PackedWindowStore()
        self._packed_ok = True
        for key, item in self._items.items():
            try:
                self._packed.add(key, item)
            except Exception:
                self._packed_ok = False
                self._packed.clear()
                break

    def close(self) -> None:
        """Release the shared-memory window export (if one was created)."""
        self._packed.release_shared()

    def _scan_gather(self, keys: List[Hashable]) -> Optional[StoreGather]:
        """A packed gather over ``keys``, or ``None`` when packing is off."""
        if not self._packed_ok:
            return None
        return StoreGather(self._packed, keys)

    def _range_search(
        self, query: SequenceLike, radius: float, counting
    ) -> List[RangeMatch]:
        if radius < 0:
            raise IndexError_(f"radius must be non-negative, got {radius}")
        matches: List[RangeMatch] = []
        for key, item in self._items.items():
            value = counting.bounded(query, item, radius)
            if value <= radius:
                matches.append(RangeMatch(key, item, value))
        return matches

    def _serial_batch_range_query(
        self, queries: List[SequenceLike], radius: float
    ) -> List[List[RangeMatch]]:
        """One grouped kernel sweep per query instead of per-pair calls.

        Results are identical to :meth:`range_query` (same keys, same
        distances, insertion order preserved); only the execution changes:
        cache lookups, then one vectorized lower-bound pass (when
        prefiltering is enabled), then one batched kernel per same-shape
        group of stored items.
        """
        if radius < 0:
            raise IndexError_(f"radius must be non-negative, got {radius}")
        keys = list(self._items.keys())
        items = [self._items[key] for key in keys]
        packed = self._scan_gather(keys)
        results: List[List[RangeMatch]] = []
        for query in queries:
            matches: List[RangeMatch] = []
            if items:
                values = self._d_batch(query, items, cutoff=radius, packed=packed)
                for key, item, value in zip(keys, items, values):
                    if value <= radius:
                        matches.append(RangeMatch(key, item, float(value)))
            results.append(matches)
        return results

    def query_work_units(
        self, queries: List[SequenceLike], radius: float
    ) -> List[QueryWorkUnit]:
        """One work unit per ``(query, shape group)``: a single kernel sweep.

        Each unit runs cache lookups over its group, prefilters and sweeps
        the pending pairs with one batched kernel, and reports matches
        keyed by scan position so the merged result reproduces the serial
        insertion order.  The pure kernel phase is exposed as a picklable
        remote call (:func:`~repro.distances.recording.compute_batch_groups`)
        for the process executor.
        """
        keys = list(self._items.keys())
        items = [self._items[key] for key in keys]
        groups: dict = {}
        for scan_position, item in enumerate(items):
            if self._packed_ok:
                shape = self._packed.shape_of(keys[scan_position])
            else:
                shape = as_array(item).shape
            groups.setdefault(shape, []).append(scan_position)

        units: List[QueryWorkUnit] = []
        for position, query in enumerate(queries):
            try:
                query_length = len(query)
            except TypeError:
                query_length = 1
            for shape, scan_positions in groups.items():
                group_keys = [keys[i] for i in scan_positions]
                group_items = [items[i] for i in scan_positions]
                group_packed = self._scan_gather(group_keys)
                # Scheduling weight: windows x DP cells (window length x
                # query length) -- proportional to the group's kernel work.
                cost = float(len(scan_positions)) * float(shape[0]) * float(query_length)

                def matches_from(values, group_keys=group_keys, group_items=group_items,
                                 scan_positions=scan_positions):
                    found = []
                    for scan_position, key, item, value in zip(
                        scan_positions, group_keys, group_items, values
                    ):
                        if value <= radius:
                            found.append((scan_position, RangeMatch(key, item, float(value))))
                    return found

                def search(counting, query=query, group_items=group_items,
                           matches_from=matches_from, group_packed=group_packed):
                    values = counting.batch(
                        query, group_items, cutoff=radius, packed=group_packed
                    )
                    return matches_from(values)

                def prepare(counting, transport, query=query, group_items=group_items,
                            group_packed=group_packed):
                    if group_packed is None or transport == "pickle":
                        remote = False
                    elif transport == "shared":
                        remote = "shared"
                    else:  # "auto" (or unspecified): shared when exportable
                        remote = "auto"
                    context = counting.batch_prepare(
                        query, group_items, radius, packed=group_packed, remote=remote
                    )
                    return context, context.payload()

                def finish(counting, context, out, matches_from=matches_from):
                    values = counting.batch_finish(context, out)
                    return matches_from(values)

                units.append(
                    QueryWorkUnit(
                        position=position,
                        search=search,
                        prepare=prepare,
                        remote=compute_batch_groups,
                        finish=finish,
                        label=f"{self.index_name} {shape}",
                        cost=cost,
                    )
                )
        return units

    def knn_scan(
        self, query: SequenceLike, k: int, chunk_size: int = 64
    ) -> List[RangeMatch]:
        """The ``k`` nearest stored items by one streaming batched scan.

        Unlike :meth:`knn_query` (repeated range queries with growing
        radius), this walks the store once in scan order, chunk by chunk,
        and hands each chunk's kernel a *per-item abandon threshold vector*
        set to the current k-th best distance -- so the DP sweeps abandon
        ever earlier as the heap tightens, and no radius schedule has to be
        guessed.  Returned matches carry exact distances (a bounded kernel
        value is exact whenever it is at most its threshold, and only values
        strictly below the threshold enter the heap), sorted nearest first
        with ties broken by scan order.  All kernel work is counted on the
        index counter and flows through the shared cache, like any other
        query.
        """
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        if chunk_size < 1:
            raise IndexError_(f"chunk_size must be >= 1, got {chunk_size}")
        if not self._items:
            return []
        self.prepare_queries()
        keys = list(self._items.keys())
        items = [self._items[key] for key in keys]
        wanted = min(k, len(items))
        # Max-heap of the k best so far: entries are (-distance, -position),
        # so the root is the current k-th best and, among equal distances,
        # the latest-seen item is the one evicted first.
        heap: List[tuple] = []
        threshold: Optional[float] = None
        for start in range(0, len(items), chunk_size):
            stop = min(start + chunk_size, len(items))
            chunk_keys = keys[start:stop]
            chunk_items = items[start:stop]
            cutoff = (
                None
                if threshold is None
                else np.full(len(chunk_items), threshold, dtype=np.float64)
            )
            values = self._counting.batch(
                query, chunk_items, cutoff=cutoff, packed=self._scan_gather(chunk_keys)
            )
            for offset, value in enumerate(values):
                value = float(value)
                if len(heap) < wanted:
                    heapq.heappush(heap, (-value, -(start + offset)))
                    if len(heap) == wanted:
                        threshold = -heap[0][0]
                elif threshold is not None and value < threshold:
                    heapq.heapreplace(heap, (-value, -(start + offset)))
                    threshold = -heap[0][0]
        ranked = sorted((-neg_value, -neg_pos) for neg_value, neg_pos in heap)
        return [
            RangeMatch(keys[position], items[position], distance)
            for distance, position in ranked
        ]
