"""Naive linear-scan "index".

The linear scan computes the distance from the query to every stored item.
It is the correctness oracle for the smarter indexes and the denominator of
the paper's query-cost figures: an index that needs ``c`` distance
computations for a query over ``n`` items achieves a pruning ratio of
``1 - c / n`` (Equation 5's ``alpha``).
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from repro.distances.base import Distance, SequenceLike
from repro.distances.cache import DistanceCache
from repro.exceptions import IndexError_
from repro.indexing.base import MetricIndex, RangeMatch
from repro.indexing.stats import DistanceCounter


class LinearScanIndex(MetricIndex):
    """Exhaustive scan over all stored items.

    Works with *any* distance, metric or not, which makes it the only index
    in this library usable with DTW, EDR, or LCSS.  Range queries use the
    early-abandoning :meth:`~repro.distances.base.Distance.bounded` path:
    the scan only needs each item's exact distance when it is within the
    radius, so the DP kernels may give up as soon as the radius is provably
    unreachable.
    """

    index_name = "linear-scan"

    def __init__(
        self,
        distance: Distance,
        counter: Optional[DistanceCounter] = None,
        cache: Optional[DistanceCache] = None,
    ) -> None:
        super().__init__(distance, counter, require_metric=False, cache=cache)

    def add(self, item: object, key: Optional[Hashable] = None) -> Hashable:
        if key is None:
            key = self._auto_key()
        if key in self._items:
            raise IndexError_(f"key {key!r} is already present")
        self._items[key] = item
        return key

    def remove(self, key: Hashable) -> object:
        try:
            return self._items.pop(key)
        except KeyError:
            raise IndexError_(f"no item with key {key!r} in this index") from None

    def range_query(self, query: SequenceLike, radius: float) -> List[RangeMatch]:
        if radius < 0:
            raise IndexError_(f"radius must be non-negative, got {radius}")
        matches: List[RangeMatch] = []
        for key, item in self._items.items():
            value = self._d_bounded(query, item, radius)
            if value <= radius:
                matches.append(RangeMatch(key, item, value))
        return matches
