"""Reference-based indexing (Venkateswaran et al., VLDB 2006 / VLDB J. 2008).

The second baseline of the paper's experiments: pick ``k`` reference objects,
pre-compute the distance from every database item to every reference, and at
query time use the triangle inequality to prune (or accept) items without
computing their distance to the query:

* lower bound:  ``max_r | d(Q, r) - d(item, r) |``  -- if it exceeds the
  query radius the item cannot match;
* upper bound:  ``min_r ( d(Q, r) + d(item, r) )``  -- if it is within the
  radius the item surely matches.

Only items whose bounds straddle the radius need an exact distance
computation.  Reference selection strategies:

``select_max_variance`` (MV)
    Greedy selection of the references whose distances to a data sample have
    the largest variance -- the strategy the paper uses because it needs no
    training queries.
``select_max_pruning`` (MP)
    Greedy selection maximising the number of sample (query, item) pairs
    pruned -- closer to Venkateswaran et al.'s Maximum Pruning, which needs
    a query sample and is correspondingly more expensive to build.

The main drawback the paper highlights is space: the index stores ``n * k``
distances, so matching the reference net's linear footprint allows only a
handful of references (MV-5), while generous configurations (MV-50, MV-20)
cost an order of magnitude more memory.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence as TypingSequence

import numpy as np

from repro.distances.base import Distance, SequenceLike
from repro.distances.cache import DistanceCache
from repro.exceptions import IndexError_
from repro.indexing.base import MetricIndex, RangeMatch
from repro.indexing.stats import DistanceCounter


def select_max_variance(
    items: TypingSequence[object],
    distance: Distance,
    count: int,
    sample_size: int = 200,
    rng: Optional[np.random.Generator] = None,
) -> List[int]:
    """Maximum-Variance reference selection.

    Returns the indexes (into ``items``) of ``count`` references, chosen
    greedily as the items whose distances to a random data sample have the
    largest variance.  High-variance references spread the data over a wide
    distance range, which tightens the triangle-inequality bounds.
    """
    if count < 1:
        raise IndexError_(f"count must be >= 1, got {count}")
    if not items:
        raise IndexError_("cannot select references from an empty collection")
    generator = rng or np.random.default_rng(0)
    count = min(count, len(items))
    sample_indexes = generator.choice(
        len(items), size=min(sample_size, len(items)), replace=False
    )
    sample = [items[index] for index in sample_indexes]
    variances = np.empty(len(items), dtype=np.float64)
    for index, candidate in enumerate(items):
        values = np.fromiter(
            (distance(candidate, other) for other in sample),
            dtype=np.float64,
            count=len(sample),
        )
        variances[index] = float(np.var(values))
    order = np.argsort(variances)[::-1]
    return [int(index) for index in order[:count]]


def select_max_pruning(
    items: TypingSequence[object],
    distance: Distance,
    count: int,
    sample_queries: TypingSequence[object],
    radius: float,
    candidate_pool: int = 50,
    rng: Optional[np.random.Generator] = None,
) -> List[int]:
    """Maximum-Pruning reference selection (needs a query sample).

    Greedily picks references that maximise the number of (query, item)
    pairs pruned by the lower bound at the given ``radius``.  The candidate
    pool is sampled to keep the training cost manageable, mirroring the
    paper's remark that MP needs a training step the reference net avoids.
    """
    if count < 1:
        raise IndexError_(f"count must be >= 1, got {count}")
    if not items:
        raise IndexError_("cannot select references from an empty collection")
    if not sample_queries:
        raise IndexError_("Maximum-Pruning selection needs at least one sample query")
    generator = rng or np.random.default_rng(0)
    count = min(count, len(items))
    pool_indexes = generator.choice(
        len(items), size=min(candidate_pool, len(items)), replace=False
    )

    # Pre-compute candidate-to-item and candidate-to-query distances.
    item_distances: Dict[int, np.ndarray] = {}
    query_distances: Dict[int, np.ndarray] = {}
    for index in pool_indexes:
        candidate = items[index]
        item_distances[int(index)] = np.fromiter(
            (distance(candidate, other) for other in items), dtype=np.float64, count=len(items)
        )
        query_distances[int(index)] = np.fromiter(
            (distance(candidate, query) for query in sample_queries),
            dtype=np.float64,
            count=len(sample_queries),
        )

    selected: List[int] = []
    pruned = np.zeros((len(sample_queries), len(items)), dtype=bool)
    for _ in range(count):
        best_index = None
        best_gain = -1
        for index in pool_indexes:
            index = int(index)
            if index in selected:
                continue
            bounds = np.abs(
                query_distances[index][:, None] - item_distances[index][None, :]
            )
            newly = np.logical_and(bounds > radius, np.logical_not(pruned))
            gain = int(np.count_nonzero(newly))
            if gain > best_gain:
                best_gain = gain
                best_index = index
        if best_index is None:
            break
        selected.append(best_index)
        bounds = np.abs(
            query_distances[best_index][:, None] - item_distances[best_index][None, :]
        )
        pruned |= bounds > radius
    return selected


class ReferenceIndex(MetricIndex):
    """Reference-based metric index with pluggable reference selection.

    Parameters
    ----------
    distance:
        A metric distance measure.
    num_references:
        How many references to keep (``k``).  Space grows as ``n * k``.
    selector:
        Either ``"max_variance"`` (default), or a callable
        ``(items, distance, count) -> list of item indexes`` for custom
        strategies (``select_max_pruning`` can be adapted via a lambda).
    counter:
        Optional shared distance counter.

    Notes
    -----
    References are (re)selected lazily on the first query after the content
    changed, so bulk loading does not pay the selection cost repeatedly.
    Pre-computing the reference distances of freshly inserted items is part
    of index construction and is *not* charged to the query-time counter.
    """

    index_name = "reference-based"

    #: Inserts extend the distance matrix against the *current* references
    #: in place; the references themselves are only re-elected (a bulk
    #: rebuild, lazily on the next query) once the updates absorbed since
    #: the last election exceed ``reelect_after`` -- stale references never
    #: threaten correctness (the triangle-inequality bounds stay admissible
    #: for any reference set), only pruning power.
    staleness_policy = (
        "inserts/deletes absorbed against current references; re-elects "
        "references after `reelect_after` pending updates (default "
        "max(16, n/4) at build time), lazily on the next query"
    )

    def __init__(
        self,
        distance: Distance,
        num_references: int = 5,
        selector: "str | Callable" = "max_variance",
        counter: Optional[DistanceCounter] = None,
        selection_sample_size: int = 200,
        rng: Optional[np.random.Generator] = None,
        cache: Optional[DistanceCache] = None,
        reelect_after: Optional[int] = None,
    ) -> None:
        super().__init__(distance, counter, require_metric=True, cache=cache)
        if num_references < 1:
            raise IndexError_(f"num_references must be >= 1, got {num_references}")
        if reelect_after is not None and reelect_after < 1:
            raise IndexError_(f"reelect_after must be >= 1, got {reelect_after}")
        self.num_references = int(num_references)
        self.selector = selector
        self.selection_sample_size = int(selection_sample_size)
        self.reelect_after = reelect_after
        self._rng = rng or np.random.default_rng(0)
        self._reference_keys: List[Hashable] = []
        self._reference_items: List[object] = []
        #: key -> vector of distances to the current references.
        self._item_vectors: Dict[Hashable, np.ndarray] = {}
        self._dirty = True
        #: Pending-update budget before re-election, fixed at build time.
        self._reelect_threshold: Optional[int] = reelect_after
        self._stale_reason: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Content management
    # ------------------------------------------------------------------ #
    def add(self, item: object, key: Optional[Hashable] = None) -> Hashable:
        if key is None:
            key = self._auto_key()
        if key in self._items:
            raise IndexError_(f"key {key!r} is already present")
        self._items[key] = item
        if self._dirty or not self._reference_items:
            # References will be (re)selected lazily; vectors computed then.
            self._dirty = True
        else:
            self._item_vectors[key] = self._vector(item, count_distance=False)
        return key

    def remove(self, key: Hashable) -> object:
        try:
            item = self._items.pop(key)
        except KeyError:
            raise IndexError_(f"no item with key {key!r} in this index") from None
        self._item_vectors.pop(key, None)
        if key in self._reference_keys:
            self._dirty = True
        return item

    @property
    def is_stale(self) -> bool:
        """True when the next query will re-elect references first."""
        return self._dirty

    def _apply_staleness_policy(self) -> None:
        """Re-elect references once the pending-update budget is exhausted."""
        if self._dirty or self._reelect_threshold is None:
            return
        pending = self.update_stats.pending_updates
        if pending > self._reelect_threshold:
            self._dirty = True
            self._stale_reason = f"reference re-election after {pending} pending updates"

    def _vector(self, item: object, count_distance: bool) -> np.ndarray:
        values = np.empty(len(self._reference_items), dtype=np.float64)
        for index, reference in enumerate(self._reference_items):
            if count_distance:
                values[index] = self._d(item, reference)
            else:
                values[index] = self.distance(item, reference)
        return values

    def build(self) -> None:
        """Select references and pre-compute every item's distance vector.

        Construction-time distance computations are not charged to the
        query counter, mirroring how the paper reports query costs only.
        """
        reason = self._stale_reason or "build"
        self._stale_reason = None
        if not self._items:
            self._reference_keys = []
            self._reference_items = []
            self._item_vectors = {}
            self._dirty = False
            self.update_stats.record_rebuild(reason)
            return
        keys = list(self._items.keys())
        items = [self._items[key] for key in keys]
        if callable(self.selector):
            chosen = self.selector(items, self.distance, self.num_references)
        elif self.selector == "max_variance":
            chosen = select_max_variance(
                items,
                self.distance,
                self.num_references,
                sample_size=self.selection_sample_size,
                rng=self._rng,
            )
        else:
            raise IndexError_(f"unknown reference selector {self.selector!r}")
        self._reference_keys = [keys[index] for index in chosen]
        self._reference_items = [items[index] for index in chosen]
        self._item_vectors = {
            key: self._vector(self._items[key], count_distance=False) for key in keys
        }
        self._dirty = False
        if self.reelect_after is None:
            self._reelect_threshold = max(16, len(keys) // 4)
        self.update_stats.record_rebuild(reason)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def prepare_queries(self) -> None:
        """Perform the lazily scheduled re-election before queries fan out."""
        if self._items and self._dirty:
            self.build()

    def _range_search(
        self, query: SequenceLike, radius: float, counting
    ) -> List[RangeMatch]:
        if radius < 0:
            raise IndexError_(f"radius must be non-negative, got {radius}")
        if not self._items:
            return []
        if self._dirty:
            self.build()
        # The k reference distances are computed by one grouped kernel sweep
        # (:meth:`~repro.distances.base.Distance.batch`) instead of k
        # separate calls; the triangle-inequality filtering and the
        # straddler checks are unaffected, so the results are identical.
        query_vector = counting.batch(query, self._reference_items)
        reference_values = dict(zip(self._reference_keys, query_vector.tolist()))
        return self._filter_with_bounds(query, query_vector, reference_values, radius, counting)

    def _filter_with_bounds(
        self,
        query: SequenceLike,
        query_vector: np.ndarray,
        reference_values: Dict[Hashable, float],
        radius: float,
        counting,
    ) -> List[RangeMatch]:
        """Triangle-inequality filtering given the query-to-reference vector."""
        matches: List[RangeMatch] = []
        for key, item in self._items.items():
            if key in reference_values:
                value = reference_values[key]
                if value <= radius:
                    matches.append(RangeMatch(key, item, value))
                continue
            vector = self._item_vectors[key]
            gaps = np.abs(query_vector - vector)
            lower = float(np.max(gaps))
            if lower > radius:
                continue
            upper = float(np.min(query_vector + vector))
            if upper <= radius:
                matches.append(RangeMatch(key, item, None))
                continue
            value = counting(query, item)
            if value <= radius:
                matches.append(RangeMatch(key, item, value))
        return matches

    # ------------------------------------------------------------------ #
    # Snapshot support
    # ------------------------------------------------------------------ #
    def _export_structure(self) -> dict:
        keys = list(self._items.keys())
        position = {key: index for index, key in enumerate(keys)}
        # A dirty index re-elects references and recomputes every vector on
        # its next query anyway, and its election state may reference items
        # that no longer exist (a deleted reference marks the index dirty
        # without clearing the stale list) -- persist only the dirty flag.
        if self._dirty:
            references: List[int] = []
            vectors = None
        else:
            references = [position[key] for key in self._reference_keys]
            # Vectors in key order; JSON floats round-trip exactly (repr).
            vectors = [self._item_vectors[key].tolist() for key in keys]
        return {
            "dirty": self._dirty,
            "reelect_threshold": self._reelect_threshold,
            "reference_positions": references,
            "vectors": vectors,
            "rng_state": self._rng.bit_generator.state,
        }

    def _restore_structure(self, state: dict) -> None:
        keys = list(self._items.keys())
        self._dirty = bool(state["dirty"])
        threshold = state["reelect_threshold"]
        self._reelect_threshold = None if threshold is None else int(threshold)
        self._reference_keys = [keys[position] for position in state["reference_positions"]]
        self._reference_items = [self._items[key] for key in self._reference_keys]
        vectors = state["vectors"]
        if vectors is None:
            self._item_vectors = {}
        else:
            self._item_vectors = {
                key: np.asarray(vector, dtype=np.float64)
                for key, vector in zip(keys, vectors)
            }
        if state.get("rng_state") is not None:
            self._rng.bit_generator.state = state["rng_state"]
        self._stale_reason = None

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, float]:
        """Space statistics: the dominant cost is the ``n * k`` float matrix."""
        if self._dirty:
            self.build()
        node_count = len(self._items)
        stored_floats = node_count * len(self._reference_items)
        return {
            "node_count": node_count,
            "reference_count": len(self._reference_items),
            "stored_distances": stored_floats,
            "estimated_size_bytes": node_count * 64 + stored_floats * 8,
        }

    def __repr__(self) -> str:
        return (
            f"ReferenceIndex(size={len(self)}, references={self.num_references}, "
            f"distance={self.distance.name!r})"
        )
