"""Distance-evaluation accounting.

The paper's query-performance figures (8-11) report the *fraction of
distance computations* an index needs relative to a naive linear scan.
Wall-clock time would mix algorithmic behaviour with implementation details,
whereas distance counts are hardware-independent -- exactly what a
reproduction should compare.  Every index in :mod:`repro.indexing` therefore
routes its distance calls through a :class:`DistanceCounter`.
"""

from __future__ import annotations

from typing import Optional

from repro.distances.base import Distance, SequenceLike


class DistanceCounter:
    """A counter of distance evaluations with checkpoint support."""

    def __init__(self) -> None:
        self._total = 0
        self._checkpoint = 0

    @property
    def total(self) -> int:
        """Distance evaluations since construction (or the last reset)."""
        return self._total

    def increment(self, amount: int = 1) -> None:
        """Record ``amount`` additional distance evaluations."""
        self._total += amount

    def reset(self) -> None:
        """Zero the counter."""
        self._total = 0
        self._checkpoint = 0

    def checkpoint(self) -> None:
        """Remember the current total; see :meth:`since_checkpoint`."""
        self._checkpoint = self._total

    def since_checkpoint(self) -> int:
        """Evaluations since the last :meth:`checkpoint` call."""
        return self._total - self._checkpoint

    def __repr__(self) -> str:
        return f"DistanceCounter(total={self._total})"


class CountingDistance:
    """Wrap a :class:`~repro.distances.base.Distance` to count evaluations.

    The wrapper is intentionally *not* a :class:`Distance` subclass: indexes
    call it like a function and occasionally need the underlying measure's
    metadata, which stays reachable through :attr:`inner`.
    """

    def __init__(self, inner: Distance, counter: Optional[DistanceCounter] = None) -> None:
        self.inner = inner
        self.counter = counter if counter is not None else DistanceCounter()

    @property
    def name(self) -> str:
        """Name of the wrapped distance."""
        return self.inner.name

    @property
    def is_metric(self) -> bool:
        """Whether the wrapped distance is a metric."""
        return self.inner.is_metric

    def __call__(self, first: SequenceLike, second: SequenceLike) -> float:
        self.counter.increment()
        return self.inner(first, second)

    def __repr__(self) -> str:
        return f"CountingDistance({self.inner!r}, total={self.counter.total})"
