"""Distance-evaluation accounting.

The paper's query-performance figures (8-11) report the *fraction of
distance computations* an index needs relative to a naive linear scan.
Wall-clock time would mix algorithmic behaviour with implementation details,
whereas distance counts are hardware-independent -- exactly what a
reproduction should compare.  Every index in :mod:`repro.indexing` therefore
routes its distance calls through a :class:`DistanceCounter`.

Since the introduction of the :class:`~repro.distances.cache.DistanceCache`,
a "distance call" can be answered without computing anything; those hits are
tracked separately (:attr:`DistanceCounter.cache_hits`) so the reported
computation counts keep meaning *fresh* kernel executions, the quantity the
paper's pruning-ratio figures are defined over.
"""

from __future__ import annotations

from typing import Optional

from repro.distances.base import Distance, SequenceLike
from repro.distances.cache import DistanceCache


class DistanceCounter:
    """A counter of distance evaluations with checkpoint support.

    Fresh kernel executions (:attr:`total`) and cache hits
    (:attr:`cache_hits`) are counted separately; checkpoints snapshot both.
    """

    def __init__(self) -> None:
        self._total = 0
        self._checkpoint = 0
        self._cache_hits = 0
        self._cache_hits_checkpoint = 0

    @property
    def total(self) -> int:
        """Fresh distance evaluations since construction (or the last reset)."""
        return self._total

    @property
    def cache_hits(self) -> int:
        """Distance requests answered by the cache instead of a computation."""
        return self._cache_hits

    def increment(self, amount: int = 1) -> None:
        """Record ``amount`` additional distance evaluations."""
        self._total += amount

    def record_cache_hit(self, amount: int = 1) -> None:
        """Record ``amount`` distance requests served from the cache."""
        self._cache_hits += amount

    def reset(self) -> None:
        """Zero the counter."""
        self._total = 0
        self._checkpoint = 0
        self._cache_hits = 0
        self._cache_hits_checkpoint = 0

    def checkpoint(self) -> None:
        """Remember the current totals; see :meth:`since_checkpoint`."""
        self._checkpoint = self._total
        self._cache_hits_checkpoint = self._cache_hits

    def since_checkpoint(self) -> int:
        """Fresh evaluations since the last :meth:`checkpoint` call."""
        return self._total - self._checkpoint

    def cache_hits_since_checkpoint(self) -> int:
        """Cache hits since the last :meth:`checkpoint` call."""
        return self._cache_hits - self._cache_hits_checkpoint

    def __repr__(self) -> str:
        return f"DistanceCounter(total={self._total}, cache_hits={self._cache_hits})"


class CountingDistance:
    """Wrap a :class:`~repro.distances.base.Distance` to count evaluations.

    The wrapper is intentionally *not* a :class:`Distance` subclass: indexes
    call it like a function and occasionally need the underlying measure's
    metadata, which stays reachable through :attr:`inner`.

    When a :class:`~repro.distances.cache.DistanceCache` is attached, pairs
    of :class:`~repro.sequences.sequence.Sequence` payloads are looked up
    before computing; hits are recorded on the counter's separate cache-hit
    tally and fresh results are stored back into the cache.
    """

    def __init__(
        self,
        inner: Distance,
        counter: Optional[DistanceCounter] = None,
        cache: Optional[DistanceCache] = None,
    ) -> None:
        self.inner = inner
        self.counter = counter if counter is not None else DistanceCounter()
        self.cache = cache

    @property
    def name(self) -> str:
        """Name of the wrapped distance."""
        return self.inner.name

    @property
    def is_metric(self) -> bool:
        """Whether the wrapped distance is a metric."""
        return self.inner.is_metric

    def __call__(self, first: SequenceLike, second: SequenceLike) -> float:
        if self.cache is not None and DistanceCache.cacheable(first, second):
            cached = self.cache.lookup(first, second)
            if cached is not None:
                self.counter.record_cache_hit()
                return cached
            value = self.inner(first, second)
            self.counter.increment()
            self.cache.store(first, second, value)
            return value
        self.counter.increment()
        return self.inner(first, second)

    def bounded(self, first: SequenceLike, second: SequenceLike, cutoff: float) -> float:
        """Early-abandoning variant; see :meth:`Distance.bounded`.

        Cache entries recorded here may be lower bounds rather than exact
        values (when the kernel abandoned); the cache keeps the distinction.
        """
        if self.cache is not None and DistanceCache.cacheable(first, second):
            cached = self.cache.lookup(first, second, cutoff=cutoff)
            if cached is not None:
                self.counter.record_cache_hit()
                return cached
            value = self.inner.bounded(first, second, cutoff)
            self.counter.increment()
            self.cache.store(first, second, value, cutoff=cutoff)
            return value
        self.counter.increment()
        return self.inner.bounded(first, second, cutoff)

    def __repr__(self) -> str:
        return f"CountingDistance({self.inner!r}, total={self.counter.total})"
