"""Distance-evaluation accounting.

The paper's query-performance figures (8-11) report the *fraction of
distance computations* an index needs relative to a naive linear scan.
Wall-clock time would mix algorithmic behaviour with implementation details,
whereas distance counts are hardware-independent -- exactly what a
reproduction should compare.  Every index in :mod:`repro.indexing` therefore
routes its distance calls through a :class:`DistanceCounter`.

Since the introduction of the :class:`~repro.distances.cache.DistanceCache`,
a "distance call" can be answered without computing anything; those hits are
tracked separately (:attr:`DistanceCounter.cache_hits`) so the reported
computation counts keep meaning *fresh* kernel executions, the quantity the
paper's pruning-ratio figures are defined over.  Lower-bound prefilter
evaluations (see :mod:`repro.distances.lower_bounds`) are a third category:
they are O(n) rather than O(nm) and are counted on their own tallies
(:attr:`DistanceCounter.prefilter_evaluations` /
:attr:`DistanceCounter.prefilter_pruned`), again keeping the computation
counts comparable with the paper's definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence as TypingSequence

import numpy as np

from repro.distances.base import (
    Distance,
    SequenceLike,
    as_array,
    group_batch_operands,
    group_cutoff,
    item_cutoff,
    validate_group_shape,
)
from repro.distances.cache import DistanceCache
from repro.distances.lower_bounds import combined_batch_bound, combined_bound
from repro.sequences.sequence import Sequence

_INF = float("inf")


@dataclass
class IndexStats:
    """Accounting for incremental index updates and the staleness policy.

    Every :class:`~repro.indexing.base.MetricIndex` carries one of these as
    ``update_stats``.  The incremental entry points
    (:meth:`~repro.indexing.base.MetricIndex.insert` /
    :meth:`~repro.indexing.base.MetricIndex.delete`) record here, and the
    indexes with a bulk-(re)build step (:class:`ReferenceIndex`,
    :class:`VPTree`) consult :attr:`pending_updates` to decide when the
    accumulated updates have degraded the structure enough to warrant a
    rebuild -- the "tolerate N updates, then re-elect / re-balance" policy
    each index documents as its ``staleness_policy``.

    Attributes
    ----------
    inserts / deletes:
        Incremental operations applied over the index lifetime.
    rebuilds:
        Bulk (re)builds performed, including the initial one for indexes
        that have a build step.
    pending_updates:
        Incremental updates absorbed since the last rebuild; reset by
        :meth:`record_rebuild`.  Indexes without a rebuild step keep
        accumulating it, which is harmless (their policy never reads it).
    last_rebuild_reason:
        Why the most recent rebuild happened (``"build"`` for explicit bulk
        builds, or the policy trigger, e.g. ``"reference re-election after
        17 pending updates"``).
    """

    inserts: int = 0
    deletes: int = 0
    rebuilds: int = 0
    pending_updates: int = 0
    last_rebuild_reason: Optional[str] = None

    def record_insert(self, amount: int = 1) -> None:
        """Record ``amount`` incremental insertions."""
        self.inserts += amount
        self.pending_updates += amount

    def record_delete(self, amount: int = 1) -> None:
        """Record ``amount`` incremental deletions."""
        self.deletes += amount
        self.pending_updates += amount

    def record_rebuild(self, reason: str = "build") -> None:
        """Record a bulk (re)build and reset the pending-update count."""
        self.rebuilds += 1
        self.pending_updates = 0
        self.last_rebuild_reason = reason

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot of the counters."""
        return {
            "inserts": self.inserts,
            "deletes": self.deletes,
            "rebuilds": self.rebuilds,
            "pending_updates": self.pending_updates,
            "last_rebuild_reason": self.last_rebuild_reason,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "IndexStats":
        """Inverse of :meth:`as_dict` (used by snapshot restore)."""
        stats = cls()
        stats.inserts = int(payload.get("inserts", 0))
        stats.deletes = int(payload.get("deletes", 0))
        stats.rebuilds = int(payload.get("rebuilds", 0))
        stats.pending_updates = int(payload.get("pending_updates", 0))
        reason = payload.get("last_rebuild_reason")
        stats.last_rebuild_reason = None if reason is None else str(reason)
        return stats


class DistanceCounter:
    """A counter of distance evaluations with checkpoint support.

    Fresh kernel executions (:attr:`total`), cache hits
    (:attr:`cache_hits`), and lower-bound prefilter evaluations
    (:attr:`prefilter_evaluations`, of which :attr:`prefilter_pruned`
    skipped the kernel) are counted separately; checkpoints snapshot all of
    them.
    """

    def __init__(self) -> None:
        self._total = 0
        self._checkpoint = 0
        self._cache_hits = 0
        self._cache_hits_checkpoint = 0
        self._prefilter = 0
        self._prefilter_checkpoint = 0
        self._prefilter_pruned = 0
        self._prefilter_pruned_checkpoint = 0

    @property
    def total(self) -> int:
        """Fresh distance evaluations since construction (or the last reset)."""
        return self._total

    @property
    def cache_hits(self) -> int:
        """Distance requests answered by the cache instead of a computation."""
        return self._cache_hits

    @property
    def prefilter_evaluations(self) -> int:
        """Lower-bound evaluations performed in front of the kernels."""
        return self._prefilter

    @property
    def prefilter_pruned(self) -> int:
        """Prefilter evaluations that proved the pair outside the radius."""
        return self._prefilter_pruned

    def increment(self, amount: int = 1) -> None:
        """Record ``amount`` additional distance evaluations."""
        self._total += amount

    def record_cache_hit(self, amount: int = 1) -> None:
        """Record ``amount`` distance requests served from the cache."""
        self._cache_hits += amount

    def record_prefilter(self, evaluated: int = 1, pruned: int = 0) -> None:
        """Record lower-bound evaluations, ``pruned`` of which skipped a kernel."""
        self._prefilter += evaluated
        self._prefilter_pruned += pruned

    def reset(self) -> None:
        """Zero the counter."""
        self._total = 0
        self._checkpoint = 0
        self._cache_hits = 0
        self._cache_hits_checkpoint = 0
        self._prefilter = 0
        self._prefilter_checkpoint = 0
        self._prefilter_pruned = 0
        self._prefilter_pruned_checkpoint = 0

    def checkpoint(self) -> None:
        """Remember the current totals; see :meth:`since_checkpoint`."""
        self._checkpoint = self._total
        self._cache_hits_checkpoint = self._cache_hits
        self._prefilter_checkpoint = self._prefilter
        self._prefilter_pruned_checkpoint = self._prefilter_pruned

    def since_checkpoint(self) -> int:
        """Fresh evaluations since the last :meth:`checkpoint` call."""
        return self._total - self._checkpoint

    def cache_hits_since_checkpoint(self) -> int:
        """Cache hits since the last :meth:`checkpoint` call."""
        return self._cache_hits - self._cache_hits_checkpoint

    def prefilter_since_checkpoint(self) -> int:
        """Prefilter evaluations since the last :meth:`checkpoint` call."""
        return self._prefilter - self._prefilter_checkpoint

    def prefilter_pruned_since_checkpoint(self) -> int:
        """Prefilter prunes since the last :meth:`checkpoint` call."""
        return self._prefilter_pruned - self._prefilter_pruned_checkpoint

    def __repr__(self) -> str:
        return (
            f"DistanceCounter(total={self._total}, cache_hits={self._cache_hits}, "
            f"prefilter={self._prefilter}/{self._prefilter_pruned} pruned)"
        )


class CountingDistance:
    """Wrap a :class:`~repro.distances.base.Distance` to count evaluations.

    The wrapper is intentionally *not* a :class:`Distance` subclass: indexes
    call it like a function and occasionally need the underlying measure's
    metadata, which stays reachable through :attr:`inner`.

    When a :class:`~repro.distances.cache.DistanceCache` is attached, pairs
    of :class:`~repro.sequences.sequence.Sequence` payloads are looked up
    before computing; hits are recorded on the counter's separate cache-hit
    tally and fresh results are stored back into the cache.

    With ``prefilter=True``, the cutoff-carrying paths (:meth:`bounded`,
    :meth:`batch`) additionally evaluate the registered lower bounds of
    :mod:`repro.distances.lower_bounds` before running a kernel: a bound
    beyond the cutoff settles the pair as "outside" for the cost of an O(n)
    scan, recorded on the counter's prefilter tallies (and, when a cache is
    attached, remembered as a ``distance > cutoff`` entry).
    """

    def __init__(
        self,
        inner: Distance,
        counter: Optional[DistanceCounter] = None,
        cache: Optional[DistanceCache] = None,
        prefilter: bool = False,
    ) -> None:
        self.inner = inner
        self.counter = counter if counter is not None else DistanceCounter()
        self.cache = cache
        self.prefilter = bool(prefilter)

    @property
    def name(self) -> str:
        """Name of the wrapped distance."""
        return self.inner.name

    @property
    def is_metric(self) -> bool:
        """Whether the wrapped distance is a metric."""
        return self.inner.is_metric

    def __call__(self, first: SequenceLike, second: SequenceLike) -> float:
        if self.cache is not None and DistanceCache.cacheable(first, second):
            cached = self.cache.lookup(first, second)
            if cached is not None:
                self.counter.record_cache_hit()
                return cached
            value = self.inner(first, second)
            self.counter.increment()
            self.cache.store(first, second, value)
            return value
        self.counter.increment()
        return self.inner(first, second)

    def bounded(self, first: SequenceLike, second: SequenceLike, cutoff: float) -> float:
        """Early-abandoning variant; see :meth:`Distance.bounded`.

        Cache entries recorded here may be lower bounds rather than exact
        values (when the kernel abandoned or a prefilter bound pruned); the
        cache keeps the distinction.
        """
        cacheable = self.cache is not None and DistanceCache.cacheable(first, second)
        if cacheable:
            cached = self.cache.lookup(first, second, cutoff=cutoff)
            if cached is not None:
                self.counter.record_cache_hit()
                return cached
        if self.prefilter:
            bound = combined_bound(self.inner, first, second)
            pruned = bound > cutoff
            self.counter.record_prefilter(1, 1 if pruned else 0)
            if pruned:
                if cacheable:
                    self.cache.store(first, second, _INF, cutoff=cutoff)
                return _INF
        value = self.inner.bounded(first, second, cutoff)
        self.counter.increment()
        if cacheable:
            self.cache.store(first, second, value, cutoff=cutoff)
        return value

    def batch(
        self,
        query: SequenceLike,
        items: TypingSequence[SequenceLike],
        cutoff=None,
        packed=None,
    ) -> np.ndarray:
        """Counted, cached, prefiltered :meth:`Distance.batch`.

        Cache lookups run per pair first; the remaining pairs are grouped by
        shape, prefiltered (when enabled and a cutoff is given) with one
        vectorized bound evaluation per group, and the survivors go through
        the batched kernels in one call per group.  The returned array obeys
        the same contract as :meth:`Distance.batch`; ``cutoff`` may be one
        scalar or a per-item vector (the top-k scan's heap thresholds).

        ``packed`` optionally supplies the operand arrays from a packed
        window layout (:mod:`repro.sequences.packed`): position ``i`` of
        ``items`` must be backed by position ``i`` of the gather.  The
        gathered tensors hold the exact bytes the un-packed path would
        stack, so results, counters, and cache traffic are unchanged --
        only the per-call coercion and stacking disappear.
        """
        values = np.empty(len(items), dtype=np.float64)
        query_array = as_array(query)
        pending: List[int] = []
        cache = self.cache
        cacheable_query = cache is not None and isinstance(query, Sequence)
        if cacheable_query:
            # All lookups precede all stores in a batch, so the whole
            # classification runs under one cache lock
            # (:meth:`DistanceCache.replay_view`) instead of a lock
            # round-trip per item; hit/miss statistics and the returned
            # classifications are identical.
            hits = 0
            scalar = cutoff is None or np.ndim(cutoff) == 0
            with cache.replay_view() as view:
                lookup = view.lookup
                for index, item in enumerate(items):
                    if isinstance(item, Sequence):
                        cached = lookup(
                            query, item, cutoff if scalar else item_cutoff(cutoff, index)
                        )
                        if cached is not None:
                            hits += 1
                            values[index] = cached
                            continue
                    pending.append(index)
            if hits:
                self.counter.record_cache_hit(hits)
        else:
            pending = list(range(len(items)))
        if not pending:
            return values

        if packed is None:
            arrays, groups = group_batch_operands(self.inner, query_array, items, pending)
            shape_groups = [(None, indexes) for indexes in groups.values()]
        else:
            group_positions = getattr(packed, "group_positions", None)
            if group_positions is not None:
                shape_groups = group_positions(pending)
            else:
                groups = {}
                for index in pending:
                    groups.setdefault(packed.shape_of(index), []).append(index)
                shape_groups = list(groups.items())
            for shape, _indexes in shape_groups:
                validate_group_shape(self.inner, query_array, shape)
        #: Deferred cache stores as ``(item, value, cutoff)``, flushed under
        #: a single lock after all groups -- the store order (group order,
        #: pruned before survivors within a group) matches the inline
        #: stores exactly, so the cache content and eviction order do too.
        stores: List[tuple] = []
        for _shape, indexes in shape_groups:
            if packed is None:
                tensor = np.stack([arrays[i] for i in indexes])
            else:
                tensor = packed.gather(indexes)
            survivors = indexes
            thresholds = group_cutoff(cutoff, indexes)
            if self.prefilter and cutoff is not None:
                bounds = combined_batch_bound(self.inner, query_array, tensor)
                pruned_mask = bounds > thresholds
                pruned_count = int(np.count_nonzero(pruned_mask))
                self.counter.record_prefilter(len(indexes), pruned_count)
                if pruned_count:
                    for position in np.nonzero(pruned_mask)[0]:
                        index = indexes[position]
                        values[index] = _INF
                        if cacheable_query and isinstance(items[index], Sequence):
                            stores.append(
                                (items[index], _INF, item_cutoff(cutoff, index))
                            )
                    keep = np.nonzero(~pruned_mask)[0]
                    survivors = [indexes[position] for position in keep]
                    tensor = tensor[keep]
                    if np.ndim(thresholds) != 0:
                        thresholds = thresholds[keep]
            if not survivors:
                continue
            fresh = self.inner.compute_batch(query_array, tensor, thresholds)
            self.counter.increment(len(survivors))
            fresh_list = fresh.tolist() if hasattr(fresh, "tolist") else list(fresh)
            for position, index in enumerate(survivors):
                value = float(fresh_list[position])
                values[index] = value
                if cacheable_query and isinstance(items[index], Sequence):
                    stores.append((items[index], value, item_cutoff(cutoff, index)))
        if stores:
            with cache.replay_view() as view:
                store = view.store
                for item, value, item_bound in stores:
                    store(query, item, value, item_bound)
        return values

    def __repr__(self) -> str:
        return f"CountingDistance({self.inner!r}, total={self.counter.total})"
