"""Vantage-point tree (Yianilos, SODA 1993) -- an additional classic baseline.

The vp-tree recursively splits the data around a vantage point: items closer
than the median distance go to the inner subtree, the rest to the outer
subtree.  Range queries descend only into subtrees the triangle inequality
cannot exclude.  The paper's related-work section cites the vp-tree as one
of the established metric index structures; it is included here to broaden
the baseline pool for the ablation benchmarks.

The tree is built in bulk (:meth:`build`) because the classic structure is
static; :meth:`add` simply marks the tree dirty and the next query rebuilds.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Tuple

import numpy as np

from repro.distances.base import Distance, SequenceLike
from repro.distances.cache import DistanceCache
from repro.exceptions import IndexError_
from repro.indexing.base import MetricIndex, RangeMatch
from repro.indexing.stats import DistanceCounter


class _VPNode:
    """One vp-tree node: a vantage point, a split radius, two subtrees."""

    __slots__ = ("key", "item", "threshold", "inner", "outer")

    def __init__(self, key: Hashable, item: object) -> None:
        self.key = key
        self.item = item
        self.threshold: float = 0.0
        self.inner: Optional["_VPNode"] = None
        self.outer: Optional["_VPNode"] = None


class VPTree(MetricIndex):
    """Static vantage-point tree with bulk (re)building.

    Parameters
    ----------
    distance:
        A metric distance measure.
    counter:
        Optional shared distance counter.
    rng:
        Random generator used to pick vantage points (fixed seed by default
        so builds are reproducible).
    """

    index_name = "vp-tree"

    def __init__(
        self,
        distance: Distance,
        counter: Optional[DistanceCounter] = None,
        rng: Optional[np.random.Generator] = None,
        cache: Optional[DistanceCache] = None,
    ) -> None:
        super().__init__(distance, counter, require_metric=True, cache=cache)
        self._rng = rng or np.random.default_rng(0)
        self._root: Optional[_VPNode] = None
        self._dirty = True

    # ------------------------------------------------------------------ #
    # Content management
    # ------------------------------------------------------------------ #
    def add(self, item: object, key: Optional[Hashable] = None) -> Hashable:
        if key is None:
            key = self._auto_key()
        if key in self._items:
            raise IndexError_(f"key {key!r} is already present")
        self._items[key] = item
        self._dirty = True
        return key

    def remove(self, key: Hashable) -> object:
        try:
            item = self._items.pop(key)
        except KeyError:
            raise IndexError_(f"no item with key {key!r} in this index") from None
        self._dirty = True
        return item

    def build(self) -> None:
        """(Re)build the tree from the current contents.

        Construction-time distances are not charged to the query counter.
        """
        pairs = list(self._items.items())
        self._root = self._build(pairs)
        self._dirty = False

    def _build(self, pairs: List[Tuple[Hashable, object]]) -> Optional[_VPNode]:
        if not pairs:
            return None
        pick = int(self._rng.integers(len(pairs)))
        key, item = pairs[pick]
        node = _VPNode(key, item)
        rest = pairs[:pick] + pairs[pick + 1:]
        if not rest:
            return node
        values = np.fromiter(
            (self.distance(item, other) for _, other in rest),
            dtype=np.float64,
            count=len(rest),
        )
        node.threshold = float(np.median(values))
        inner_pairs = [pair for pair, value in zip(rest, values) if value <= node.threshold]
        outer_pairs = [pair for pair, value in zip(rest, values) if value > node.threshold]
        node.inner = self._build(inner_pairs)
        node.outer = self._build(outer_pairs)
        return node

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def range_query(self, query: SequenceLike, radius: float) -> List[RangeMatch]:
        if radius < 0:
            raise IndexError_(f"radius must be non-negative, got {radius}")
        if not self._items:
            return []
        if self._dirty:
            self.build()
        matches: List[RangeMatch] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            value = self._d(query, node.item)
            if value <= radius:
                matches.append(RangeMatch(node.key, node.item, value))
            # Items in the inner subtree are within ``threshold`` of the
            # vantage point; the triangle inequality excludes the subtree
            # when the query is too far outside (or inside) that shell.
            if value - radius <= node.threshold:
                stack.append(node.inner)
            if value + radius > node.threshold:
                stack.append(node.outer)
        return matches

    def stats(self) -> dict:
        """Simple node-count statistics."""
        return {
            "node_count": len(self._items),
            "estimated_size_bytes": len(self._items) * 96,
        }

    def __repr__(self) -> str:
        return f"VPTree(size={len(self)}, distance={self.distance.name!r})"
