"""Vantage-point tree (Yianilos, SODA 1993) -- an additional classic baseline.

The vp-tree recursively splits the data around a vantage point: items closer
than the median distance go to the inner subtree, the rest to the outer
subtree.  Range queries descend only into subtrees the triangle inequality
cannot exclude.  The paper's related-work section cites the vp-tree as one
of the established metric index structures; it is included here to broaden
the baseline pool for the ablation benchmarks.

The tree is built in bulk (:meth:`build`) because the classic structure is
static; :meth:`add` simply marks the tree dirty and the next query rebuilds.
The incremental entry points (:meth:`~repro.indexing.base.MetricIndex.insert`
/ :meth:`~repro.indexing.base.MetricIndex.delete`) instead extend the built
tree in place -- new items descend to a free inner/outer slot, deletions
re-attach the removed node's subtree -- and a pending-update budget decides
when the accumulated attachments have unbalanced the tree enough to warrant
a bulk rebuild (lazily, on the next query).
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Tuple

import numpy as np

from repro.distances.base import Distance, SequenceLike
from repro.distances.cache import DistanceCache
from repro.exceptions import IndexError_
from repro.indexing.base import MetricIndex, RangeMatch
from repro.indexing.stats import DistanceCounter


class _VPNode:
    """One vp-tree node: a vantage point, a split radius, two subtrees."""

    __slots__ = ("key", "item", "threshold", "inner", "outer")

    def __init__(self, key: Hashable, item: object) -> None:
        self.key = key
        self.item = item
        self.threshold: float = 0.0
        self.inner: Optional["_VPNode"] = None
        self.outer: Optional["_VPNode"] = None


class VPTree(MetricIndex):
    """Static vantage-point tree with bulk (re)building.

    Parameters
    ----------
    distance:
        A metric distance measure.
    counter:
        Optional shared distance counter.
    rng:
        Random generator used to pick vantage points (fixed seed by default
        so builds are reproducible).
    """

    index_name = "vp-tree"

    #: Incremental inserts descend the built tree and attach as leaves
    #: (which preserves the shell invariants, hence correctness, but not
    #: balance); deletions re-attach the removed node's subtree the same
    #: way, and deleting the root vantage point schedules a rebuild.  After
    #: ``rebuild_after`` pending updates (default max(16, n/2) at build
    #: time) the tree re-balances with a bulk rebuild on the next query.
    staleness_policy = (
        "inserts attach as leaves, deletes re-attach the subtree; "
        "re-balances after `rebuild_after` pending updates (default "
        "max(16, n/2) at build time) or a root deletion, lazily on the "
        "next query"
    )

    def __init__(
        self,
        distance: Distance,
        counter: Optional[DistanceCounter] = None,
        rng: Optional[np.random.Generator] = None,
        cache: Optional[DistanceCache] = None,
        rebuild_after: Optional[int] = None,
    ) -> None:
        super().__init__(distance, counter, require_metric=True, cache=cache)
        if rebuild_after is not None and rebuild_after < 1:
            raise IndexError_(f"rebuild_after must be >= 1, got {rebuild_after}")
        self._rng = rng or np.random.default_rng(0)
        self._root: Optional[_VPNode] = None
        self._dirty = True
        self.rebuild_after = rebuild_after
        #: Pending-update budget before a re-balance, fixed at build time.
        self._rebuild_threshold: Optional[int] = rebuild_after
        self._stale_reason: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Content management
    # ------------------------------------------------------------------ #
    def add(self, item: object, key: Optional[Hashable] = None) -> Hashable:
        if key is None:
            key = self._auto_key()
        if key in self._items:
            raise IndexError_(f"key {key!r} is already present")
        self._items[key] = item
        self._dirty = True
        return key

    def remove(self, key: Hashable) -> object:
        try:
            item = self._items.pop(key)
        except KeyError:
            raise IndexError_(f"no item with key {key!r} in this index") from None
        self._dirty = True
        return item

    def build(self) -> None:
        """(Re)build the tree from the current contents.

        Construction-time distances are not charged to the query counter.
        """
        pairs = list(self._items.items())
        self._root = self._build(pairs)
        self._dirty = False
        if self.rebuild_after is None:
            self._rebuild_threshold = max(16, len(pairs) // 2)
        self.update_stats.record_rebuild(self._stale_reason or "build")
        self._stale_reason = None

    def _build(self, pairs: List[Tuple[Hashable, object]]) -> Optional[_VPNode]:
        if not pairs:
            return None
        pick = int(self._rng.integers(len(pairs)))
        key, item = pairs[pick]
        node = _VPNode(key, item)
        rest = pairs[:pick] + pairs[pick + 1 :]
        if not rest:
            return node
        values = np.fromiter(
            (self.distance(item, other) for _, other in rest),
            dtype=np.float64,
            count=len(rest),
        )
        node.threshold = float(np.median(values))
        inner_pairs = [pair for pair, value in zip(rest, values) if value <= node.threshold]
        outer_pairs = [pair for pair, value in zip(rest, values) if value > node.threshold]
        node.inner = self._build(inner_pairs)
        node.outer = self._build(outer_pairs)
        return node

    # ------------------------------------------------------------------ #
    # Incremental updates
    # ------------------------------------------------------------------ #
    @property
    def is_stale(self) -> bool:
        """True when the next query will bulk-rebuild the tree first."""
        return self._dirty

    def _apply_staleness_policy(self) -> None:
        """Schedule a re-balance once the pending-update budget is exhausted."""
        if self._dirty or self._rebuild_threshold is None:
            return
        pending = self.update_stats.pending_updates
        if pending > self._rebuild_threshold:
            self._dirty = True
            self._stale_reason = f"re-balance after {pending} pending updates"

    def _attach(self, key: Hashable, item: object) -> None:
        """Descend from the root and attach ``(key, item)`` as a new leaf.

        Routing follows the same rule the shells encode -- within the
        threshold goes inner, beyond it goes outer -- so both subtree
        invariants the range query prunes by keep holding.  Construction-
        time distances are not charged to the query counter.
        """
        node = _VPNode(key, item)
        if self._root is None:
            self._root = node
            return
        current = self._root
        while True:
            value = self.distance(item, current.item)
            if value <= current.threshold:
                if current.inner is None:
                    current.inner = node
                    return
                current = current.inner
            else:
                if current.outer is None:
                    current.outer = node
                    return
                current = current.outer

    def _insert_incremental(self, item: object, key: Optional[Hashable]) -> Hashable:
        if key is None:
            key = self._auto_key()
        if key in self._items:
            raise IndexError_(f"key {key!r} is already present")
        self._items[key] = item
        if not self._dirty:
            self._attach(key, item)
        return key

    def _delete_incremental(self, key: Hashable) -> object:
        try:
            item = self._items.pop(key)
        except KeyError:
            raise IndexError_(f"no item with key {key!r} in this index") from None
        if self._dirty:
            return item
        node, parent, side = self._find_with_parent(key)
        assert node is not None  # _items membership guarantees presence
        members: List[Tuple[Hashable, object]] = []
        stack = [node.inner, node.outer]
        while stack:
            current = stack.pop()
            if current is None:
                continue
            members.append((current.key, current.item))
            stack.append(current.inner)
            stack.append(current.outer)
        if parent is None:
            # The root is the vantage point of the whole tree: every stored
            # distance relation involves it, so re-balance instead of
            # guessing a replacement.
            self._root = None
            if members:
                self._dirty = True
                self._stale_reason = "root deletion"
            return item
        setattr(parent, side, None)
        for member_key, member_item in members:
            self._attach(member_key, member_item)
        return item

    def _find_with_parent(
        self, key: Hashable
    ) -> Tuple[Optional[_VPNode], Optional[_VPNode], str]:
        """Locate the node holding ``key`` plus its parent and link side."""
        stack: List[Tuple[Optional[_VPNode], Optional[_VPNode], str]] = [
            (self._root, None, "")
        ]
        while stack:
            node, parent, side = stack.pop()
            if node is None:
                continue
            if node.key == key:
                return node, parent, side
            stack.append((node.inner, node, "inner"))
            stack.append((node.outer, node, "outer"))
        return None, None, ""

    # ------------------------------------------------------------------ #
    # Snapshot support
    # ------------------------------------------------------------------ #
    def _export_structure(self) -> dict:
        keys = list(self._items.keys())
        position = {key: index for index, key in enumerate(keys)}
        nodes: List[List[float]] = []
        if self._root is not None and not self._dirty:
            order: List[_VPNode] = []
            stack = [self._root]
            while stack:
                node = stack.pop()
                order.append(node)
                if node.outer is not None:
                    stack.append(node.outer)
                if node.inner is not None:
                    stack.append(node.inner)
            slots = {id(node): index for index, node in enumerate(order)}
            for node in order:
                nodes.append(
                    [
                        position[node.key],
                        node.threshold,
                        slots[id(node.inner)] if node.inner is not None else -1,
                        slots[id(node.outer)] if node.outer is not None else -1,
                    ]
                )
        return {
            "dirty": self._dirty,
            "rebuild_threshold": self._rebuild_threshold,
            "nodes": nodes,
            "rng_state": self._rng.bit_generator.state,
        }

    def _restore_structure(self, state: dict) -> None:
        keys = list(self._items.keys())
        self._dirty = bool(state["dirty"])
        threshold = state["rebuild_threshold"]
        self._rebuild_threshold = None if threshold is None else int(threshold)
        records = state["nodes"]
        nodes: List[_VPNode] = []
        for key_position, link_threshold, _inner, _outer in records:
            key = keys[int(key_position)]
            node = _VPNode(key, self._items[key])
            node.threshold = float(link_threshold)
            nodes.append(node)
        for record, node in zip(records, nodes):
            inner, outer = int(record[2]), int(record[3])
            node.inner = nodes[inner] if inner >= 0 else None
            node.outer = nodes[outer] if outer >= 0 else None
        self._root = nodes[0] if nodes else None
        if state.get("rng_state") is not None:
            self._rng.bit_generator.state = state["rng_state"]
        self._stale_reason = None

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def prepare_queries(self) -> None:
        """Perform the lazily scheduled re-balance before queries fan out."""
        if self._items and self._dirty:
            self.build()

    def _range_search(
        self, query: SequenceLike, radius: float, counting
    ) -> List[RangeMatch]:
        if radius < 0:
            raise IndexError_(f"radius must be non-negative, got {radius}")
        if not self._items:
            return []
        if self._dirty:
            self.build()
        matches: List[RangeMatch] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            value = counting(query, node.item)
            if value <= radius:
                matches.append(RangeMatch(node.key, node.item, value))
            # Items in the inner subtree are within ``threshold`` of the
            # vantage point; the triangle inequality excludes the subtree
            # when the query is too far outside (or inside) that shell.
            if value - radius <= node.threshold:
                stack.append(node.inner)
            if value + radius > node.threshold:
                stack.append(node.outer)
        return matches

    def stats(self) -> dict:
        """Simple node-count statistics."""
        return {
            "node_count": len(self._items),
            "estimated_size_bytes": len(self._items) * 96,
        }

    def __repr__(self) -> str:
        return f"VPTree(size={len(self)}, distance={self.distance.name!r})"
