"""The :class:`MetricIndex` interface shared by every index structure.

An index stores arbitrary *items* (in the framework's case,
:class:`~repro.sequences.windows.Window` objects are stored with their
subsequence as the indexed payload) under hashable keys, and answers range
queries: given a query payload and a radius ``eps``, return every stored
item within distance ``eps``.

Two details matter for faithfully reproducing the paper's evaluation:

* every distance evaluation performed by an index is counted through a
  :class:`~repro.indexing.stats.DistanceCounter`;
* a range result may omit the exact distance (``distance=None``) when the
  index proved membership through the triangle inequality without computing
  the distance -- this "include the whole subtree for free" behaviour is a
  key advantage of the reference net (Lemma 4).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from repro.distances.base import Distance, SequenceLike
from repro.distances.cache import DistanceCache
from repro.distances.recording import RecordingCounting
from repro.exceptions import DistanceError, IndexError_
from repro.indexing.stats import CountingDistance, DistanceCounter, IndexStats


@dataclass(frozen=True)
class RangeMatch:
    """One item returned by a range query.

    Attributes
    ----------
    key:
        The key under which the item was inserted.
    item:
        The stored payload.
    distance:
        The exact distance to the query when the index computed it, or
        ``None`` when membership was proven by the triangle inequality
        alone.  Call the distance yourself if you need the exact value.
    """

    key: Hashable
    item: object
    distance: Optional[float]


@dataclass
class QueryWorkUnit:
    """One independently executable slice of a batched range query.

    A unit answers (part of) the range query at ``position`` in the batch.
    ``search`` runs it to completion against a counting context (the
    index's live :class:`~repro.indexing.stats.CountingDistance` under the
    serial executor, a per-unit
    :class:`~repro.distances.recording.RecordingCounting` under a parallel
    one) and returns ``(order_key, match)`` pairs; the runner merges the
    units of one query position and sorts by ``order_key``, which is how a
    split probe (the linear scan's per-shape-group units) reassembles the
    exact serial result order.

    Units that can ship their kernel phase to a process pool also provide
    ``prepare`` (parent-side: cache lookups + payload construction --
    called as ``prepare(recording, transport)`` where ``transport`` names
    the payload transport, see ``MatcherConfig.transport``), ``remote`` (a
    picklable module-level function), and ``finish`` (parent-side: fold
    the child's values into matches).

    ``cost`` is the unit's scheduling weight -- an estimate proportional
    to its kernel work (e.g. windows x DP cells for a scan group).  The
    executors chunk units by accumulated cost, so one giant shape group
    no longer rides in the same fixed-size chunk as a handful of trivial
    ones and serializes the stage.
    """

    position: int
    search: Callable[[Any], List[Tuple[int, RangeMatch]]]
    prepare: Optional[Callable[[Any, Optional[str]], Tuple[Any, Any]]] = None
    remote: Optional[Callable[[Any], Any]] = None
    finish: Optional[Callable[[Any, Any, Any], List[Tuple[int, RangeMatch]]]] = None
    #: Display label for diagnostics (index name + split description).
    label: str = field(default="")
    #: Relative scheduling cost (arbitrary units; 1.0 = nominal).
    cost: float = 1.0


def task_chunk_size(unit_count: int, workers: int) -> int:
    """How many work units ride in one scheduled task.

    Probes routinely produce a few thousand small units (one per segment,
    or per segment x shape group); scheduling each as its own future costs
    more than the unit's work.  Four chunks per worker keeps the pool busy
    while amortising the per-future overhead.
    """
    return max(1, (unit_count + 4 * workers - 1) // (4 * workers))


def chunk_positions(
    count: int, workers: int, costs: Optional[List[float]] = None
) -> List[List[int]]:
    """Contiguous position chunks for scheduling ``count`` units.

    Contiguity matters: consumers replay unit logs chunk by chunk, and
    ascending contiguous chunks preserve the global unit order the
    serial-equivalence replay depends on.

    With ``costs`` (one non-negative weight per position), chunks are cut
    greedily at an accumulated cost of ``total / (4 * workers)`` -- the
    same four-chunks-per-worker budget as the uniform case (for equal
    costs the boundaries coincide exactly), but an expensive unit stops
    dragging a long tail of cheap ones into its chunk.
    """
    if count == 0:
        return []
    if costs is not None:
        total = float(sum(costs))
        if total > 0:
            target = total / (4 * workers)
            chunks: List[List[int]] = []
            current: List[int] = []
            accumulated = 0.0
            for position in range(count):
                current.append(position)
                accumulated += costs[position]
                if accumulated >= target:
                    chunks.append(current)
                    current = []
                    accumulated = 0.0
            if current:
                chunks.append(current)
            return chunks
    size = task_chunk_size(count, workers)
    return [
        list(range(start, min(start + size, count))) for start in range(0, count, size)
    ]


def run_query_work_units(
    index: "MetricIndex",
    units: List[QueryWorkUnit],
    query_count: int,
    executor,
    log_format: Optional[str] = None,
    transport: Optional[str] = None,
) -> Tuple[List[List[RangeMatch]], float]:
    """Execute ``units`` on ``executor`` with serial-equivalent accounting.

    Each unit gets a private
    :class:`~repro.distances.recording.RecordingCounting` over the index's
    cache (``log_format`` selects its request-log encoding); after the
    executor drains, the unit logs are replayed *in unit order* into the
    index's live counter and cache, so the counters, the cache content,
    and the eviction order come out exactly as a serial run would have
    left them.  Returns one merged match list per query position plus the
    summed per-worker CPU seconds.

    Scheduling granularity: the process executor receives one task per
    unit (its pool already chunks the picklable payloads by cost); every
    other executor receives contiguous cost-weighted *chunks* of units per
    task, which amortises the future/scheduling overhead that thousands of
    small probe units would otherwise pay.  ``transport`` is forwarded to
    remote-capable units' ``prepare`` so their payloads can ride shared
    memory instead of pickling (see ``MatcherConfig.transport``).
    """
    # Imported lazily: the executor layer lives in ``repro.core`` which
    # imports this module at package-init time.
    from repro.core.executor import WorkTask

    counting = index._counting
    use_remote = executor.name == "process"
    if use_remote and not any(
        unit.remote is not None and unit.prepare is not None for unit in units
    ):
        # Nothing to ship to the pool and local tasks run one by one in
        # the parent anyway: execute the units directly against the live
        # counting context -- plain serial semantics, zero bookkeeping.
        merged_serial: List[List[Tuple[int, RangeMatch]]] = [
            [] for _ in range(query_count)
        ]
        for unit in units:
            merged_serial[unit.position].extend(unit.search(counting))
        per_query_serial: List[List[RangeMatch]] = []
        for keyed in merged_serial:
            keyed.sort(key=lambda pair: pair[0])
            per_query_serial.append([match for _key, match in keyed])
        return per_query_serial, 0.0

    recordings: List[RecordingCounting] = [
        RecordingCounting(
            counting.inner, counting.cache, counting.prefilter, log_format=log_format
        )
        for _unit in units
    ]
    tasks: List[WorkTask] = []
    if use_remote:
        for unit, recording in zip(units, recordings):

            def local(unit=unit, recording=recording):
                return [unit.search(recording)]

            if unit.remote is not None and unit.prepare is not None:
                context_box: dict = {}

                def prepare(unit=unit, recording=recording, box=context_box):
                    context, payload = unit.prepare(recording, transport)
                    box["context"] = context
                    return payload

                def finish(out, unit=unit, recording=recording, box=context_box):
                    return [unit.finish(recording, box["context"], out)]

                tasks.append(
                    WorkTask(
                        local,
                        prepare=prepare,
                        remote=unit.remote,
                        finish=finish,
                        cost=unit.cost,
                    )
                )
            else:
                tasks.append(WorkTask(local, cost=unit.cost))
        chunks = [[position] for position in range(len(units))]
    else:
        chunks = chunk_positions(
            len(units), executor.workers, costs=[unit.cost for unit in units]
        )
        for positions in chunks:

            def local(positions=positions):
                return [units[p].search(recordings[p]) for p in positions]

            tasks.append(WorkTask(local, cost=sum(units[p].cost for p in positions)))

    results = executor.run(tasks)
    merged: List[List[Tuple[int, RangeMatch]]] = [[] for _ in range(query_count)]
    cpu_seconds = 0.0
    for positions, result in zip(chunks, results):
        cpu_seconds += result.worker_cpu_seconds
        for position, keyed_matches in zip(positions, result.value):
            recordings[position].replay_into(counting)
            merged[units[position].position].extend(keyed_matches)
    per_query: List[List[RangeMatch]] = []
    for keyed in merged:
        keyed.sort(key=lambda pair: pair[0])
        per_query.append([match for _key, match in keyed])
    return per_query, cpu_seconds


class MetricIndex(abc.ABC):
    """Base class for metric range-query indexes.

    Parameters
    ----------
    distance:
        The (metric) distance used to compare stored items and queries.
    counter:
        Optional shared :class:`DistanceCounter`; one is created when
        omitted.
    require_metric:
        Indexes that rely on the triangle inequality refuse non-metric
        distances (e.g. DTW) unless this check is explicitly disabled by a
        subclass that does not need metricity (the linear scan).
    cache:
        Optional shared :class:`~repro.distances.cache.DistanceCache`;
        when given, query-time distance requests for already-measured pairs
        are answered from the cache and counted as cache hits instead of
        fresh computations.  The matcher shares one cache between its index
        and its verification step so Type III's growing-radius re-queries
        never pay for a pair twice.
    prefilter:
        When true, the cutoff-carrying distance paths evaluate the
        registered lower bounds of :mod:`repro.distances.lower_bounds`
        before running a kernel (see
        :class:`~repro.indexing.stats.CountingDistance`).  Only meaningful
        for indexes that decide membership with a bounded distance -- the
        linear scan -- because the tree indexes need exact values for their
        triangle-inequality routing.
    """

    #: Human-readable index name used in reports and benchmarks.
    index_name: str = "index"

    #: Human-readable description of how the index absorbs incremental
    #: updates (:meth:`insert` / :meth:`delete`) and when -- if ever -- it
    #: falls back to a bulk rebuild.  Subclasses override this.
    staleness_policy: str = "fully incremental; never rebuilds"

    def __init__(
        self,
        distance: Distance,
        counter: Optional[DistanceCounter] = None,
        require_metric: bool = True,
        cache: Optional[DistanceCache] = None,
        prefilter: bool = False,
    ) -> None:
        if require_metric and not distance.is_metric:
            raise DistanceError(
                f"{type(self).__name__} relies on the triangle inequality but "
                f"{distance.name!r} is not a metric; use LinearScanIndex instead"
            )
        self._counting = CountingDistance(distance, counter, cache, prefilter=prefilter)
        self._items: dict = {}
        #: Incremental-update accounting (inserts, deletes, rebuilds).
        self.update_stats = IndexStats()

    # ------------------------------------------------------------------ #
    # Accounting and common accessors
    # ------------------------------------------------------------------ #
    @property
    def distance(self) -> Distance:
        """The underlying (uncounted) distance measure."""
        return self._counting.inner

    @property
    def counter(self) -> DistanceCounter:
        """The distance-evaluation counter for this index."""
        return self._counting.counter

    @property
    def cache(self) -> Optional[DistanceCache]:
        """The distance cache shared with this index, if any."""
        return self._counting.cache

    def _d(self, first: SequenceLike, second: SequenceLike) -> float:
        """Compute (and count) the exact distance between two payloads."""
        return self._counting(first, second)

    def _d_bounded(self, first: SequenceLike, second: SequenceLike, cutoff: float) -> float:
        """Compute (and count) a distance that may early-abandon past ``cutoff``.

        Only usable where the caller needs nothing more than "within
        ``cutoff`` or not" plus the exact value when within -- i.e. the
        final membership test of a range query, never the triangle-
        inequality routing of tree indexes (those need exact values).
        """
        return self._counting.bounded(first, second, cutoff)

    def _d_batch(
        self,
        query: SequenceLike,
        items: List[SequenceLike],
        cutoff=None,
        packed=None,
    ) -> "np.ndarray":
        """Compute (and count) distances from ``query`` to many payloads at once.

        Goes through :meth:`CountingDistance.batch`: cache lookups first,
        then lower-bound prefilters (when enabled), then one batched kernel
        per same-shape group.  The usual early-abandon contract applies when
        ``cutoff`` is given (a scalar or per-item vector); ``packed``
        optionally serves the operand tensors from a packed window layout.
        """
        return self._counting.batch(query, items, cutoff, packed=packed)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._items

    def keys(self) -> List[Hashable]:
        """All stored keys."""
        return list(self._items.keys())

    def items(self) -> List[Tuple[Hashable, object]]:
        """All stored ``(key, item)`` pairs."""
        return list(self._items.items())

    def get(self, key: Hashable) -> object:
        """Return the item stored under ``key``."""
        try:
            return self._items[key]
        except KeyError:
            raise IndexError_(f"no item with key {key!r} in this index") from None

    # ------------------------------------------------------------------ #
    # Abstract operations
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def add(self, item: object, key: Optional[Hashable] = None) -> Hashable:
        """Insert ``item`` under ``key`` (auto-generated when omitted)."""

    @abc.abstractmethod
    def remove(self, key: Hashable) -> object:
        """Remove and return the item stored under ``key``."""

    @abc.abstractmethod
    def _range_search(
        self, query: SequenceLike, radius: float, counting
    ) -> List[RangeMatch]:
        """Range query against an explicit counting context.

        ``counting`` supplies every distance evaluation (``counting(a, b)``,
        ``counting.bounded``, ``counting.batch``); implementations must not
        touch ``self._counting`` directly, which is what lets one built
        structure serve concurrent work units that each carry their own
        recording context.  Traversals must treat the structure as
        read-only -- lazy rebuilds belong in :meth:`prepare_queries`.
        """

    def range_query(self, query: SequenceLike, radius: float) -> List[RangeMatch]:
        """Return every stored item within ``radius`` of ``query``."""
        self.prepare_queries()
        return self._range_search(query, radius, self._counting)

    def prepare_queries(self) -> None:
        """Bring the structure up to date before (possibly parallel) queries.

        Indexes with a lazy-rebuild staleness policy (the vp-tree's
        re-balance, the reference index's re-election) override this to
        perform the rebuild *before* work units fan out, because the
        rebuild mutates the structure that concurrent traversals read.
        The default does nothing.
        """

    def close(self) -> None:
        """Release OS-level resources the index holds (idempotent).

        The default does nothing; the linear scan overrides this to tear
        down its shared-memory window export.  Closing never touches the
        stored items -- a closed index keeps answering queries, it just
        re-creates any released resources on demand.
        """

    def batch_range_query(
        self, queries: Iterable[SequenceLike], radius: float, executor=None
    ) -> List[List[RangeMatch]]:
        """Answer many range queries at once; one result list per query.

        Without an ``executor`` (or with the serial one), execution follows
        the index's serial batch path -- :meth:`range_query` per query by
        default; implementations with a genuinely batched execution (the
        linear scan's grouped kernel sweeps, the reference index's batched
        reference distances) override :meth:`_serial_batch_range_query`.
        With a parallel executor, the query set is split into the work
        units of :meth:`query_work_units` and fanned out; results *and*
        work counters are identical to the serial path either way (see
        :func:`run_query_work_units`).
        """
        queries = list(queries)
        if executor is not None and executor.is_parallel:
            return self.parallel_batch_range_query(queries, radius, executor)
        return self._serial_batch_range_query(queries, radius)

    def _serial_batch_range_query(
        self, queries: List[SequenceLike], radius: float
    ) -> List[List[RangeMatch]]:
        """Serial batched execution (subclass hook; default per-query)."""
        return [self.range_query(query, radius) for query in queries]

    def parallel_batch_range_query(
        self, queries: List[SequenceLike], radius: float, executor
    ) -> List[List[RangeMatch]]:
        """Executor-driven batched execution over :meth:`query_work_units`."""
        if radius < 0:
            raise IndexError_(f"radius must be non-negative, got {radius}")
        units = self.query_work_units(queries, radius)
        per_query, _cpu = run_query_work_units(self, units, len(queries), executor)
        return per_query

    def query_work_units(
        self, queries: List[SequenceLike], radius: float
    ) -> List[QueryWorkUnit]:
        """Split a batched range query into independent work units.

        The default yields one unit per query, each running the full
        :meth:`_range_search` -- enough parallelism for the matcher's
        many-segment probes.  Indexes whose probes decompose further
        override this (the linear scan splits every query into one unit
        per same-shape group of stored items, each a single batched kernel
        sweep that can also ship to a process pool).  Calling this method
        also performs :meth:`prepare_queries`.
        """
        self.prepare_queries()
        units: List[QueryWorkUnit] = []
        for position, query in enumerate(queries):

            def search(counting, query=query):
                matches = self._range_search(query, radius, counting)
                return list(enumerate(matches))

            units.append(
                QueryWorkUnit(position=position, search=search, label=self.index_name)
            )
        return units

    # ------------------------------------------------------------------ #
    # Incremental updates (insert / delete, with a staleness policy)
    # ------------------------------------------------------------------ #
    @property
    def is_stale(self) -> bool:
        """Whether the structure needs a rebuild before the next query.

        A stale index still answers queries correctly -- the implementations
        rebuild lazily on the next query -- but a snapshot of a stale index
        cannot promise the "zero rebuild on load" property.  Indexes without
        a bulk build step are never stale.
        """
        return False

    def insert(self, item: object, key: Optional[Hashable] = None) -> Hashable:
        """Insert ``item`` *incrementally*: extend the built structure in place.

        Unlike :meth:`add` (the bulk-load primitive, which some indexes
        merely buffer until the next :meth:`build`), ``insert`` keeps the
        index queryable without a full rebuild, recording the operation in
        :attr:`update_stats` and applying the index's documented
        ``staleness_policy`` (e.g. "tolerate N pending updates, then
        rebuild on the next query").
        """
        rebuilds_before = self.update_stats.rebuilds
        key = self._insert_incremental(item, key)
        self.update_stats.record_insert()
        if self.update_stats.rebuilds > rebuilds_before:
            # The operation itself triggered an eager rebuild, which already
            # absorbed this update -- do not leave it counted as pending.
            self.update_stats.pending_updates = 0
        self._apply_staleness_policy()
        return key

    def delete(self, key: Hashable) -> object:
        """Remove the item under ``key`` incrementally; see :meth:`insert`."""
        rebuilds_before = self.update_stats.rebuilds
        item = self._delete_incremental(key)
        self.update_stats.record_delete()
        if self.update_stats.rebuilds > rebuilds_before:
            # An eager rebuild (e.g. a root deletion) absorbed this update.
            self.update_stats.pending_updates = 0
        self._apply_staleness_policy()
        return item

    def _insert_incremental(self, item: object, key: Optional[Hashable]) -> Hashable:
        """Subclass hook: genuinely incremental insertion.

        The default delegates to :meth:`add`, which is already incremental
        for the linear scan, the reference net, and the cover tree; indexes
        whose :meth:`add` defers to a bulk rebuild (the vp-tree) override
        this.
        """
        return self.add(item, key)

    def _delete_incremental(self, key: Hashable) -> object:
        """Subclass hook: genuinely incremental deletion (default: :meth:`remove`)."""
        return self.remove(key)

    def _apply_staleness_policy(self) -> None:
        """Subclass hook: decide, after an update, whether to go stale."""

    # ------------------------------------------------------------------ #
    # Snapshot support (structure export / restore without recomputation)
    # ------------------------------------------------------------------ #
    def export_structure(self) -> dict:
        """JSON-serializable structural state of the built index.

        The returned dictionary always carries ``keys`` (the stored keys in
        iteration order -- which *is* semantically meaningful: probe results
        and therefore downstream accounting depend on it) and the
        :class:`~repro.indexing.stats.IndexStats` counters; subclasses add
        their built state (reference vectors, tree topology, ...) through
        :meth:`_export_structure`, referencing items by their position in
        ``keys``.  Payloads themselves are *not* included -- the caller
        (:func:`repro.storage.persistence.save_matcher`) persists them once
        and hands them back to :meth:`restore_structure`.
        """
        state = {
            "keys": list(self._items.keys()),
            "update_stats": self.update_stats.as_dict(),
        }
        state.update(self._export_structure())
        return state

    def restore_structure(self, state: dict, payloads: dict) -> None:
        """Rebuild the in-memory structure from :meth:`export_structure` output.

        ``payloads`` maps every key in ``state["keys"]`` to its stored item.
        Restoration performs **no distance computations**: reference
        vectors, link distances, and tree thresholds all come back from the
        snapshot, which is what lets a loaded matcher answer queries
        immediately.
        """
        try:
            self._items = {key: payloads[key] for key in state["keys"]}
        except KeyError as error:
            raise IndexError_(
                f"snapshot references key {error.args[0]!r} with no stored payload"
            ) from None
        self.update_stats = IndexStats.from_dict(state.get("update_stats", {}))
        self._restore_structure(state)

    def _export_structure(self) -> dict:
        """Subclass hook: built state beyond the item order (default: none)."""
        return {}

    def _restore_structure(self, state: dict) -> None:
        """Subclass hook: inverse of :meth:`_export_structure`."""

    # ------------------------------------------------------------------ #
    # Conveniences shared by every implementation
    # ------------------------------------------------------------------ #
    def add_all(self, items: Iterable[Tuple[Hashable, object]]) -> List[Hashable]:
        """Insert many ``(key, item)`` pairs; returns the keys in order."""
        return [self.add(item, key) for key, item in items]

    def _auto_key(self) -> int:
        """Generate a fresh integer key."""
        key = len(self._items)
        while key in self._items:
            key += 1
        return key

    def nearest_neighbour(
        self, query: SequenceLike, initial_radius: float = 1.0, growth: float = 2.0
    ) -> Optional[RangeMatch]:
        """Best-match search built on repeated range queries.

        The paper's Type III query reduces nearest-neighbour search to a
        sequence of range queries with growing radius; the same reduction is
        offered here for any index.  Returns ``None`` for an empty index.
        """
        matches = self.knn_query(query, 1, initial_radius=initial_radius, growth=growth)
        return matches[0] if matches else None

    def knn_query(
        self,
        query: SequenceLike,
        k: int,
        initial_radius: float = 1.0,
        growth: float = 2.0,
    ) -> List[RangeMatch]:
        """The ``k`` stored items closest to ``query``, nearest first.

        Implemented, like the paper's Type III query, as range queries with a
        geometrically growing radius until at least ``k`` items are found;
        ties at the k-th distance are broken arbitrarily.  Every returned
        match carries its exact distance.
        """
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        if not self._items:
            return []
        if initial_radius <= 0 or growth <= 1:
            raise IndexError_("initial_radius must be > 0 and growth > 1")
        radius = initial_radius
        wanted = min(k, len(self._items))
        while True:
            matches = self.range_query(query, radius)
            if len(matches) >= wanted:
                resolved = [
                    RangeMatch(
                        match.key,
                        match.item,
                        match.distance
                        if match.distance is not None
                        else self._d(query, match.item),
                    )
                    for match in matches
                ]
                resolved.sort(key=lambda match: match.distance)
                return resolved[:wanted]
            radius *= growth

    def __repr__(self) -> str:
        return f"{type(self).__name__}(size={len(self)}, distance={self.distance.name!r})"
