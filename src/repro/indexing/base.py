"""The :class:`MetricIndex` interface shared by every index structure.

An index stores arbitrary *items* (in the framework's case,
:class:`~repro.sequences.windows.Window` objects are stored with their
subsequence as the indexed payload) under hashable keys, and answers range
queries: given a query payload and a radius ``eps``, return every stored
item within distance ``eps``.

Two details matter for faithfully reproducing the paper's evaluation:

* every distance evaluation performed by an index is counted through a
  :class:`~repro.indexing.stats.DistanceCounter`;
* a range result may omit the exact distance (``distance=None``) when the
  index proved membership through the triangle inequality without computing
  the distance -- this "include the whole subtree for free" behaviour is a
  key advantage of the reference net (Lemma 4).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Hashable, Iterable, List, Optional, Tuple

import numpy as np

from repro.distances.base import Distance, SequenceLike
from repro.distances.cache import DistanceCache
from repro.exceptions import DistanceError, IndexError_
from repro.indexing.stats import CountingDistance, DistanceCounter, IndexStats


@dataclass(frozen=True)
class RangeMatch:
    """One item returned by a range query.

    Attributes
    ----------
    key:
        The key under which the item was inserted.
    item:
        The stored payload.
    distance:
        The exact distance to the query when the index computed it, or
        ``None`` when membership was proven by the triangle inequality
        alone.  Call the distance yourself if you need the exact value.
    """

    key: Hashable
    item: object
    distance: Optional[float]


class MetricIndex(abc.ABC):
    """Base class for metric range-query indexes.

    Parameters
    ----------
    distance:
        The (metric) distance used to compare stored items and queries.
    counter:
        Optional shared :class:`DistanceCounter`; one is created when
        omitted.
    require_metric:
        Indexes that rely on the triangle inequality refuse non-metric
        distances (e.g. DTW) unless this check is explicitly disabled by a
        subclass that does not need metricity (the linear scan).
    cache:
        Optional shared :class:`~repro.distances.cache.DistanceCache`;
        when given, query-time distance requests for already-measured pairs
        are answered from the cache and counted as cache hits instead of
        fresh computations.  The matcher shares one cache between its index
        and its verification step so Type III's growing-radius re-queries
        never pay for a pair twice.
    prefilter:
        When true, the cutoff-carrying distance paths evaluate the
        registered lower bounds of :mod:`repro.distances.lower_bounds`
        before running a kernel (see
        :class:`~repro.indexing.stats.CountingDistance`).  Only meaningful
        for indexes that decide membership with a bounded distance -- the
        linear scan -- because the tree indexes need exact values for their
        triangle-inequality routing.
    """

    #: Human-readable index name used in reports and benchmarks.
    index_name: str = "index"

    #: Human-readable description of how the index absorbs incremental
    #: updates (:meth:`insert` / :meth:`delete`) and when -- if ever -- it
    #: falls back to a bulk rebuild.  Subclasses override this.
    staleness_policy: str = "fully incremental; never rebuilds"

    def __init__(
        self,
        distance: Distance,
        counter: Optional[DistanceCounter] = None,
        require_metric: bool = True,
        cache: Optional[DistanceCache] = None,
        prefilter: bool = False,
    ) -> None:
        if require_metric and not distance.is_metric:
            raise DistanceError(
                f"{type(self).__name__} relies on the triangle inequality but "
                f"{distance.name!r} is not a metric; use LinearScanIndex instead"
            )
        self._counting = CountingDistance(distance, counter, cache, prefilter=prefilter)
        self._items: dict = {}
        #: Incremental-update accounting (inserts, deletes, rebuilds).
        self.update_stats = IndexStats()

    # ------------------------------------------------------------------ #
    # Accounting and common accessors
    # ------------------------------------------------------------------ #
    @property
    def distance(self) -> Distance:
        """The underlying (uncounted) distance measure."""
        return self._counting.inner

    @property
    def counter(self) -> DistanceCounter:
        """The distance-evaluation counter for this index."""
        return self._counting.counter

    @property
    def cache(self) -> Optional[DistanceCache]:
        """The distance cache shared with this index, if any."""
        return self._counting.cache

    def _d(self, first: SequenceLike, second: SequenceLike) -> float:
        """Compute (and count) the exact distance between two payloads."""
        return self._counting(first, second)

    def _d_bounded(self, first: SequenceLike, second: SequenceLike, cutoff: float) -> float:
        """Compute (and count) a distance that may early-abandon past ``cutoff``.

        Only usable where the caller needs nothing more than "within
        ``cutoff`` or not" plus the exact value when within -- i.e. the
        final membership test of a range query, never the triangle-
        inequality routing of tree indexes (those need exact values).
        """
        return self._counting.bounded(first, second, cutoff)

    def _d_batch(
        self,
        query: SequenceLike,
        items: List[SequenceLike],
        cutoff: Optional[float] = None,
    ) -> "np.ndarray":
        """Compute (and count) distances from ``query`` to many payloads at once.

        Goes through :meth:`CountingDistance.batch`: cache lookups first,
        then lower-bound prefilters (when enabled), then one batched kernel
        per same-shape group.  The usual early-abandon contract applies when
        ``cutoff`` is given.
        """
        return self._counting.batch(query, items, cutoff)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._items

    def keys(self) -> List[Hashable]:
        """All stored keys."""
        return list(self._items.keys())

    def items(self) -> List[Tuple[Hashable, object]]:
        """All stored ``(key, item)`` pairs."""
        return list(self._items.items())

    def get(self, key: Hashable) -> object:
        """Return the item stored under ``key``."""
        try:
            return self._items[key]
        except KeyError:
            raise IndexError_(f"no item with key {key!r} in this index") from None

    # ------------------------------------------------------------------ #
    # Abstract operations
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def add(self, item: object, key: Optional[Hashable] = None) -> Hashable:
        """Insert ``item`` under ``key`` (auto-generated when omitted)."""

    @abc.abstractmethod
    def remove(self, key: Hashable) -> object:
        """Remove and return the item stored under ``key``."""

    @abc.abstractmethod
    def range_query(self, query: SequenceLike, radius: float) -> List[RangeMatch]:
        """Return every stored item within ``radius`` of ``query``."""

    def batch_range_query(
        self, queries: Iterable[SequenceLike], radius: float
    ) -> List[List[RangeMatch]]:
        """Answer many range queries at once; one result list per query.

        The default delegates to :meth:`range_query` per query, so every
        index supports the batched entry point; implementations with a
        genuinely batched execution (the linear scan's grouped kernel
        sweeps, the reference index's batched reference distances) override
        it.  Results are guaranteed to be identical to running the queries
        one at a time.
        """
        return [self.range_query(query, radius) for query in queries]

    # ------------------------------------------------------------------ #
    # Incremental updates (insert / delete, with a staleness policy)
    # ------------------------------------------------------------------ #
    @property
    def is_stale(self) -> bool:
        """Whether the structure needs a rebuild before the next query.

        A stale index still answers queries correctly -- the implementations
        rebuild lazily on the next query -- but a snapshot of a stale index
        cannot promise the "zero rebuild on load" property.  Indexes without
        a bulk build step are never stale.
        """
        return False

    def insert(self, item: object, key: Optional[Hashable] = None) -> Hashable:
        """Insert ``item`` *incrementally*: extend the built structure in place.

        Unlike :meth:`add` (the bulk-load primitive, which some indexes
        merely buffer until the next :meth:`build`), ``insert`` keeps the
        index queryable without a full rebuild, recording the operation in
        :attr:`update_stats` and applying the index's documented
        ``staleness_policy`` (e.g. "tolerate N pending updates, then
        rebuild on the next query").
        """
        rebuilds_before = self.update_stats.rebuilds
        key = self._insert_incremental(item, key)
        self.update_stats.record_insert()
        if self.update_stats.rebuilds > rebuilds_before:
            # The operation itself triggered an eager rebuild, which already
            # absorbed this update -- do not leave it counted as pending.
            self.update_stats.pending_updates = 0
        self._apply_staleness_policy()
        return key

    def delete(self, key: Hashable) -> object:
        """Remove the item under ``key`` incrementally; see :meth:`insert`."""
        rebuilds_before = self.update_stats.rebuilds
        item = self._delete_incremental(key)
        self.update_stats.record_delete()
        if self.update_stats.rebuilds > rebuilds_before:
            # An eager rebuild (e.g. a root deletion) absorbed this update.
            self.update_stats.pending_updates = 0
        self._apply_staleness_policy()
        return item

    def _insert_incremental(self, item: object, key: Optional[Hashable]) -> Hashable:
        """Subclass hook: genuinely incremental insertion.

        The default delegates to :meth:`add`, which is already incremental
        for the linear scan, the reference net, and the cover tree; indexes
        whose :meth:`add` defers to a bulk rebuild (the vp-tree) override
        this.
        """
        return self.add(item, key)

    def _delete_incremental(self, key: Hashable) -> object:
        """Subclass hook: genuinely incremental deletion (default: :meth:`remove`)."""
        return self.remove(key)

    def _apply_staleness_policy(self) -> None:
        """Subclass hook: decide, after an update, whether to go stale."""

    # ------------------------------------------------------------------ #
    # Snapshot support (structure export / restore without recomputation)
    # ------------------------------------------------------------------ #
    def export_structure(self) -> dict:
        """JSON-serializable structural state of the built index.

        The returned dictionary always carries ``keys`` (the stored keys in
        iteration order -- which *is* semantically meaningful: probe results
        and therefore downstream accounting depend on it) and the
        :class:`~repro.indexing.stats.IndexStats` counters; subclasses add
        their built state (reference vectors, tree topology, ...) through
        :meth:`_export_structure`, referencing items by their position in
        ``keys``.  Payloads themselves are *not* included -- the caller
        (:func:`repro.storage.persistence.save_matcher`) persists them once
        and hands them back to :meth:`restore_structure`.
        """
        state = {
            "keys": list(self._items.keys()),
            "update_stats": self.update_stats.as_dict(),
        }
        state.update(self._export_structure())
        return state

    def restore_structure(self, state: dict, payloads: dict) -> None:
        """Rebuild the in-memory structure from :meth:`export_structure` output.

        ``payloads`` maps every key in ``state["keys"]`` to its stored item.
        Restoration performs **no distance computations**: reference
        vectors, link distances, and tree thresholds all come back from the
        snapshot, which is what lets a loaded matcher answer queries
        immediately.
        """
        try:
            self._items = {key: payloads[key] for key in state["keys"]}
        except KeyError as error:
            raise IndexError_(
                f"snapshot references key {error.args[0]!r} with no stored payload"
            ) from None
        self.update_stats = IndexStats.from_dict(state.get("update_stats", {}))
        self._restore_structure(state)

    def _export_structure(self) -> dict:
        """Subclass hook: built state beyond the item order (default: none)."""
        return {}

    def _restore_structure(self, state: dict) -> None:
        """Subclass hook: inverse of :meth:`_export_structure`."""

    # ------------------------------------------------------------------ #
    # Conveniences shared by every implementation
    # ------------------------------------------------------------------ #
    def add_all(self, items: Iterable[Tuple[Hashable, object]]) -> List[Hashable]:
        """Insert many ``(key, item)`` pairs; returns the keys in order."""
        return [self.add(item, key) for key, item in items]

    def _auto_key(self) -> int:
        """Generate a fresh integer key."""
        key = len(self._items)
        while key in self._items:
            key += 1
        return key

    def nearest_neighbour(
        self, query: SequenceLike, initial_radius: float = 1.0, growth: float = 2.0
    ) -> Optional[RangeMatch]:
        """Best-match search built on repeated range queries.

        The paper's Type III query reduces nearest-neighbour search to a
        sequence of range queries with growing radius; the same reduction is
        offered here for any index.  Returns ``None`` for an empty index.
        """
        matches = self.knn_query(query, 1, initial_radius=initial_radius, growth=growth)
        return matches[0] if matches else None

    def knn_query(
        self,
        query: SequenceLike,
        k: int,
        initial_radius: float = 1.0,
        growth: float = 2.0,
    ) -> List[RangeMatch]:
        """The ``k`` stored items closest to ``query``, nearest first.

        Implemented, like the paper's Type III query, as range queries with a
        geometrically growing radius until at least ``k`` items are found;
        ties at the k-th distance are broken arbitrarily.  Every returned
        match carries its exact distance.
        """
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        if not self._items:
            return []
        if initial_radius <= 0 or growth <= 1:
            raise IndexError_("initial_radius must be > 0 and growth > 1")
        radius = initial_radius
        wanted = min(k, len(self._items))
        while True:
            matches = self.range_query(query, radius)
            if len(matches) >= wanted:
                resolved = [
                    RangeMatch(
                        match.key,
                        match.item,
                        match.distance
                        if match.distance is not None
                        else self._d(query, match.item),
                    )
                    for match in matches
                ]
                resolved.sort(key=lambda match: match.distance)
                return resolved[:wanted]
            radius *= growth

    def __repr__(self) -> str:
        return f"{type(self).__name__}(size={len(self)}, distance={self.distance.name!r})"
