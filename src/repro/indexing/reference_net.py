"""The Reference Net: the paper's generic metric index (Section 6, Appendix A).

The reference net is a hierarchical structure over a metric space:

* levels are numbered ``0 .. r-1``; level ``i`` is associated with the
  radius ``eps_i = eps' * 2**i``;
* the bottom level conceptually contains every item; each item is stored
  once, at its *home level* -- the highest level at which it acts as a
  reference;
* a reference ``R(i, j)`` at level ``i`` keeps a list ``L(i, j)`` of
  references from level ``i-1`` within distance ``eps_i`` -- and, unlike a
  cover tree, an item may appear in the lists of **several** parents, which
  is what lets a single reference distance prune or accept more of the
  database (Lemma 4, Figure 2);
* the *inclusive* property guarantees every reference of level ``i-1`` has
  at least one parent at level ``i``; the *exclusive* property keeps
  references of the same level at least ``eps_i`` apart;
* an optional ``nummax`` cap bounds how many parent lists may contain one
  item, keeping the space linear in adversarial distributions (the paper's
  DFD-5 configuration).

The implementation below maintains the inclusive (covering) property
exactly -- that is what range-query correctness relies on -- and the
exclusive property to the extent the insertion algorithm's local view
allows, matching the behaviour of the paper's Algorithm 1.

One implementation refinement over the paper's pseudo-code: every parent
link stores the exact parent-child distance (known for free at insertion
time), and the range query uses it for per-child triangle-inequality bounds
in addition to Lemma 4's level-radius bounds.  This costs no extra distance
computations, keeps the space linear, and is precisely the kind of pruning
the paper's Figure 2 motivates for the multi-parent design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from repro.distances.base import Distance, SequenceLike
from repro.distances.cache import DistanceCache
from repro.exceptions import IndexError_, InvariantViolationError
from repro.indexing.base import MetricIndex, RangeMatch
from repro.indexing.stats import DistanceCounter


class _Node:
    """One stored item and its position in the hierarchy."""

    __slots__ = ("key", "item", "home_level", "children", "parent_links")

    def __init__(self, key: Hashable, item: object, home_level: int) -> None:
        self.key = key
        self.item = item
        #: Highest level at which this node acts as a reference.
        self.home_level = home_level
        #: Children lists per level: ``children[i]`` is the list ``L(i, self)``
        #: as ``(child, exact parent-child distance)`` pairs.
        self.children: Dict[int, List[Tuple["_Node", float]]] = {}
        #: ``(level, parent)`` pairs for every list containing this node.
        self.parent_links: List[Tuple[int, "_Node"]] = []

    def iter_children(self) -> Iterator[Tuple[int, "_Node", float]]:
        """Yield ``(level, child, distance)`` for every child in every list."""
        for level, kids in self.children.items():
            for child, link_distance in kids:
                yield level, child, link_distance

    @property
    def is_leaf(self) -> bool:
        """True when this node has no children in any list."""
        return not self.children

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Node(key={self.key!r}, home_level={self.home_level})"


@dataclass
class ReferenceNetStats:
    """Space-overhead statistics (the quantities of Figures 5-7)."""

    #: Number of stored items (= nodes; each item is stored exactly once).
    node_count: int
    #: Total number of parent links (= total size of all reference lists).
    parent_link_count: int
    #: Average number of parents per non-root node.
    average_parents: float
    #: Number of non-empty reference lists.
    list_count: int
    #: Number of levels currently spanned by the hierarchy.
    level_count: int
    #: Rough in-memory footprint estimate in bytes (nodes + links).
    estimated_size_bytes: int
    #: Histogram ``{home_level: node count}``.
    level_histogram: Dict[int, int] = field(default_factory=dict)

    @property
    def estimated_size_mb(self) -> float:
        """The byte estimate expressed in megabytes."""
        return self.estimated_size_bytes / (1024.0 * 1024.0)


class ReferenceNet(MetricIndex):
    """Linear-space multi-parent metric index optimised for range queries.

    Parameters
    ----------
    distance:
        A metric distance (the constructor refuses non-metric measures).
    eps_prime:
        The base radius ``eps'``; level ``i`` uses radius ``eps' * 2**i``.
        The paper's experiments use ``eps' = 1``.
    nummax:
        Optional cap on the number of parent lists containing one item
        (``None`` = unconstrained; 5 reproduces the paper's DFD-5 / RN-5).
    counter:
        Optional shared distance counter.
    node_overhead_bytes / link_overhead_bytes:
        Constants used by :meth:`stats` to estimate the index footprint.
        They only matter for the space-overhead figures and have sane
        CPython-flavoured defaults.
    """

    index_name = "reference-net"

    #: Algorithms 1 and 2 of the paper are already incremental: insertion
    #: descends the hierarchy and deletion re-inserts orphaned nodes, so
    #: the net never goes stale; the one exception is removing the root
    #: reference, which rebuilds the structure eagerly (Algorithm 2's
    #: special case).
    staleness_policy = (
        "fully incremental (Algorithm 1 insert, Algorithm 2 delete with "
        "orphan re-insertion); root deletion rebuilds eagerly"
    )

    def __init__(
        self,
        distance: Distance,
        eps_prime: float = 1.0,
        nummax: Optional[int] = None,
        counter: Optional[DistanceCounter] = None,
        node_overhead_bytes: int = 112,
        link_overhead_bytes: int = 24,
        cache: Optional[DistanceCache] = None,
    ) -> None:
        super().__init__(distance, counter, require_metric=True, cache=cache)
        if eps_prime <= 0:
            raise IndexError_(f"eps_prime must be positive, got {eps_prime}")
        if nummax is not None and nummax < 1:
            raise IndexError_(f"nummax must be >= 1, got {nummax}")
        self.eps_prime = float(eps_prime)
        self.nummax = nummax
        self._node_overhead = int(node_overhead_bytes)
        self._link_overhead = int(link_overhead_bytes)
        self._nodes: Dict[Hashable, _Node] = {}
        self._root: Optional[_Node] = None
        self._max_level = 1

    # ------------------------------------------------------------------ #
    # Geometry helpers
    # ------------------------------------------------------------------ #
    def radius(self, level: int) -> float:
        """The covering radius ``eps' * 2**level`` of level ``level``."""
        return self.eps_prime * (2.0 ** level)

    def _subtree_radius(self, home_level: int) -> float:
        """Upper bound on the distance from a reference with the given home
        level to any node derived from it (geometric sum of the radii of the
        lists below it, bounded by the next level's radius)."""
        return self.radius(home_level + 1)

    @property
    def root_key(self) -> Optional[Hashable]:
        """Key of the current root reference (``None`` when empty)."""
        return self._root.key if self._root is not None else None

    @property
    def max_level(self) -> int:
        """The current top level of the hierarchy."""
        return self._max_level

    # ------------------------------------------------------------------ #
    # Insertion (Algorithm 1)
    # ------------------------------------------------------------------ #
    def add(self, item: object, key: Optional[Hashable] = None) -> Hashable:
        if key is None:
            key = self._auto_key()
        if key in self._items:
            raise IndexError_(f"key {key!r} is already present")

        if self._root is None:
            node = _Node(key, item, home_level=self._max_level)
            self._root = node
            self._nodes[key] = node
            self._items[key] = item
            return key

        root_distance = self._d(item, self._root.item)
        self._ensure_root_covers(root_distance)

        level = self._max_level
        candidates: List[Tuple[_Node, float]] = [(self._root, root_distance)]
        # Descend until no reference at the next level down covers the new
        # item, or until we reach the level just above the bottom.
        while level > 1:
            next_candidates = self._covering_candidates(item, candidates, level - 1)
            if not next_candidates:
                break
            candidates = next_candidates
            level -= 1

        node = _Node(key, item, home_level=level - 1)
        self._attach(node, candidates, level)
        self._nodes[key] = node
        self._items[key] = item
        return key

    def _ensure_root_covers(self, root_distance: float) -> None:
        """Raise the top level until the root covers the new item."""
        while root_distance > self.radius(self._max_level):
            self._max_level += 1
        if self._root is not None:
            self._root.home_level = self._max_level

    def _covering_candidates(
        self,
        item: object,
        candidates: List[Tuple[_Node, float]],
        level: int,
    ) -> List[Tuple[_Node, float]]:
        """References at ``level`` (children of ``candidates`` plus the
        candidates themselves, which implicitly appear at every lower level)
        that cover ``item`` within ``radius(level)``."""
        threshold = self.radius(level)
        seen: Dict[Hashable, float] = {}
        result: List[Tuple[_Node, float]] = []
        for node, known_distance in candidates:
            if node.key not in seen and known_distance <= threshold:
                seen[node.key] = known_distance
                result.append((node, known_distance))
        for node, _ in candidates:
            # Children in the list at ``level + 1`` have home level ``level``.
            for child, _link in node.children.get(level + 1, ()):
                if child.key in seen:
                    continue
                child_distance = self._d(item, child.item)
                seen[child.key] = child_distance
                if child_distance <= threshold:
                    result.append((child, child_distance))
        return result

    def _attach(self, node: _Node, parents: List[Tuple[_Node, float]], level: int) -> None:
        """Insert ``node`` into the lists ``L(level, parent)`` of ``parents``."""
        chosen = parents
        if self.nummax is not None and len(parents) > self.nummax:
            chosen = sorted(parents, key=lambda pair: pair[1])[: self.nummax]
        for parent, link_distance in chosen:
            parent.children.setdefault(level, []).append((node, link_distance))
            node.parent_links.append((level, parent))

    # ------------------------------------------------------------------ #
    # Deletion (Algorithm 2)
    # ------------------------------------------------------------------ #
    def remove(self, key: Hashable) -> object:
        if key not in self._nodes:
            raise IndexError_(f"no item with key {key!r} in this index")
        node = self._nodes[key]

        if node is self._root:
            item = node.item
            remaining = [
                (other.key, other.item) for other in self._nodes.values() if other is not node
            ]
            self._rebuild(remaining)
            return item

        del self._nodes[key]
        del self._items[key]
        for level, parent in node.parent_links:
            parent.children[level] = [
                entry for entry in parent.children[level] if entry[0] is not node
            ]
            if not parent.children[level]:
                del parent.children[level]
        node.parent_links = []

        orphans = self._dissolve(node)
        for orphan in orphans:
            del self._nodes[orphan.key]
            del self._items[orphan.key]
        for orphan in orphans:
            self.add(orphan.item, orphan.key)
        return node.item

    def _dissolve(self, node: _Node) -> List[_Node]:
        """Detach ``node``'s children; return nodes left without any parent.

        Orphaning can cascade: a child whose only parent was an orphan is an
        orphan too.  The returned list never contains ``node`` itself.
        """
        orphans: List[_Node] = []
        stack = [node]
        while stack:
            current = stack.pop()
            for level, child, _link in list(current.iter_children()):
                child.parent_links.remove((level, current))
                if not child.parent_links:
                    orphans.append(child)
                    stack.append(child)
            current.children = {}
        return orphans

    def _rebuild(self, items: List[Tuple[Hashable, object]]) -> None:
        """Rebuild the structure from scratch (used when the root is removed)."""
        self._nodes = {}
        self._items = {}
        self._root = None
        self._max_level = 1
        for key, item in items:
            self.add(item, key)
        self.update_stats.record_rebuild("root deletion")

    # ------------------------------------------------------------------ #
    # Range query (Algorithm 3)
    # ------------------------------------------------------------------ #
    def _range_search(
        self, query: SequenceLike, radius: float, counting
    ) -> List[RangeMatch]:
        """All items within ``radius`` of ``query``.

        Levels are processed from the top down, exactly as in the paper's
        Algorithm 3: a reference's distance is computed only if none of the
        lists containing it (nor Lemma 4 applied to an ancestor) already
        decided it.  Items proven to match through the triangle inequality
        alone are returned with ``distance=None``.  The traversal reads the
        structure only, so concurrent work units may run it against their
        own ``counting`` contexts.
        """
        if radius < 0:
            raise IndexError_(f"radius must be non-negative, got {radius}")
        if self._root is None:
            return []

        matches: List[RangeMatch] = []
        decided: set = set()
        #: Nodes awaiting a distance computation, grouped by home level.
        pending: Dict[int, List[_Node]] = {self._root.home_level: [self._root]}

        for level in range(self._max_level, -1, -1):
            for node in pending.pop(level, ()):
                if node.key in decided:
                    continue
                decided.add(node.key)
                value = counting(query, node.item)
                if value <= radius:
                    matches.append(RangeMatch(node.key, node.item, value))
                subtree = self._subtree_radius(node.home_level)
                if value + subtree <= radius:
                    self._accept_subtree(node, decided, matches)
                    continue
                if value - subtree > radius:
                    # Lemma 4: every node derived from this reference is out.
                    self._prune_subtree(node, decided)
                    continue
                self._route_children(node, value, radius, decided, matches, pending)
        return matches

    def _serial_batch_range_query(
        self, queries: List[SequenceLike], radius: float
    ) -> List[List[RangeMatch]]:
        """Range queries with reference-distance reuse across the batch.

        The net's traversal needs exact distances for its routing, so the
        queries still descend the hierarchy one at a time -- but a batch
        frequently probes overlapping query segments against the same
        references (the matcher's step 4 does exactly that), and those
        repeated (query, reference) pairs need only be measured once.  When
        no cache is attached, a batch-local
        :class:`~repro.distances.cache.DistanceCache` provides that reuse;
        with an attached cache the sharing already happens there.
        """
        if self._counting.cache is None:
            self._counting.cache = DistanceCache()
            try:
                return [self.range_query(query, radius) for query in queries]
            finally:
                self._counting.cache = None
        return [self.range_query(query, radius) for query in queries]

    def parallel_batch_range_query(
        self, queries: List[SequenceLike], radius: float, executor
    ) -> List[List[RangeMatch]]:
        """Executor fan-out over per-query traversal units.

        Cross-query reference-distance reuse flows through the attached
        cache; without one there is no shared state for the units to reuse
        (the serial path fakes it with a batch-local cache), so the
        cache-less net falls back to serial batch execution rather than
        silently recomputing every repeated reference distance per unit.
        """
        if self._counting.cache is None:
            return self._serial_batch_range_query(queries, radius)
        return super().parallel_batch_range_query(queries, radius, executor)

    def _route_children(
        self,
        node: _Node,
        value: float,
        radius: float,
        decided: set,
        matches: List[RangeMatch],
        pending: Dict[int, List[_Node]],
    ) -> None:
        """Decide or defer each child of ``node`` given ``d(query, node)``.

        Uses the exact stored parent-child distance for the child itself and
        the level-radius bound of Lemma 4 for the child's descendants.
        """
        for _level, child, link_distance in node.iter_children():
            if child.key in decided:
                continue
            child_subtree = self._subtree_radius(child.home_level)
            if value + link_distance + child_subtree <= radius:
                decided.add(child.key)
                matches.append(RangeMatch(child.key, child.item, None))
                self._accept_subtree(child, decided, matches)
                continue
            if value - link_distance - child_subtree > radius:
                decided.add(child.key)
                self._prune_subtree(child, decided)
                continue
            if child.is_leaf:
                # The child has no descendants, so the exact link distance
                # alone can settle it without a distance computation.
                if value + link_distance <= radius:
                    decided.add(child.key)
                    matches.append(RangeMatch(child.key, child.item, None))
                    continue
                if value - link_distance > radius:
                    decided.add(child.key)
                    continue
            pending.setdefault(child.home_level, []).append(child)

    def _accept_subtree(self, node: _Node, decided: set, matches: List[RangeMatch]) -> None:
        """Add every undecided descendant of ``node`` to the results."""
        stack = [node]
        while stack:
            current = stack.pop()
            for _level, child, _link in current.iter_children():
                if child.key in decided:
                    continue
                decided.add(child.key)
                matches.append(RangeMatch(child.key, child.item, None))
                stack.append(child)

    def _prune_subtree(self, node: _Node, decided: set) -> None:
        """Mark every undecided descendant of ``node`` as rejected."""
        stack = [node]
        while stack:
            current = stack.pop()
            for _level, child, _link in current.iter_children():
                if child.key in decided:
                    continue
                decided.add(child.key)
                stack.append(child)

    # ------------------------------------------------------------------ #
    # Snapshot support
    # ------------------------------------------------------------------ #
    def _export_structure(self) -> dict:
        keys = list(self._items.keys())
        position = {key: index for index, key in enumerate(keys)}
        nodes = []
        for key in keys:
            node = self._nodes[key]
            # Children and parent links flattened with the level-dict order
            # and within-list order preserved; the exact link distances ride
            # along so the restored net prunes identically without
            # recomputing anything (JSON floats round-trip exactly).
            children = [
                [level, [[position[child.key], link_distance] for child, link_distance in kids]]
                for level, kids in node.children.items()
            ]
            parent_links = [
                [level, position[parent.key]] for level, parent in node.parent_links
            ]
            nodes.append(
                {
                    "home_level": node.home_level,
                    "children": children,
                    "parent_links": parent_links,
                }
            )
        return {
            "max_level": self._max_level,
            "root_position": position[self._root.key] if self._root is not None else None,
            "nodes": nodes,
        }

    def _restore_structure(self, state: dict) -> None:
        keys = list(self._items.keys())
        records = state["nodes"]
        nodes = [
            _Node(key, self._items[key], home_level=int(record["home_level"]))
            for key, record in zip(keys, records)
        ]
        for record, node in zip(records, nodes):
            for level, entries in record["children"]:
                node.children[int(level)] = [
                    (nodes[int(child_position)], float(link_distance))
                    for child_position, link_distance in entries
                ]
            node.parent_links = [
                (int(level), nodes[int(parent_position)])
                for level, parent_position in record["parent_links"]
            ]
        self._nodes = {node.key: node for node in nodes}
        self._max_level = int(state["max_level"])
        root_position = state["root_position"]
        self._root = None if root_position is None else nodes[int(root_position)]

    # ------------------------------------------------------------------ #
    # Statistics and invariants
    # ------------------------------------------------------------------ #
    def stats(self) -> ReferenceNetStats:
        """Space-overhead statistics for the current structure."""
        node_count = len(self._nodes)
        link_count = sum(len(node.parent_links) for node in self._nodes.values())
        list_count = sum(len(node.children) for node in self._nodes.values())
        non_root = max(node_count - 1, 1)
        histogram: Dict[int, int] = {}
        for node in self._nodes.values():
            histogram[node.home_level] = histogram.get(node.home_level, 0) + 1
        size = node_count * self._node_overhead + link_count * self._link_overhead
        return ReferenceNetStats(
            node_count=node_count,
            parent_link_count=link_count,
            average_parents=link_count / non_root,
            list_count=list_count,
            level_count=self._max_level + 1,
            estimated_size_bytes=size,
            level_histogram=histogram,
        )

    def check_invariants(self) -> None:
        """Verify structural invariants; raise :class:`InvariantViolationError`.

        Checked: (a) every non-root node has at least one parent (the
        inclusive property), (b) parent/child links are mutually consistent,
        (c) every child lies within the covering radius of its list's level
        and the stored link distance is exact, and (d) every node is
        reachable from the root.
        """
        if self._root is None:
            if self._nodes:
                raise InvariantViolationError("nodes present but no root")
            return
        reachable = {self._root.key}
        stack = [self._root]
        while stack:
            current = stack.pop()
            for level, child, link_distance in current.iter_children():
                if (level, current) not in child.parent_links:
                    raise InvariantViolationError(
                        f"child {child.key!r} lacks a back-link to parent {current.key!r}"
                    )
                if child.home_level != level - 1:
                    raise InvariantViolationError(
                        f"child {child.key!r} in a level-{level} list has home level "
                        f"{child.home_level} (expected {level - 1})"
                    )
                covering = self.distance(current.item, child.item)
                if abs(covering - link_distance) > 1e-9 * max(1.0, covering):
                    raise InvariantViolationError(
                        f"stored link distance {link_distance} for child {child.key!r} "
                        f"does not match the recomputed distance {covering}"
                    )
                if covering > self.radius(level) * (1 + 1e-9):
                    raise InvariantViolationError(
                        f"child {child.key!r} is at distance {covering} from parent "
                        f"{current.key!r}, beyond the level-{level} radius {self.radius(level)}"
                    )
                if child.key not in reachable:
                    reachable.add(child.key)
                    stack.append(child)
        for key, node in self._nodes.items():
            if node is not self._root and not node.parent_links:
                raise InvariantViolationError(f"node {key!r} has no parent")
            if key not in reachable:
                raise InvariantViolationError(f"node {key!r} is unreachable from the root")
            if self.nummax is not None and len(node.parent_links) > self.nummax:
                raise InvariantViolationError(
                    f"node {key!r} has {len(node.parent_links)} parents, exceeding "
                    f"nummax={self.nummax}"
                )

    def exclusivity_violations(self) -> int:
        """Count pairs of same-home-level nodes closer than the level radius.

        The insertion algorithm only sees references reachable through its
        candidate set, so -- exactly like the paper's Algorithm 1 -- the
        exclusive property can be violated occasionally.  The count is
        exposed for analysis; it does not affect query correctness.
        """
        by_level: Dict[int, List[_Node]] = {}
        for node in self._nodes.values():
            by_level.setdefault(node.home_level, []).append(node)
        violations = 0
        for level, nodes in by_level.items():
            if level == 0:
                continue
            threshold = self.radius(level)
            for i in range(len(nodes)):
                for j in range(i + 1, len(nodes)):
                    if self.distance(nodes[i].item, nodes[j].item) < threshold:
                        violations += 1
        return violations

    def level_of(self, key: Hashable) -> int:
        """Home level of the node stored under ``key``."""
        try:
            return self._nodes[key].home_level
        except KeyError:
            raise IndexError_(f"no item with key {key!r} in this index") from None

    def __repr__(self) -> str:
        return (
            f"ReferenceNet(size={len(self)}, eps_prime={self.eps_prime}, "
            f"nummax={self.nummax}, max_level={self._max_level}, "
            f"distance={self.distance.name!r})"
        )
