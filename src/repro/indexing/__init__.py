"""Metric index substrate.

The paper's framework answers segment-vs-window range queries through a
metric index.  This subpackage provides:

* :class:`~repro.indexing.reference_net.ReferenceNet` -- the paper's
  contribution: a linear-space, multi-parent hierarchy optimised for range
  queries (Section 6 and Appendix A).
* :class:`~repro.indexing.cover_tree.CoverTree` -- the main baseline.
* :class:`~repro.indexing.reference_based.ReferenceIndex` -- reference-based
  indexing with Maximum-Variance or Maximum-Pruning reference selection.
* :class:`~repro.indexing.vp_tree.VPTree` -- an additional classic baseline.
* :class:`~repro.indexing.linear_scan.LinearScanIndex` -- the naive lower
  bound every figure normalises against.

All indexes share the :class:`~repro.indexing.base.MetricIndex` interface
and count every distance evaluation through a
:class:`~repro.indexing.stats.DistanceCounter`, which is the quantity the
paper's Figures 8-11 report.
"""

from repro.indexing.base import MetricIndex, RangeMatch
from repro.indexing.stats import DistanceCounter, CountingDistance, IndexStats
from repro.indexing.linear_scan import LinearScanIndex
from repro.indexing.reference_net import ReferenceNet
from repro.indexing.cover_tree import CoverTree
from repro.indexing.reference_based import ReferenceIndex, select_max_variance, select_max_pruning
from repro.indexing.vp_tree import VPTree

__all__ = [
    "MetricIndex",
    "RangeMatch",
    "DistanceCounter",
    "CountingDistance",
    "IndexStats",
    "LinearScanIndex",
    "ReferenceNet",
    "CoverTree",
    "ReferenceIndex",
    "select_max_variance",
    "select_max_pruning",
    "VPTree",
]
