"""Dynamic Time Warping (DTW).

DTW aligns two sequences by warping the time axis so that each element of one
sequence is coupled with one or more elements of the other, minimising the
sum of coupling costs.  The paper shows DTW is *consistent* (Section 4) but
points out that it is **not a metric** -- it violates the triangle
inequality -- so the metric indexes of :mod:`repro.indexing` refuse it.  It
can still be used with the segmentation filter via a linear scan, and is
included here both for completeness and as a baseline distance.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.distances.alignment import (
    Alignment,
    batch_warping_distance,
    warping_distance,
    warping_table,
    warping_traceback,
)
from repro.distances.backend import fused_provider
from repro.distances.base import Distance, ElementMetric, as_array, check_same_dim
from repro.distances.compiled import METRIC_KIND_CODES
from repro.exceptions import DistanceError


class DTW(Distance):
    """Dynamic time warping with an optional Sakoe-Chiba band.

    Parameters
    ----------
    element_metric:
        Ground distance between individual elements (default Euclidean).
    band:
        Optional Sakoe-Chiba band half-width; ``None`` means unconstrained
        warping.  A band of 0 degenerates to the (rescaled) lockstep
        distance for equal-length inputs.
    """

    name = "dtw"
    is_metric = False
    is_consistent = True
    supports_unequal_lengths = True

    def __init__(
        self,
        element_metric: Optional[ElementMetric] = None,
        band: Optional[int] = None,
    ) -> None:
        if band is not None and band < 0:
            raise DistanceError(f"band must be non-negative, got {band}")
        self.element_metric = element_metric or ElementMetric("euclidean")
        self.band = band

    def compute(self, first: np.ndarray, second: np.ndarray) -> float:
        kernels = fused_provider(first.shape[1])
        if kernels is not None:
            kind = METRIC_KIND_CODES[self.element_metric.kind]
            value = kernels.warp_value(first, second, kind, False, self.band, None)
        else:
            cost = self.element_metric.matrix(first, second)
            value = warping_distance(cost, aggregate="sum", band=self.band)
        if np.isinf(value):
            raise DistanceError(
                "no warping path fits within the Sakoe-Chiba band; "
                "widen the band or use unconstrained DTW"
            )
        return value

    def compute_bounded(self, first: np.ndarray, second: np.ndarray, cutoff: float) -> float:
        """Early-abandoning DTW: ``inf`` once a table row exceeds ``cutoff``.

        Note that with a band configured an infeasible alignment also yields
        ``inf`` here (instead of the error :meth:`compute` raises), because
        the abandoned computation cannot tell the two apart.
        """
        kernels = fused_provider(first.shape[1])
        if kernels is not None:
            kind = METRIC_KIND_CODES[self.element_metric.kind]
            return kernels.warp_value(first, second, kind, False, self.band, cutoff)
        cost = self.element_metric.matrix(first, second)
        return warping_distance(cost, aggregate="sum", band=self.band, cutoff=cutoff)

    def compute_batch(self, query: np.ndarray, items: np.ndarray, cutoff) -> np.ndarray:
        """Batched DTW: one cost tensor, one row sweep for the whole group."""
        kernels = fused_provider(query.shape[1])
        if kernels is not None:
            kind = METRIC_KIND_CODES[self.element_metric.kind]
            values = kernels.warp_batch(query, items, kind, False, self.band, cutoff)
        else:
            cost = self.element_metric.matrix_batch(query, items)
            values = batch_warping_distance(cost, aggregate="sum", band=self.band, cutoff=cutoff)
        if cutoff is None and self.band is not None and np.isinf(values).any():
            raise DistanceError(
                "no warping path fits within the Sakoe-Chiba band; "
                "widen the band or use unconstrained DTW"
            )
        return values

    def alignment(self, first, second) -> Alignment:
        """Return the optimal warping alignment (the coupling sequence C)."""
        a = as_array(first)
        b = as_array(second)
        check_same_dim(a, b)
        cost = self.element_metric.matrix(a, b)
        table = warping_table(cost, aggregate="sum", band=self.band)
        return warping_traceback(table, cost, aggregate="sum")

    def lower_bound(self, first, second) -> float:
        """LB_Kim-style bound: cost of coupling the two endpoints.

        The first elements of both sequences must be coupled, and so must
        the last elements, so the sum of those two ground distances can
        never exceed the DTW cost.
        """
        a = as_array(first)
        b = as_array(second)
        check_same_dim(a, b)
        start = self.element_metric.single(a[0], b[0])
        end = self.element_metric.single(a[-1], b[-1])
        return float(start + end)

    def __repr__(self) -> str:
        return f"DTW(element_metric={self.element_metric!r}, band={self.band})"
