"""ERP: Edit distance with Real Penalty (Chen & Ng, VLDB 2004).

ERP marries the L1 family with the edit distance: elements may be matched
(paying their ground distance) or left unmatched (paying the ground distance
to a fixed *gap element* ``g``).  Because the gap penalty is anchored to a
constant element, ERP satisfies the triangle inequality -- unlike DTW -- and
the paper uses it as one of the two time-series metrics driving the
experiments (SONGS/ERP, TRAJ/ERP).
"""

from __future__ import annotations

from typing import Optional, Sequence as TypingSequence, Union

import numpy as np

from repro.distances.alignment import (
    Alignment,
    batch_edit_distance_value,
    edit_distance_value,
    edit_table,
    edit_traceback,
)
from repro.distances.backend import fused_provider
from repro.distances.base import Distance, ElementMetric, as_array, check_same_dim
from repro.distances.compiled import METRIC_KIND_CODES, MODE_ERP
from repro.exceptions import DistanceError


class ERP(Distance):
    """Edit distance with Real Penalty.

    Parameters
    ----------
    gap:
        The gap element ``g``.  A scalar is broadcast to the element
        dimensionality at computation time; the conventional (and default)
        choice is the origin, which is what makes ERP a metric.
    element_metric:
        Ground distance between elements; the original definition uses the
        L1 norm, but any element metric keeps ERP a metric as long as the
        gap element is fixed.
    """

    name = "erp"
    is_metric = True
    is_consistent = True
    supports_unequal_lengths = True

    def __init__(
        self,
        gap: Union[float, TypingSequence[float]] = 0.0,
        element_metric: Optional[ElementMetric] = None,
    ) -> None:
        self.gap = np.atleast_1d(np.asarray(gap, dtype=np.float64))
        if self.gap.ndim != 1:
            raise DistanceError("the ERP gap element must be a scalar or a 1-D vector")
        self.element_metric = element_metric or ElementMetric("euclidean")

    def _gap_vector(self, dim: int) -> np.ndarray:
        if self.gap.shape[0] == dim:
            return self.gap
        if self.gap.shape[0] == 1:
            return np.full(dim, float(self.gap[0]), dtype=np.float64)
        raise DistanceError(
            f"gap element has dimension {self.gap.shape[0]} but elements have dimension {dim}"
        )

    def compute(self, first: np.ndarray, second: np.ndarray) -> float:
        return self.compute_bounded(first, second, None)

    def compute_bounded(self, first: np.ndarray, second: np.ndarray, cutoff) -> float:
        """Early-abandoning ERP: gap and match costs are all non-negative."""
        gap = self._gap_vector(first.shape[1])
        kernels = fused_provider(first.shape[1])
        if kernels is not None:
            kind = METRIC_KIND_CODES[self.element_metric.kind]
            return kernels.edit_value(first, second, MODE_ERP, kind, gap, 0.0, cutoff)
        substitution = self.element_metric.matrix(first, second)
        deletion = self.element_metric.to_origin(first, gap)
        insertion = self.element_metric.to_origin(second, gap)
        return edit_distance_value(substitution, deletion, insertion, cutoff=cutoff)

    def compute_batch(self, query: np.ndarray, items: np.ndarray, cutoff) -> np.ndarray:
        """Batched ERP: shared query-side gap costs, per-item insertion costs."""
        gap = self._gap_vector(query.shape[1])
        kernels = fused_provider(query.shape[1])
        if kernels is not None:
            kind = METRIC_KIND_CODES[self.element_metric.kind]
            return kernels.edit_batch(query, items, MODE_ERP, kind, gap, 0.0, cutoff)
        substitution = self.element_metric.matrix_batch(query, items)
        deletion = self.element_metric.to_origin(query, gap)
        insertion = self.element_metric.to_origin_batch(items, gap)
        return batch_edit_distance_value(substitution, deletion, insertion, cutoff=cutoff)

    def alignment(self, first, second) -> Alignment:
        """Return one optimal ERP alignment (gap operations excluded)."""
        a = as_array(first)
        b = as_array(second)
        check_same_dim(a, b)
        gap = self._gap_vector(a.shape[1])
        substitution = self.element_metric.matrix(a, b)
        deletion = self.element_metric.to_origin(a, gap)
        insertion = self.element_metric.to_origin(b, gap)
        table = edit_table(substitution, deletion, insertion)
        return edit_traceback(table, substitution, deletion, insertion)

    def empty_distance(self, other) -> float:
        """ERP against the empty sequence: every element pays its gap cost."""
        values = as_array(other)
        gap = self._gap_vector(values.shape[1])
        return float(np.sum(self.element_metric.to_origin(values, gap)))

    def lower_bound(self, first, second) -> float:
        """| sum-to-gap(first) - sum-to-gap(second) | (Chen & Ng's bound).

        The total ERP cost of a sequence against the empty sequence is the
        sum of element distances to the gap element; the difference of the
        two totals lower-bounds the true ERP distance.
        """
        a = as_array(first)
        b = as_array(second)
        check_same_dim(a, b)
        gap = self._gap_vector(a.shape[1])
        total_a = float(np.sum(self.element_metric.to_origin(a, gap)))
        total_b = float(np.sum(self.element_metric.to_origin(b, gap)))
        return abs(total_a - total_b)

    def __repr__(self) -> str:
        return f"ERP(gap={self.gap.tolist()}, element_metric={self.element_metric!r})"
