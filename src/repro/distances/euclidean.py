"""The Euclidean (L2) distance between equal-length sequences.

The paper uses the Euclidean distance both as the classic lockstep sequence
distance (Faloutsos et al.'s original subsequence-matching setting) and as
the simplest example of a consistent metric: dropping terms from the sum of
squares can only shrink it, so every subsequence pair at matched offsets is
at most as far apart as the whole sequences (Section 4).
"""

from __future__ import annotations

import numpy as np

from repro.distances.base import Distance


class Euclidean(Distance):
    """L2 distance over equal-length sequences of same-dimensional elements.

    Metric: yes.  Consistent: yes.  Requires equal lengths: yes -- which is
    why the paper pairs it only with same-length window comparisons and
    prefers elastic measures for general subsequence matching.
    """

    name = "euclidean"
    is_metric = True
    is_consistent = True
    supports_unequal_lengths = False

    def compute(self, first: np.ndarray, second: np.ndarray) -> float:
        diff = first - second
        return float(np.sqrt(np.sum(diff * diff)))

    def compute_batch(self, query: np.ndarray, items: np.ndarray, cutoff) -> np.ndarray:
        """Batched L2: one subtraction and reduction for the whole group."""
        diff = items - query[None, :, :]
        return np.sqrt(np.sum(diff * diff, axis=(1, 2)))

    def lower_bound(self, first, second) -> float:
        """|  ||a|| - ||b||  | by the reverse triangle inequality."""
        from repro.distances.base import as_array

        a = as_array(first)
        b = as_array(second)
        return abs(float(np.linalg.norm(a)) - float(np.linalg.norm(b)))
