"""LCSS-based distance (extension distance).

The Longest Common SubSequence similarity counts how many elements of the
two sequences can be matched within a threshold ``epsilon`` while respecting
order.  The derived distance ``1 - LCSS / min(|A|, |B|)`` is a popular
trajectory measure; like EDR it is robust to outliers but not a metric, so
within this library it is only usable with linear-scan filtering.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.distances.alignment import lcss_length
from repro.distances.base import Distance, ElementMetric
from repro.exceptions import DistanceError


class LCSS(Distance):
    """Distance derived from the Longest Common SubSequence similarity.

    Parameters
    ----------
    epsilon:
        Matching threshold for two elements to count as common.
    element_metric:
        Ground distance used for the threshold test.
    """

    name = "lcss"
    is_metric = False
    is_consistent = False
    supports_unequal_lengths = True

    def __init__(self, epsilon: float = 0.5, element_metric: Optional[ElementMetric] = None) -> None:
        if epsilon < 0:
            raise DistanceError(f"epsilon must be non-negative, got {epsilon}")
        self.epsilon = float(epsilon)
        self.element_metric = element_metric or ElementMetric("euclidean")

    def similarity_length(self, first: np.ndarray, second: np.ndarray) -> int:
        """Length of the longest common (threshold-matched) subsequence."""
        ground = self.element_metric.matrix(first, second)
        return lcss_length(ground <= self.epsilon)

    def compute(self, first: np.ndarray, second: np.ndarray) -> float:
        common = self.similarity_length(first, second)
        shorter = min(first.shape[0], second.shape[0])
        return 1.0 - common / shorter

    def __repr__(self) -> str:
        return f"LCSS(epsilon={self.epsilon}, element_metric={self.element_metric!r})"
