"""Shared dynamic-programming machinery for elastic sequence distances.

DTW, ERP, the Levenshtein distance and the discrete Fréchet distance are all
computed by filling a dynamic-programming table whose cell ``(i, j)`` stores
the best cost of aligning the first ``i`` elements of one sequence with the
first ``j`` elements of the other.  The measures differ only in the
recurrence: DTW/Fréchet couple elements without gap penalties (aggregating by
sum or maximum), whereas ERP and Levenshtein pay explicit gap costs.

This module provides the table-filling kernels and the traceback that turns
a filled table into an explicit alignment (a list of *couplings*), which is
what the paper's consistency proof reasons about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import DistanceError

#: A coupling pairs index ``i`` of the first sequence with index ``j`` of the second.
Coupling = Tuple[int, int]


@dataclass(frozen=True)
class Alignment:
    """An explicit alignment between two sequences.

    Attributes
    ----------
    couplings:
        Monotonically non-decreasing list of ``(i, j)`` index pairs, covering
        every index of both sequences (boundary + continuity properties).
    cost:
        The aggregated cost of the alignment under the distance that
        produced it (sum of coupling costs, or the maximum for Fréchet).
    """

    couplings: Tuple[Coupling, ...]
    cost: float

    def __len__(self) -> int:
        return len(self.couplings)

    def covers_all_indices(self, length_first: int, length_second: int) -> bool:
        """Check the boundary/continuity conditions of a warping alignment."""
        firsts = {i for i, _ in self.couplings}
        seconds = {j for _, j in self.couplings}
        return firsts == set(range(length_first)) and seconds == set(range(length_second))


def _validate_cost_matrix(cost: np.ndarray) -> None:
    if cost.ndim != 2 or cost.shape[0] == 0 or cost.shape[1] == 0:
        raise DistanceError("cost matrix must be a non-empty 2-D array")


def warping_table(
    cost: np.ndarray,
    aggregate: str = "sum",
    band: Optional[int] = None,
) -> np.ndarray:
    """Fill the DTW / discrete-Fréchet dynamic-programming table.

    Parameters
    ----------
    cost:
        The element cost matrix ``C[i, j]``.
    aggregate:
        ``"sum"`` for DTW-style accumulation, ``"max"`` for the discrete
        Fréchet distance (the bottleneck variant).
    band:
        Optional Sakoe-Chiba band half-width.  Cells with ``|i - j| > band``
        are left at infinity, constraining the warping path.

    Returns
    -------
    numpy.ndarray
        A ``(n, m)`` table whose bottom-right cell is the distance.
    """
    _validate_cost_matrix(cost)
    if aggregate not in ("sum", "max"):
        raise DistanceError(f"aggregate must be 'sum' or 'max', got {aggregate!r}")
    n, m = cost.shape
    use_sum = aggregate == "sum"
    inf = float("inf")
    cost_rows = cost.tolist()
    # The table is filled with plain Python floats: the windows this library
    # aligns are short (tens of elements) but the kernel runs millions of
    # times, and per-cell numpy indexing would dominate the runtime.
    rows: List[List[float]] = []
    for i in range(n):
        cost_row = cost_rows[i]
        prev_row = rows[i - 1] if i > 0 else None
        row = [inf] * m
        if band is None:
            j_start, j_stop = 0, m
        else:
            j_start = max(0, i - band)
            j_stop = min(m, i + band + 1)
        for j in range(j_start, j_stop):
            c = cost_row[j]
            if i == 0 and j == 0:
                best = 0.0
            else:
                best = inf
                if prev_row is not None:
                    if j > 0 and prev_row[j - 1] < best:
                        best = prev_row[j - 1]
                    if prev_row[j] < best:
                        best = prev_row[j]
                if j > 0 and row[j - 1] < best:
                    best = row[j - 1]
            if best == inf:
                continue
            if use_sum:
                row[j] = best + c
            else:
                row[j] = best if best > c else c
        rows.append(row)
    return np.asarray(rows, dtype=np.float64)


def warping_traceback(table: np.ndarray, cost: np.ndarray, aggregate: str = "sum") -> Alignment:
    """Recover the optimal warping alignment from a filled table."""
    n, m = table.shape
    if np.isinf(table[n - 1, m - 1]):
        raise DistanceError("no feasible warping path (band too narrow?)")
    couplings: List[Coupling] = [(n - 1, m - 1)]
    i, j = n - 1, m - 1
    while i > 0 or j > 0:
        candidates = []
        if i > 0 and j > 0:
            candidates.append((table[i - 1, j - 1], (i - 1, j - 1)))
        if i > 0:
            candidates.append((table[i - 1, j], (i - 1, j)))
        if j > 0:
            candidates.append((table[i, j - 1], (i, j - 1)))
        _, (i, j) = min(candidates, key=lambda item: item[0])
        couplings.append((i, j))
    couplings.reverse()
    return Alignment(tuple(couplings), float(table[n - 1, m - 1]))


def edit_table(
    substitution: np.ndarray,
    deletion: np.ndarray,
    insertion: np.ndarray,
) -> np.ndarray:
    """Fill an edit-distance style table with explicit gap costs.

    The recurrence is shared by the Levenshtein distance (unit costs), the
    weighted Levenshtein distance, and ERP (gap cost = ground distance to the
    gap element ``g``)::

        D[i, j] = min(D[i-1, j-1] + substitution[i-1, j-1],
                      D[i-1, j]   + deletion[i-1],
                      D[i, j-1]   + insertion[j-1])

    Parameters
    ----------
    substitution:
        ``(n, m)`` cost of matching element ``i`` of the first sequence with
        element ``j`` of the second.
    deletion:
        Length-``n`` cost of leaving element ``i`` of the first sequence
        unmatched.
    insertion:
        Length-``m`` cost of leaving element ``j`` of the second sequence
        unmatched.

    Returns
    -------
    numpy.ndarray
        The ``(n + 1, m + 1)`` table; the bottom-right cell is the distance.
    """
    _validate_cost_matrix(substitution)
    n, m = substitution.shape
    if deletion.shape != (n,) or insertion.shape != (m,):
        raise DistanceError("gap cost vectors do not match the substitution matrix")
    sub_rows = substitution.tolist()
    del_costs = deletion.tolist()
    ins_costs = insertion.tolist()
    # Same rationale as warping_table: plain-float rows keep the hot DP loop
    # an order of magnitude faster than per-cell numpy indexing.
    first_row = [0.0] * (m + 1)
    acc = 0.0
    for j in range(1, m + 1):
        acc += ins_costs[j - 1]
        first_row[j] = acc
    rows: List[List[float]] = [first_row]
    for i in range(1, n + 1):
        sub_row = sub_rows[i - 1]
        delete_cost = del_costs[i - 1]
        prev_row = rows[i - 1]
        row = [0.0] * (m + 1)
        row[0] = prev_row[0] + delete_cost
        for j in range(1, m + 1):
            best = prev_row[j - 1] + sub_row[j - 1]
            up = prev_row[j] + delete_cost
            if up < best:
                best = up
            left = row[j - 1] + ins_costs[j - 1]
            if left < best:
                best = left
            row[j] = best
        rows.append(row)
    return np.asarray(rows, dtype=np.float64)


def edit_traceback(
    table: np.ndarray,
    substitution: np.ndarray,
    deletion: np.ndarray,
    insertion: np.ndarray,
) -> Alignment:
    """Recover one optimal edit alignment (couplings exclude gap operations)."""
    n, m = substitution.shape
    couplings: List[Coupling] = []
    i, j = n, m
    while i > 0 and j > 0:
        here = table[i, j]
        if np.isclose(here, table[i - 1, j - 1] + substitution[i - 1, j - 1]):
            couplings.append((i - 1, j - 1))
            i, j = i - 1, j - 1
        elif np.isclose(here, table[i - 1, j] + deletion[i - 1]):
            i -= 1
        else:
            j -= 1
    couplings.reverse()
    return Alignment(tuple(couplings), float(table[n, m]))
