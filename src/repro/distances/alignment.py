"""Shared dynamic-programming machinery for elastic sequence distances.

DTW, ERP, the Levenshtein distance and the discrete Fréchet distance are all
computed by filling a dynamic-programming table whose cell ``(i, j)`` stores
the best cost of aligning the first ``i`` elements of one sequence with the
first ``j`` elements of the other.  The measures differ only in the
recurrence: DTW/Fréchet couple elements without gap penalties (aggregating by
sum or maximum), whereas ERP and Levenshtein pay explicit gap costs.

The kernels here are *row-vectorized*: a table row depends on the previous
row element-wise and on itself through a left-to-right scan, and both parts
are expressed as NumPy primitives instead of per-cell Python arithmetic.

For the additive recurrences (DTW, ERP, Levenshtein, EDR) the in-row scan
``row[j] = min(entry[j], row[j-1] + step[j])`` unrolls to

    row[j] = S[j] + min_{k <= j} (entry[k] - S[k]),   S = cumsum(step),

i.e. a single ``np.minimum.accumulate``.  For the bottleneck recurrence
(discrete Fréchet) the scan ``row[j] = max(c[j], min(entry[j], row[j-1]))``
is solved by doubling: after ``ceil(log2(m))`` shifted min/max passes every
horizontal run length has been considered.

Besides the full tables (still needed by the tracebacks), the module offers
*value-only* variants (:func:`warping_distance`, :func:`edit_distance_value`)
that keep a two-row working set and support **early abandoning**: every
complete alignment path visits at least one cell of every row and table
values never decrease along a path, so once a row's minimum exceeds the
caller's ``cutoff`` the final distance must exceed it too and the kernel
returns ``inf`` immediately.  This is what backs the
:meth:`repro.distances.base.Distance.compute_bounded` API.

This module also provides the traceback that turns a filled table into an
explicit alignment (a list of *couplings*), which is what the paper's
consistency proof reasons about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import DistanceError

#: A coupling pairs index ``i`` of the first sequence with index ``j`` of the second.
Coupling = Tuple[int, int]

_INF = float("inf")

#: A batch abandon threshold: ``None``, one scalar for the whole batch, or a
#: per-row ``(k,)`` vector (the top-k scan tightens rows as its heap fills).
BatchCutoff = Union[None, float, np.ndarray]


def _normalise_batch_cutoff(cutoff: BatchCutoff, k: int):
    """Validate a batch cutoff; scalars stay scalar, vectors become float64.

    Returning scalars unchanged keeps the scalar code path (and its exact
    comparison semantics) byte-for-byte what it was before per-row
    thresholds existed.
    """
    if cutoff is None or np.ndim(cutoff) == 0:
        return cutoff
    vector = np.asarray(cutoff, dtype=np.float64)
    if vector.shape != (k,):
        raise DistanceError(
            f"per-row cutoff vector has shape {vector.shape}, expected ({k},)"
        )
    return vector


@dataclass(frozen=True)
class Alignment:
    """An explicit alignment between two sequences.

    Attributes
    ----------
    couplings:
        Monotonically non-decreasing list of ``(i, j)`` index pairs, covering
        every index of both sequences (boundary + continuity properties).
    cost:
        The aggregated cost of the alignment under the distance that
        produced it (sum of coupling costs, or the maximum for Fréchet).
    """

    couplings: Tuple[Coupling, ...]
    cost: float

    def __len__(self) -> int:
        return len(self.couplings)

    def covers_all_indices(self, length_first: int, length_second: int) -> bool:
        """Check the boundary/continuity conditions of a warping alignment."""
        firsts = {i for i, _ in self.couplings}
        seconds = {j for _, j in self.couplings}
        return firsts == set(range(length_first)) and seconds == set(range(length_second))


def _validate_cost_matrix(cost: np.ndarray) -> None:
    if cost.ndim != 2 or cost.shape[0] == 0 or cost.shape[1] == 0:
        raise DistanceError("cost matrix must be a non-empty 2-D array")


def _band_limits(i: int, m: int, band: Optional[int]) -> Tuple[int, int]:
    """Half-open column range of row ``i`` inside a Sakoe-Chiba band."""
    if band is None:
        return 0, m
    return max(0, i - band), min(m, i + band + 1)


def _sum_row(
    cost_row: np.ndarray,
    prev: Optional[np.ndarray],
    j_start: int,
    j_stop: int,
) -> np.ndarray:
    """One vectorized row of the additive (DTW-style) warping recurrence."""
    m = cost_row.shape[0]
    entry = np.full(m, _INF)
    if prev is None:
        if j_start == 0:
            entry[0] = cost_row[0]
    else:
        base = np.empty(m)
        base[0] = prev[0]
        np.minimum(prev[1:], prev[:-1], out=base[1:])
        entry[j_start:j_stop] = base[j_start:j_stop] + cost_row[j_start:j_stop]
    # Unrolled in-row scan: row[j] = S[j] + min_{k <= j} (entry[k] - S[k]).
    prefix = np.cumsum(cost_row)
    row = prefix + np.minimum.accumulate(entry - prefix)
    if j_start > 0:
        row[:j_start] = _INF
    if j_stop < m:
        row[j_stop:] = _INF
    return row


def _max_row(
    cost_row: np.ndarray,
    prev: Optional[np.ndarray],
    j_start: int,
    j_stop: int,
) -> np.ndarray:
    """One vectorized row of the bottleneck (Fréchet-style) recurrence."""
    m = cost_row.shape[0]
    step = np.full(m, _INF)
    step[j_start:j_stop] = cost_row[j_start:j_stop]
    entry = np.full(m, _INF)
    if prev is None:
        if j_start == 0:
            entry[0] = cost_row[0]
    else:
        base = np.empty(m)
        base[0] = prev[0]
        np.minimum(prev[1:], prev[:-1], out=base[1:])
        entry = np.maximum(base, step)
    # Doubling scan: after the pass for shift s, row[j] accounts for every
    # horizontal run of length < 2s ending at j; run_max[j] is the maximum
    # step cost over the last s columns ending at j.
    row = entry
    run_max = step
    shift = 1
    while shift < m:
        shifted_row = np.full(m, _INF)
        shifted_row[shift:] = row[:-shift]
        row = np.minimum(row, np.maximum(shifted_row, run_max))
        shifted_max = np.full(m, -_INF)
        shifted_max[shift:] = run_max[:-shift]
        run_max = np.maximum(run_max, shifted_max)
        shift *= 2
    return row


def warping_table(
    cost: np.ndarray,
    aggregate: str = "sum",
    band: Optional[int] = None,
) -> np.ndarray:
    """Fill the DTW / discrete-Fréchet dynamic-programming table.

    Parameters
    ----------
    cost:
        The element cost matrix ``C[i, j]``.
    aggregate:
        ``"sum"`` for DTW-style accumulation, ``"max"`` for the discrete
        Fréchet distance (the bottleneck variant).
    band:
        Optional Sakoe-Chiba band half-width.  Cells with ``|i - j| > band``
        are left at infinity, constraining the warping path.

    Returns
    -------
    numpy.ndarray
        A ``(n, m)`` table whose bottom-right cell is the distance.
    """
    _validate_cost_matrix(cost)
    if aggregate not in ("sum", "max"):
        raise DistanceError(f"aggregate must be 'sum' or 'max', got {aggregate!r}")
    cost = np.asarray(cost, dtype=np.float64)
    n, m = cost.shape
    fill_row = _sum_row if aggregate == "sum" else _max_row
    table = np.empty((n, m), dtype=np.float64)
    prev: Optional[np.ndarray] = None
    for i in range(n):
        j_start, j_stop = _band_limits(i, m, band)
        prev = fill_row(cost[i], prev, j_start, j_stop)
        table[i] = prev
    return table


def warping_distance(
    cost: np.ndarray,
    aggregate: str = "sum",
    band: Optional[int] = None,
    cutoff: Optional[float] = None,
) -> float:
    """The bottom-right value of :func:`warping_table`, without the table.

    This is the hot-path kernel: it keeps a two-row (or two-diagonal)
    working set, avoids per-iteration allocations, and, when ``cutoff`` is
    given, abandons as soon as the table front's minimum exceeds it
    (returning ``inf``).  ``inf`` is also returned when no warping path fits
    inside the band.
    """
    _validate_cost_matrix(cost)
    if aggregate not in ("sum", "max"):
        raise DistanceError(f"aggregate must be 'sum' or 'max', got {aggregate!r}")
    cost = np.asarray(cost, dtype=np.float64)
    if aggregate == "sum":
        return _warp_sum_value(cost, band, cutoff)
    if cost.size <= _SMALL_TABLE_CELLS:
        return _warp_max_value_small(cost, band, cutoff)
    return _warp_max_value(cost, band, cutoff)


def _warp_sum_value(cost: np.ndarray, band: Optional[int], cutoff: Optional[float]) -> float:
    """Row-sweep DTW value: the in-row scan is one ``np.minimum.accumulate``.

    Works in *reduced* coordinates ``row - S`` (``S`` the row-wise prefix sum
    of the costs), where the recurrence's in-row part becomes a pure running
    minimum; ``entry - S[i] = min(prev, shift(prev)) - Z[i]`` with ``Z`` the
    right-shifted prefix sums.
    """
    n, m = cost.shape
    prefix = np.cumsum(cost, axis=1)
    shifted_prefix = np.empty_like(prefix)
    shifted_prefix[:, 0] = 0.0
    shifted_prefix[:, 1:] = prefix[:, :-1]
    _, j_stop = _band_limits(0, m, band)
    row = prefix[0].copy()
    if j_stop < m:
        row[j_stop:] = _INF
    if cutoff is not None and row[0] > cutoff:
        return _INF
    buf = np.empty(m)
    for i in range(1, n):
        j_start, j_stop = _band_limits(i, m, band)
        np.minimum(row[1:], row[:-1], out=buf[1:])
        buf[0] = row[0]
        if j_start > 0:
            buf[:j_start] = _INF
        if j_stop < m:
            buf[j_stop:] = _INF
        np.subtract(buf, shifted_prefix[i], out=buf)
        np.minimum.accumulate(buf, out=buf)
        np.add(buf, prefix[i], out=buf)
        if j_stop < m:
            buf[j_stop:] = _INF
        row, buf = buf, row
        if cutoff is not None and np.min(row) > cutoff:
            return _INF
    return float(row[-1])


#: Below this many table cells the per-operation overhead of NumPy outweighs
#: its throughput and a tight scalar loop is faster; the vectorized and
#: scalar paths are equivalence-tested against each other.
_SMALL_TABLE_CELLS = 1024


def _warp_max_value_small(
    cost: np.ndarray, band: Optional[int], cutoff: Optional[float]
) -> float:
    """Scalar discrete-Fréchet value for small tables, with early abandon."""
    n, m = cost.shape
    cost_rows = cost.tolist()
    prev: Optional[List[float]] = None
    for i in range(n):
        cost_row = cost_rows[i]
        j_start, j_stop = _band_limits(i, m, band)
        row = [_INF] * m
        row_min = _INF
        for j in range(j_start, j_stop):
            c = cost_row[j]
            if i == 0 and j == 0:
                best = 0.0
            else:
                best = _INF
                if prev is not None:
                    if j > 0 and prev[j - 1] < best:
                        best = prev[j - 1]
                    if prev[j] < best:
                        best = prev[j]
                if j > 0 and row[j - 1] < best:
                    best = row[j - 1]
                if best == _INF:
                    continue
            value = best if best > c else c
            row[j] = value
            if value < row_min:
                row_min = value
        if cutoff is not None and row_min > cutoff:
            return _INF
        prev = row
    assert prev is not None
    return prev[-1]


def _warp_max_value(cost: np.ndarray, band: Optional[int], cutoff: Optional[float]) -> float:
    """Anti-diagonal discrete-Fréchet value.

    The bottleneck recurrence has no closed-form in-row scan, but cells of
    one anti-diagonal are mutually independent (they depend only on the two
    previous diagonals), so sweeping diagonals needs nothing beyond
    element-wise ``np.minimum``/``np.maximum`` over shifted slices.  Buffers
    are indexed by ``i + 1`` so the ``i - 1`` accesses never wrap.

    The early-abandon test uses two consecutive diagonals: every monotone
    path advances ``i + j`` by 1 or 2 per step, so it must visit one of
    them, and values never decrease along a path.
    """
    n, m = cost.shape
    flipped = np.fliplr(cost)
    diag_prev2 = np.full(n + 1, _INF)
    diag_prev = np.full(n + 1, _INF)
    cur = np.full(n + 1, _INF)
    diag_prev[1] = cost[0, 0]
    for d in range(1, n + m - 1):
        lo = max(0, d - m + 1)
        hi = min(n - 1, d)
        if band is not None:
            lo = max(lo, (d - band + 1) // 2)
            hi = min(hi, (d + band) // 2)
        cur.fill(_INF)
        if lo <= hi:
            # np.diagonal of the left-right flip walks cost[i, d - i] for
            # increasing i, starting at i0.
            cost_diag = np.diagonal(flipped, offset=m - 1 - d)
            i0 = max(0, d - m + 1)
            best = np.minimum(diag_prev[lo + 1 : hi + 2], diag_prev[lo : hi + 1])
            np.minimum(best, diag_prev2[lo : hi + 1], out=best)
            np.maximum(best, cost_diag[lo - i0 : hi - i0 + 1], out=best)
            cur[lo + 1 : hi + 2] = best
        if cutoff is not None and min(np.min(cur), np.min(diag_prev)) > cutoff:
            return _INF
        diag_prev2, diag_prev, cur = diag_prev, cur, diag_prev2
    return float(diag_prev[n])


def _validate_cost_tensor(cost: np.ndarray) -> None:
    if cost.ndim != 3 or cost.shape[0] == 0 or cost.shape[1] == 0 or cost.shape[2] == 0:
        raise DistanceError("batched cost tensor must be a non-empty 3-D array")


def batch_warping_distance(
    cost: np.ndarray,
    aggregate: str = "sum",
    band: Optional[int] = None,
    cutoff: BatchCutoff = None,
) -> np.ndarray:
    """:func:`warping_distance` for a batch of same-shape pairs.

    ``cost`` has shape ``(k, n, m)``: one element cost matrix per pair, all
    sharing the same table dimensions (the caller groups operands by shape).
    The row sweep runs over ``(k, m)`` matrices, so one pass of NumPy
    primitives advances every pair in the batch at once.  With a ``cutoff``
    (one scalar, or a per-row ``(k,)`` vector), pairs whose table front
    exceeds their threshold are marked abandoned (their result is ``inf``);
    the sweep stops early only when *every* pair has abandoned, matching the
    per-pair semantics of :func:`warping_distance` -- a returned value is
    exact whenever it is at most the pair's cutoff.
    """
    _validate_cost_tensor(cost)
    if aggregate not in ("sum", "max"):
        raise DistanceError(f"aggregate must be 'sum' or 'max', got {aggregate!r}")
    cost = np.asarray(cost, dtype=np.float64)
    cutoff = _normalise_batch_cutoff(cutoff, cost.shape[0])
    if aggregate == "sum":
        return _batch_warp_sum(cost, band, cutoff)
    return _batch_warp_max(cost, band, cutoff)


def _batch_warp_sum(
    cost: np.ndarray, band: Optional[int], cutoff: BatchCutoff
) -> np.ndarray:
    """Batched :func:`_warp_sum_value`: identical recurrence, extra batch axis."""
    k, n, m = cost.shape
    prefix = np.cumsum(cost, axis=2)
    shifted_prefix = np.empty_like(prefix)
    shifted_prefix[:, :, 0] = 0.0
    shifted_prefix[:, :, 1:] = prefix[:, :, :-1]
    _, j_stop = _band_limits(0, m, band)
    row = prefix[:, 0, :].copy()
    if j_stop < m:
        row[:, j_stop:] = _INF
    abandoned = np.zeros(k, dtype=bool)
    if cutoff is not None:
        abandoned |= row[:, 0] > cutoff
        if abandoned.all():
            return np.full(k, _INF)
    buf = np.empty((k, m))
    for i in range(1, n):
        j_start, j_stop = _band_limits(i, m, band)
        np.minimum(row[:, 1:], row[:, :-1], out=buf[:, 1:])
        buf[:, 0] = row[:, 0]
        if j_start > 0:
            buf[:, :j_start] = _INF
        if j_stop < m:
            buf[:, j_stop:] = _INF
        np.subtract(buf, shifted_prefix[:, i, :], out=buf)
        np.minimum.accumulate(buf, axis=1, out=buf)
        np.add(buf, prefix[:, i, :], out=buf)
        if j_stop < m:
            buf[:, j_stop:] = _INF
        row, buf = buf, row
        if cutoff is not None:
            abandoned |= np.min(row, axis=1) > cutoff
            if abandoned.all():
                return np.full(k, _INF)
    values = row[:, -1].copy()
    values[abandoned] = _INF
    return values


def _batch_warp_max(
    cost: np.ndarray, band: Optional[int], cutoff: BatchCutoff
) -> np.ndarray:
    """Batched bottleneck recurrence via the :func:`_max_row` doubling scan.

    The early-abandon test is per row (every monotone path visits every row
    and bottleneck values never decrease along a path), which may abandon a
    pair the anti-diagonal kernel would carry further; either way the
    returned value is exact whenever it is at most ``cutoff``.
    """
    k, n, m = cost.shape
    row: Optional[np.ndarray] = None
    abandoned = np.zeros(k, dtype=bool)
    for i in range(n):
        j_start, j_stop = _band_limits(i, m, band)
        step = np.full((k, m), _INF)
        step[:, j_start:j_stop] = cost[:, i, j_start:j_stop]
        if row is None:
            entry = np.full((k, m), _INF)
            if j_start == 0:
                entry[:, 0] = cost[:, 0, 0]
        else:
            base = np.empty((k, m))
            base[:, 0] = row[:, 0]
            np.minimum(row[:, 1:], row[:, :-1], out=base[:, 1:])
            entry = np.maximum(base, step)
        new_row = entry
        run_max = step
        shift = 1
        while shift < m:
            shifted_row = np.full((k, m), _INF)
            shifted_row[:, shift:] = new_row[:, :-shift]
            new_row = np.minimum(new_row, np.maximum(shifted_row, run_max))
            shifted_max = np.full((k, m), -_INF)
            shifted_max[:, shift:] = run_max[:, :-shift]
            run_max = np.maximum(run_max, shifted_max)
            shift *= 2
        row = new_row
        if cutoff is not None:
            abandoned |= np.min(row, axis=1) > cutoff
            if abandoned.all():
                return np.full(k, _INF)
    assert row is not None
    values = row[:, -1].copy()
    values[abandoned] = _INF
    return values


def warping_traceback(table: np.ndarray, cost: np.ndarray, aggregate: str = "sum") -> Alignment:
    """Recover the optimal warping alignment from a filled table."""
    n, m = table.shape
    if np.isinf(table[n - 1, m - 1]):
        raise DistanceError("no feasible warping path (band too narrow?)")
    couplings: List[Coupling] = [(n - 1, m - 1)]
    i, j = n - 1, m - 1
    while i > 0 or j > 0:
        candidates = []
        if i > 0 and j > 0:
            candidates.append((table[i - 1, j - 1], (i - 1, j - 1)))
        if i > 0:
            candidates.append((table[i - 1, j], (i - 1, j)))
        if j > 0:
            candidates.append((table[i, j - 1], (i, j - 1)))
        _, (i, j) = min(candidates, key=lambda item: item[0])
        couplings.append((i, j))
    couplings.reverse()
    return Alignment(tuple(couplings), float(table[n - 1, m - 1]))


def _validate_edit_inputs(
    substitution: np.ndarray,
    deletion: np.ndarray,
    insertion: np.ndarray,
) -> None:
    _validate_cost_matrix(substitution)
    n, m = substitution.shape
    if deletion.shape != (n,) or insertion.shape != (m,):
        raise DistanceError("gap cost vectors do not match the substitution matrix")


def _edit_row(
    prev: np.ndarray,
    sub_row: np.ndarray,
    delete_cost: float,
    insertion_prefix: np.ndarray,
) -> np.ndarray:
    """One vectorized row of the edit-distance recurrence.

    ``insertion_prefix`` is the length-``m + 1`` cumulative sum of the
    insertion costs (``insertion_prefix[0] == 0``), so the in-row scan
    ``row[j] = min(entry[j], row[j-1] + insertion[j-1])`` unrolls to a single
    ``np.minimum.accumulate`` exactly as in :func:`_sum_row`.
    """
    entry = np.empty_like(prev)
    entry[0] = prev[0] + delete_cost
    np.minimum(prev[:-1] + sub_row, prev[1:] + delete_cost, out=entry[1:])
    return insertion_prefix + np.minimum.accumulate(entry - insertion_prefix)


def edit_table(
    substitution: np.ndarray,
    deletion: np.ndarray,
    insertion: np.ndarray,
) -> np.ndarray:
    """Fill an edit-distance style table with explicit gap costs.

    The recurrence is shared by the Levenshtein distance (unit costs), the
    weighted Levenshtein distance, and ERP (gap cost = ground distance to the
    gap element ``g``)::

        D[i, j] = min(D[i-1, j-1] + substitution[i-1, j-1],
                      D[i-1, j]   + deletion[i-1],
                      D[i, j-1]   + insertion[j-1])

    Parameters
    ----------
    substitution:
        ``(n, m)`` cost of matching element ``i`` of the first sequence with
        element ``j`` of the second.
    deletion:
        Length-``n`` cost of leaving element ``i`` of the first sequence
        unmatched.
    insertion:
        Length-``m`` cost of leaving element ``j`` of the second sequence
        unmatched.

    Returns
    -------
    numpy.ndarray
        The ``(n + 1, m + 1)`` table; the bottom-right cell is the distance.
    """
    _validate_edit_inputs(substitution, deletion, insertion)
    substitution = np.asarray(substitution, dtype=np.float64)
    n, m = substitution.shape
    insertion_prefix = np.concatenate(([0.0], np.cumsum(insertion)))
    table = np.empty((n + 1, m + 1), dtype=np.float64)
    table[0] = insertion_prefix
    for i in range(1, n + 1):
        table[i] = _edit_row(
            table[i - 1], substitution[i - 1], float(deletion[i - 1]), insertion_prefix
        )
    return table


def edit_distance_value(
    substitution: np.ndarray,
    deletion: np.ndarray,
    insertion: np.ndarray,
    cutoff: Optional[float] = None,
) -> float:
    """The bottom-right value of :func:`edit_table`, without the table.

    The hot-path kernel works in *reduced* coordinates ``row - Ic`` (``Ic``
    the cumulative insertion costs), which turns the in-row scan into one
    ``np.minimum.accumulate`` and leaves just four vector operations per
    row.  When ``cutoff`` is given, the computation is abandoned (returning
    ``inf``) as soon as a row's minimum exceeds it; all edit costs are
    non-negative, so row minima never decrease.
    """
    _validate_edit_inputs(substitution, deletion, insertion)
    substitution = np.asarray(substitution, dtype=np.float64)
    n, m = substitution.shape
    if substitution.size <= _SMALL_TABLE_CELLS:
        return _edit_value_small(substitution, deletion, insertion, cutoff)
    insertion = np.asarray(insertion, dtype=np.float64)
    insertion_prefix = np.concatenate(([0.0], np.cumsum(insertion)))
    # In reduced coordinates the diagonal step costs substitution - insertion
    # and the vertical step costs the plain deletion.
    reduced_substitution = substitution - insertion[None, :]
    deletion_costs = np.asarray(deletion, dtype=np.float64).tolist()
    reduced = np.zeros(m + 1)
    buf = np.empty(m + 1)
    scratch = np.empty(m + 1)
    for i in range(n):
        delete_cost = deletion_costs[i]
        np.add(reduced[:-1], reduced_substitution[i], out=buf[1:])
        np.add(reduced[1:], delete_cost, out=scratch[1:])
        np.minimum(buf[1:], scratch[1:], out=buf[1:])
        buf[0] = reduced[0] + delete_cost
        np.minimum.accumulate(buf, out=buf)
        reduced, buf = buf, reduced
        if cutoff is not None:
            np.add(reduced, insertion_prefix, out=scratch)
            if np.min(scratch) > cutoff:
                return _INF
    return float(reduced[-1] + insertion_prefix[-1])


def _edit_value_small(
    substitution: np.ndarray,
    deletion: np.ndarray,
    insertion: np.ndarray,
    cutoff: Optional[float],
) -> float:
    """Scalar edit-distance value for small tables, with early abandon."""
    n, m = substitution.shape
    sub_rows = substitution.tolist()
    del_costs = deletion.tolist()
    ins_costs = insertion.tolist()
    row = [0.0] * (m + 1)
    acc = 0.0
    for j in range(1, m + 1):
        acc += ins_costs[j - 1]
        row[j] = acc
    for i in range(1, n + 1):
        sub_row = sub_rows[i - 1]
        delete_cost = del_costs[i - 1]
        prev = row
        first = prev[0] + delete_cost
        row = [first] * (m + 1)
        row_min = first
        for j in range(1, m + 1):
            best = prev[j - 1] + sub_row[j - 1]
            up = prev[j] + delete_cost
            if up < best:
                best = up
            left = row[j - 1] + ins_costs[j - 1]
            if left < best:
                best = left
            row[j] = best
            if best < row_min:
                row_min = best
        if cutoff is not None and row_min > cutoff:
            return _INF
    return row[-1]


def batch_edit_distance_value(
    substitution: np.ndarray,
    deletion: np.ndarray,
    insertion: np.ndarray,
    cutoff: BatchCutoff = None,
) -> np.ndarray:
    """:func:`edit_distance_value` for a batch of same-shape pairs.

    ``substitution`` has shape ``(k, n, m)``; ``deletion`` is the length-``n``
    gap-cost vector of the (shared) first operand and ``insertion`` the
    ``(k, m)`` gap costs of the second operands.  The reduced-coordinate
    recurrence of :func:`edit_distance_value` runs unchanged over an extra
    batch axis; abandoned pairs (row minimum beyond their cutoff -- one
    scalar or a per-row ``(k,)`` vector) yield ``inf`` and the sweep stops
    early once every pair has abandoned.
    """
    _validate_cost_tensor(substitution)
    substitution = np.asarray(substitution, dtype=np.float64)
    k, n, m = substitution.shape
    cutoff = _normalise_batch_cutoff(cutoff, k)
    deletion = np.asarray(deletion, dtype=np.float64)
    insertion = np.asarray(insertion, dtype=np.float64)
    if deletion.shape != (n,) or insertion.shape != (k, m):
        raise DistanceError("batched gap cost arrays do not match the substitution tensor")
    insertion_prefix = np.zeros((k, m + 1))
    np.cumsum(insertion, axis=1, out=insertion_prefix[:, 1:])
    reduced_substitution = substitution - insertion[:, None, :]
    deletion_costs = deletion.tolist()
    reduced = np.zeros((k, m + 1))
    buf = np.empty((k, m + 1))
    scratch = np.empty((k, m + 1))
    abandoned = np.zeros(k, dtype=bool)
    for i in range(n):
        delete_cost = deletion_costs[i]
        np.add(reduced[:, :-1], reduced_substitution[:, i, :], out=buf[:, 1:])
        np.add(reduced[:, 1:], delete_cost, out=scratch[:, 1:])
        np.minimum(buf[:, 1:], scratch[:, 1:], out=buf[:, 1:])
        buf[:, 0] = reduced[:, 0] + delete_cost
        np.minimum.accumulate(buf, axis=1, out=buf)
        reduced, buf = buf, reduced
        if cutoff is not None:
            np.add(reduced, insertion_prefix, out=scratch)
            abandoned |= np.min(scratch, axis=1) > cutoff
            if abandoned.all():
                return np.full(k, _INF)
    values = reduced[:, -1] + insertion_prefix[:, -1]
    values[abandoned] = _INF
    return values


def edit_traceback(
    table: np.ndarray,
    substitution: np.ndarray,
    deletion: np.ndarray,
    insertion: np.ndarray,
) -> Alignment:
    """Recover one optimal edit alignment (couplings exclude gap operations)."""
    n, m = substitution.shape
    couplings: List[Coupling] = []
    i, j = n, m
    while i > 0 and j > 0:
        here = table[i, j]
        if np.isclose(here, table[i - 1, j - 1] + substitution[i - 1, j - 1]):
            couplings.append((i - 1, j - 1))
            i, j = i - 1, j - 1
        elif np.isclose(here, table[i - 1, j] + deletion[i - 1]):
            i -= 1
        else:
            j -= 1
    couplings.reverse()
    return Alignment(tuple(couplings), float(table[n, m]))


def lcss_length(matches: np.ndarray) -> int:
    """Length of the longest common subsequence given a boolean match matrix.

    Row-vectorized: where elements match the cell is ``prev[j-1] + 1`` (which
    dominates the other options in the LCS table), elsewhere it is
    ``max(prev[j], cur[j-1])``; the in-row maximum is a running
    ``np.maximum.accumulate`` because LCS rows are non-decreasing.
    """
    if matches.ndim != 2 or matches.shape[0] == 0 or matches.shape[1] == 0:
        raise DistanceError("match matrix must be a non-empty 2-D array")
    match_matrix = np.asarray(matches, dtype=bool)
    n, m = match_matrix.shape
    prev = np.zeros(m + 1, dtype=np.int64)
    cur = np.zeros(m + 1, dtype=np.int64)
    for i in range(n):
        np.maximum.accumulate(
            np.where(match_matrix[i], prev[:-1] + 1, prev[1:]), out=cur[1:]
        )
        prev, cur = cur, prev
    return int(prev[-1])
