"""The discrete Fréchet distance (DFD).

The discrete Fréchet distance is the bottleneck analogue of DTW: it selects
the warping alignment whose *maximum* coupling cost is smallest ("the
shortest leash that lets a person and a dog walk their curves").  Eiter &
Mannila's dynamic program computes it in ``O(nm)``.  DFD is a metric and is
consistent (Section 4 of the paper); it is one of the two time-series
metrics used in the experiments (SONGS/DFD, TRAJ/DFD).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.distances.alignment import (
    Alignment,
    batch_warping_distance,
    warping_distance,
    warping_table,
    warping_traceback,
)
from repro.distances.backend import fused_provider
from repro.distances.base import Distance, ElementMetric, as_array, check_same_dim
from repro.distances.compiled import METRIC_KIND_CODES


class DiscreteFrechet(Distance):
    """Discrete Fréchet distance with a pluggable element metric.

    Metric: yes (when the element metric is a metric).  Consistent: yes --
    restricting the optimal alignment to a subsequence can only lower its
    maximum coupling cost.
    """

    name = "frechet"
    is_metric = True
    is_consistent = True
    supports_unequal_lengths = True

    def __init__(self, element_metric: Optional[ElementMetric] = None) -> None:
        self.element_metric = element_metric or ElementMetric("euclidean")

    def compute(self, first: np.ndarray, second: np.ndarray) -> float:
        kernels = fused_provider(first.shape[1])
        if kernels is not None:
            kind = METRIC_KIND_CODES[self.element_metric.kind]
            return kernels.warp_value(first, second, kind, True, None, None)
        cost = self.element_metric.matrix(first, second)
        return warping_distance(cost, aggregate="max")

    def compute_bounded(self, first: np.ndarray, second: np.ndarray, cutoff: float) -> float:
        """Early-abandoning DFD: every row's minimum lower-bounds the result."""
        kernels = fused_provider(first.shape[1])
        if kernels is not None:
            kind = METRIC_KIND_CODES[self.element_metric.kind]
            return kernels.warp_value(first, second, kind, True, None, cutoff)
        cost = self.element_metric.matrix(first, second)
        return warping_distance(cost, aggregate="max", cutoff=cutoff)

    def compute_batch(self, query: np.ndarray, items: np.ndarray, cutoff) -> np.ndarray:
        """Batched DFD: the doubling-scan row sweep over the whole group."""
        kernels = fused_provider(query.shape[1])
        if kernels is not None:
            kind = METRIC_KIND_CODES[self.element_metric.kind]
            return kernels.warp_batch(query, items, kind, True, None, cutoff)
        cost = self.element_metric.matrix_batch(query, items)
        return batch_warping_distance(cost, aggregate="max", cutoff=cutoff)

    def alignment(self, first, second) -> Alignment:
        """Return the optimal bottleneck alignment."""
        a = as_array(first)
        b = as_array(second)
        check_same_dim(a, b)
        cost = self.element_metric.matrix(a, b)
        table = warping_table(cost, aggregate="max")
        return warping_traceback(table, cost, aggregate="max")

    def lower_bound(self, first, second) -> float:
        """max(d(first[0], second[0]), d(first[-1], second[-1])).

        Both endpoint couplings are mandatory, and DFD takes the maximum over
        couplings, so neither endpoint cost can exceed the distance.
        """
        a = as_array(first)
        b = as_array(second)
        check_same_dim(a, b)
        start = self.element_metric.single(a[0], b[0])
        end = self.element_metric.single(a[-1], b[-1])
        return float(max(start, end))

    def __repr__(self) -> str:
        return f"DiscreteFrechet(element_metric={self.element_metric!r})"
