"""Levenshtein (edit) distance and its weighted generalisation.

The Levenshtein distance is the string measure the paper evaluates on the
PROTEINS dataset: the minimum number of insertions, deletions, and
substitutions required to turn one string into the other.  It is a metric
(with unit costs), consistent (Section 4), and tolerant to gaps, making it
the recommended string distance for the framework.

:class:`WeightedLevenshtein` generalises the costs, which is how tools such
as BLAST weigh biologically plausible substitutions; with arbitrary weights
metricity is only preserved when the substitution cost matrix itself is a
metric over the alphabet and insert/delete costs are symmetric.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.distances.alignment import (
    Alignment,
    batch_edit_distance_value,
    edit_distance_value,
    edit_table,
    edit_traceback,
)
from repro.distances.backend import fused_provider
from repro.distances.base import Distance
from repro.distances.compiled import MODE_LEVENSHTEIN, NO_GAP
from repro.exceptions import DistanceError


class Levenshtein(Distance):
    """Classic unit-cost edit distance between symbol sequences.

    Operands are compared element-wise for equality, so the class works both
    for integer-encoded strings and (exactly equal) numeric series.
    """

    name = "levenshtein"
    is_metric = True
    is_consistent = True
    supports_unequal_lengths = True

    def compute(self, first: np.ndarray, second: np.ndarray) -> float:
        return self.compute_bounded(first, second, None)

    def compute_bounded(
        self, first: np.ndarray, second: np.ndarray, cutoff: Optional[float]
    ) -> float:
        """Early-abandoning edit distance: unit costs keep rows monotone."""
        kernels = fused_provider(first.shape[1])
        if kernels is not None:
            return kernels.edit_value(
                first, second, MODE_LEVENSHTEIN, 0, NO_GAP, 0.0, cutoff
            )
        substitution = (np.any(first[:, None, :] != second[None, :, :], axis=2)).astype(
            np.float64
        )
        deletion = np.ones(first.shape[0], dtype=np.float64)
        insertion = np.ones(second.shape[0], dtype=np.float64)
        return edit_distance_value(substitution, deletion, insertion, cutoff=cutoff)

    def compute_batch(self, query: np.ndarray, items: np.ndarray, cutoff) -> np.ndarray:
        """Batched edit distance: one mismatch tensor, one row sweep."""
        kernels = fused_provider(query.shape[1])
        if kernels is not None:
            return kernels.edit_batch(
                query, items, MODE_LEVENSHTEIN, 0, NO_GAP, 0.0, cutoff
            )
        substitution = (
            np.any(query[None, :, None, :] != items[:, None, :, :], axis=3)
        ).astype(np.float64)
        deletion = np.ones(query.shape[0], dtype=np.float64)
        insertion = np.ones((items.shape[0], items.shape[1]), dtype=np.float64)
        return batch_edit_distance_value(substitution, deletion, insertion, cutoff=cutoff)

    def alignment(self, first, second) -> Alignment:
        """Return one optimal alignment (couplings of matched positions)."""
        from repro.distances.base import as_array, check_same_dim

        a = as_array(first)
        b = as_array(second)
        check_same_dim(a, b)
        substitution = (np.any(a[:, None, :] != b[None, :, :], axis=2)).astype(np.float64)
        deletion = np.ones(a.shape[0], dtype=np.float64)
        insertion = np.ones(b.shape[0], dtype=np.float64)
        table = edit_table(substitution, deletion, insertion)
        return edit_traceback(table, substitution, deletion, insertion)

    def lower_bound(self, first, second) -> float:
        """The length difference is a lower bound on the edit distance."""
        from repro.distances.base import as_array

        return float(abs(as_array(first).shape[0] - as_array(second).shape[0]))

    def empty_distance(self, other) -> float:
        """Edit distance against the empty sequence: one insertion per element."""
        from repro.distances.base import as_array

        return float(as_array(other).shape[0])


class WeightedLevenshtein(Distance):
    """Edit distance with configurable substitution / gap costs.

    Parameters
    ----------
    substitution_costs:
        Mapping from symbol-code pairs ``(a, b)`` to the cost of substituting
        ``a`` by ``b``.  Missing pairs fall back to ``default_substitution``
        (or 0 when ``a == b``).
    insertion_cost / deletion_cost:
        Cost of inserting / deleting one symbol.
    default_substitution:
        Cost used for substitution pairs absent from the mapping.
    metric:
        Declare whether the chosen costs form a metric.  The class cannot
        verify this cheaply for arbitrary cost tables, so the caller states
        it; the indexes refuse non-metric distances.
    """

    name = "weighted-levenshtein"
    is_consistent = True
    supports_unequal_lengths = True

    def __init__(
        self,
        substitution_costs: Optional[Dict[Tuple[int, int], float]] = None,
        insertion_cost: float = 1.0,
        deletion_cost: float = 1.0,
        default_substitution: float = 1.0,
        metric: bool = False,
    ) -> None:
        if insertion_cost < 0 or deletion_cost < 0 or default_substitution < 0:
            raise DistanceError("edit costs must be non-negative")
        self.substitution_costs = dict(substitution_costs or {})
        for cost in self.substitution_costs.values():
            if cost < 0:
                raise DistanceError("edit costs must be non-negative")
        self.insertion_cost = float(insertion_cost)
        self.deletion_cost = float(deletion_cost)
        self.default_substitution = float(default_substitution)
        self.is_metric = bool(metric)

    def _substitution_matrix(self, first: np.ndarray, second: np.ndarray) -> np.ndarray:
        n, m = first.shape[0], second.shape[0]
        matrix = np.empty((n, m), dtype=np.float64)
        firsts = first[:, 0].astype(np.int64)
        seconds = second[:, 0].astype(np.int64)
        for i in range(n):
            a = int(firsts[i])
            for j in range(m):
                b = int(seconds[j])
                if a == b:
                    matrix[i, j] = self.substitution_costs.get((a, b), 0.0)
                else:
                    matrix[i, j] = self.substitution_costs.get(
                        (a, b), self.default_substitution
                    )
        return matrix

    def compute(self, first: np.ndarray, second: np.ndarray) -> float:
        return self.compute_bounded(first, second, None)

    def compute_bounded(
        self, first: np.ndarray, second: np.ndarray, cutoff: Optional[float]
    ) -> float:
        """Early-abandoning weighted edit distance (costs are non-negative)."""
        if first.shape[1] != 1:
            raise DistanceError("weighted Levenshtein expects scalar symbol codes")
        substitution = self._substitution_matrix(first, second)
        deletion = np.full(first.shape[0], self.deletion_cost, dtype=np.float64)
        insertion = np.full(second.shape[0], self.insertion_cost, dtype=np.float64)
        return edit_distance_value(substitution, deletion, insertion, cutoff=cutoff)

    def empty_distance(self, other) -> float:
        """Weighted edit distance against the empty sequence: all insertions."""
        from repro.distances.base import as_array

        return float(as_array(other).shape[0]) * self.insertion_cost

    def __repr__(self) -> str:
        return (
            f"WeightedLevenshtein(insertion={self.insertion_cost}, "
            f"deletion={self.deletion_cost}, metric={self.is_metric})"
        )
