/* Fused elastic-distance kernels (compiled tier).
 *
 * Compiled on demand by repro.distances.compiled and loaded through ctypes;
 * the same recurrences also exist as Numba-compilable Python in that module.
 * Every function replicates the floating-point *operation order* of the
 * NumPy kernels in repro/distances/alignment.py exactly, per call form:
 *
 *  - warp "sum" (DTW/ERP-style additive): the reduced-coordinate row sweep
 *    of _warp_sum_value / _batch_warp_sum (sequential per-row prefix sums,
 *    element-wise min of adjacent cells, subtract shifted prefix, running
 *    minimum, add prefix) -- bit-identical values;
 *  - warp "max" (discrete Frechet): the direct bottleneck recurrence of
 *    _warp_max_value_small.  min/max are exact selections, so the value is
 *    bit-identical to both the scalar small-table path and the
 *    anti-diagonal / doubling-scan paths;
 *  - edit (Levenshtein/ERP/EDR): the direct scalar recurrence below
 *    REPRO_SMALL_TABLE_CELLS table cells for single values (matching
 *    _edit_value_small) and the reduced-coordinate sweep above it and for
 *    batches (matching edit_distance_value / batch_edit_distance_value).
 *
 * Element costs are fused into the DP loops (no cost-matrix
 * materialisation).  The sequential per-element accumulation matches
 * NumPy's reduction order for small element dimensionalities (NumPy's
 * pairwise summation only kicks in at >= 8 addends); the Python wrapper
 * only dispatches here when dim stays below that threshold.
 *
 * Early abandoning follows the Distance.bounded contract: a returned value
 * is exact whenever it is <= cutoff; any value > cutoff (typically inf)
 * may be returned otherwise.  Batch entry points take a per-row cutoff
 * vector (NULL = unbounded), which is how the top-k scan tightens the
 * abandon threshold as its heap fills.
 *
 * Conventions: band < 0 means "no band"; cutoff = +inf means "no cutoff";
 * all arrays are C-contiguous float64.  Return code 0 = success, 1 = out
 * of memory.
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define REPRO_SMALL_TABLE_CELLS 1024

/* element metric kinds */
#define KIND_EUCLIDEAN 0
#define KIND_MANHATTAN 1
#define KIND_DISCRETE 2

/* edit-distance modes */
#define MODE_LEVENSHTEIN 0
#define MODE_ERP 1
#define MODE_EDR 2

static double dmin(double a, double b) { return a < b ? a : b; }

/* Ground distance between two elements; matches ElementMetric.matrix cell
 * by cell (sequential accumulation over the dim axis). */
static double elem_cost(const double *a, const double *b, int64_t d, int64_t kind) {
    int64_t t;
    double s = 0.0;
    if (kind == KIND_EUCLIDEAN) {
        for (t = 0; t < d; t++) {
            double diff = a[t] - b[t];
            s += diff * diff;
        }
        return sqrt(s);
    }
    if (kind == KIND_MANHATTAN) {
        for (t = 0; t < d; t++)
            s += fabs(a[t] - b[t]);
        return s;
    }
    for (t = 0; t < d; t++)
        if (a[t] - b[t] != 0.0)
            return 1.0;
    return 0.0;
}

/* Substitution cost of the edit recurrences.  Levenshtein compares raw
 * element equality (matching `first != second` in NumPy), ERP pays the
 * ground distance, EDR thresholds it. */
static double edit_sub(const double *a, const double *b, int64_t d, int64_t mode,
                       int64_t kind, double eps) {
    if (mode == MODE_LEVENSHTEIN) {
        int64_t t;
        for (t = 0; t < d; t++)
            if (a[t] != b[t])
                return 1.0;
        return 0.0;
    }
    {
        double g = elem_cost(a, b, d, kind);
        if (mode == MODE_ERP)
            return g;
        return g > eps ? 1.0 : 0.0;
    }
}

static void band_limits(int64_t i, int64_t m, int64_t band, int64_t *j_start,
                        int64_t *j_stop) {
    if (band < 0) {
        *j_start = 0;
        *j_stop = m;
        return;
    }
    *j_start = i - band > 0 ? i - band : 0;
    if (*j_start > m)
        *j_start = m; /* fill loops index the row directly; NumPy's slice fills clamp */
    *j_stop = i + band + 1 < m ? i + band + 1 : m;
}

/* ------------------------------------------------------------------ */
/* warp sum: reduced-coordinate row sweep (DTW aggregate="sum")        */
/* ------------------------------------------------------------------ */

/* One pair; row/buf/costp are caller-provided length-m scratch. */
static double warp_sum_pair(const double *q, int64_t n, const double *x, int64_t m,
                            int64_t d, int64_t kind, int64_t band, double cutoff,
                            double *row, double *buf, double *costp) {
    int64_t i, j, j_start, j_stop;
    double acc, running;

    /* row 0: the prefix sums of the first cost row. */
    acc = 0.0;
    for (j = 0; j < m; j++) {
        acc += elem_cost(q, x + j * d, d, kind);
        costp[j] = acc;
        row[j] = acc;
    }
    band_limits(0, m, band, &j_start, &j_stop);
    for (j = j_stop; j < m; j++)
        row[j] = INFINITY;
    if (row[0] > cutoff)
        return INFINITY;

    for (i = 1; i < n; i++) {
        const double *qi = q + i * d;
        double *tmp;
        band_limits(i, m, band, &j_start, &j_stop);
        acc = 0.0;
        for (j = 0; j < m; j++) {
            acc += elem_cost(qi, x + j * d, d, kind);
            costp[j] = acc;
        }
        buf[0] = row[0];
        for (j = 1; j < m; j++)
            buf[j] = dmin(row[j], row[j - 1]);
        for (j = 0; j < j_start; j++)
            buf[j] = INFINITY;
        for (j = j_stop; j < m; j++)
            buf[j] = INFINITY;
        for (j = 0; j < m; j++)
            buf[j] = buf[j] - (j > 0 ? costp[j - 1] : 0.0);
        running = INFINITY;
        for (j = 0; j < m; j++) {
            running = dmin(running, buf[j]);
            buf[j] = running;
        }
        for (j = 0; j < m; j++)
            buf[j] = buf[j] + costp[j];
        for (j = j_stop; j < m; j++)
            buf[j] = INFINITY;
        tmp = row;
        row = buf;
        buf = tmp;
        if (cutoff != INFINITY) {
            double row_min = row[0];
            for (j = 1; j < m; j++)
                row_min = dmin(row_min, row[j]);
            if (row_min > cutoff)
                return INFINITY;
        }
    }
    return row[m - 1];
}

/* ------------------------------------------------------------------ */
/* warp max: direct bottleneck recurrence (discrete Frechet)           */
/* ------------------------------------------------------------------ */

static double warp_max_pair(const double *q, int64_t n, const double *x, int64_t m,
                            int64_t d, int64_t kind, int64_t band, double cutoff,
                            double *prev, double *row) {
    int64_t i, j, j_start, j_stop;

    for (i = 0; i < n; i++) {
        const double *qi = q + i * d;
        double row_min = INFINITY;
        double *tmp;
        band_limits(i, m, band, &j_start, &j_stop);
        for (j = 0; j < m; j++)
            row[j] = INFINITY;
        for (j = j_start; j < j_stop; j++) {
            double c = elem_cost(qi, x + j * d, d, kind);
            double best, value;
            if (i == 0 && j == 0) {
                best = 0.0;
            } else {
                best = INFINITY;
                if (i > 0) {
                    if (j > 0 && prev[j - 1] < best)
                        best = prev[j - 1];
                    if (prev[j] < best)
                        best = prev[j];
                }
                if (j > 0 && row[j - 1] < best)
                    best = row[j - 1];
                if (best == INFINITY)
                    continue;
            }
            value = best > c ? best : c;
            row[j] = value;
            if (value < row_min)
                row_min = value;
        }
        if (cutoff != INFINITY && row_min > cutoff)
            return INFINITY;
        tmp = prev;
        prev = row;
        row = tmp;
    }
    return prev[m - 1];
}

/* ------------------------------------------------------------------ */
/* edit distance: direct small-table path and reduced-coordinate path  */
/* ------------------------------------------------------------------ */

/* ins has length m (per-column insertion costs), del_costs length n. */
static double edit_pair_small(const double *q, int64_t n, const double *x, int64_t m,
                              int64_t d, int64_t mode, int64_t kind, double eps,
                              const double *del_costs, const double *ins, double cutoff,
                              double *prev, double *row) {
    int64_t i, j;
    double acc = 0.0;

    prev[0] = 0.0;
    for (j = 1; j <= m; j++) {
        acc += ins[j - 1];
        prev[j] = acc;
    }
    for (i = 1; i <= n; i++) {
        const double *qi = q + (i - 1) * d;
        double delc = del_costs[i - 1];
        double first = prev[0] + delc;
        double row_min = first;
        double *tmp;
        row[0] = first;
        for (j = 1; j <= m; j++) {
            double best = prev[j - 1] + edit_sub(qi, x + (j - 1) * d, d, mode, kind, eps);
            double up = prev[j] + delc;
            double left;
            if (up < best)
                best = up;
            left = row[j - 1] + ins[j - 1];
            if (left < best)
                best = left;
            row[j] = best;
            if (best < row_min)
                row_min = best;
        }
        if (cutoff != INFINITY && row_min > cutoff)
            return INFINITY;
        tmp = prev;
        prev = row;
        row = tmp;
    }
    return prev[m];
}

/* insp has length m + 1 (cumulative insertion costs, insp[0] == 0). */
static double edit_pair_reduced(const double *q, int64_t n, const double *x, int64_t m,
                                int64_t d, int64_t mode, int64_t kind, double eps,
                                const double *del_costs, const double *ins,
                                const double *insp, double cutoff, double *reduced,
                                double *buf) {
    int64_t i, j;

    for (j = 0; j <= m; j++)
        reduced[j] = 0.0;
    for (i = 0; i < n; i++) {
        const double *qi = q + i * d;
        double delc = del_costs[i];
        double running;
        double *tmp;
        for (j = 0; j < m; j++) {
            double rs = edit_sub(qi, x + j * d, d, mode, kind, eps) - ins[j];
            double a = reduced[j] + rs;
            double b = reduced[j + 1] + delc;
            buf[j + 1] = a < b ? a : b;
        }
        buf[0] = reduced[0] + delc;
        running = INFINITY;
        for (j = 0; j <= m; j++) {
            running = dmin(running, buf[j]);
            buf[j] = running;
        }
        tmp = reduced;
        reduced = buf;
        buf = tmp;
        if (cutoff != INFINITY) {
            double row_min = reduced[0] + insp[0];
            for (j = 1; j <= m; j++)
                row_min = dmin(row_min, reduced[j] + insp[j]);
            if (row_min > cutoff)
                return INFINITY;
        }
    }
    return reduced[m] + insp[m];
}

/* Fill the per-column insertion costs and their prefix for one item. */
static void fill_ins(const double *x, int64_t m, int64_t d, int64_t mode, int64_t kind,
                     const double *gap, double *ins, double *insp) {
    int64_t j;
    double acc = 0.0;
    insp[0] = 0.0;
    for (j = 0; j < m; j++) {
        ins[j] = (mode == MODE_ERP) ? elem_cost(x + j * d, gap, d, kind) : 1.0;
        acc += ins[j];
        insp[j + 1] = acc;
    }
}

static void fill_del(const double *q, int64_t n, int64_t d, int64_t mode, int64_t kind,
                     const double *gap, double *del_costs) {
    int64_t i;
    for (i = 0; i < n; i++)
        del_costs[i] = (mode == MODE_ERP) ? elem_cost(q + i * d, gap, d, kind) : 1.0;
}

/* ------------------------------------------------------------------ */
/* exported entry points                                               */
/* ------------------------------------------------------------------ */

int repro_warp_value(const double *q, int64_t n, const double *x, int64_t m, int64_t d,
                     int64_t kind, int64_t use_max, int64_t band, double cutoff,
                     double *out) {
    double *scratch = (double *)malloc((size_t)(3 * m) * sizeof(double));
    if (scratch == NULL)
        return 1;
    if (use_max)
        *out = warp_max_pair(q, n, x, m, d, kind, band, cutoff, scratch, scratch + m);
    else
        *out = warp_sum_pair(q, n, x, m, d, kind, band, cutoff, scratch, scratch + m,
                             scratch + 2 * m);
    free(scratch);
    return 0;
}

int repro_warp_batch(const double *q, int64_t n, const double *xs, int64_t k, int64_t m,
                     int64_t d, int64_t kind, int64_t use_max, int64_t band,
                     const double *cutoffs, double *out) {
    int64_t p;
    double *scratch = (double *)malloc((size_t)(3 * m) * sizeof(double));
    if (scratch == NULL)
        return 1;
    for (p = 0; p < k; p++) {
        const double *x = xs + p * m * d;
        double cutoff = cutoffs != NULL ? cutoffs[p] : INFINITY;
        if (use_max)
            out[p] = warp_max_pair(q, n, x, m, d, kind, band, cutoff, scratch,
                                   scratch + m);
        else
            out[p] = warp_sum_pair(q, n, x, m, d, kind, band, cutoff, scratch,
                                   scratch + m, scratch + 2 * m);
    }
    free(scratch);
    return 0;
}

int repro_edit_value(const double *q, int64_t n, const double *x, int64_t m, int64_t d,
                     int64_t mode, int64_t kind, const double *gap, double eps,
                     double cutoff, double *out) {
    /* buffers: ins (m), insp (m+1), del (n), two work rows (m+1 each) */
    double *mem = (double *)malloc((size_t)(m + (m + 1) + n + 2 * (m + 1)) * sizeof(double));
    double *ins, *insp, *del_costs, *work0, *work1;
    if (mem == NULL)
        return 1;
    ins = mem;
    insp = ins + m;
    del_costs = insp + m + 1;
    work0 = del_costs + n;
    work1 = work0 + m + 1;
    fill_ins(x, m, d, mode, kind, gap, ins, insp);
    fill_del(q, n, d, mode, kind, gap, del_costs);
    if (n * m <= REPRO_SMALL_TABLE_CELLS)
        *out = edit_pair_small(q, n, x, m, d, mode, kind, eps, del_costs, ins, cutoff,
                               work0, work1);
    else
        *out = edit_pair_reduced(q, n, x, m, d, mode, kind, eps, del_costs, ins, insp,
                                 cutoff, work0, work1);
    free(mem);
    return 0;
}

int repro_edit_batch(const double *q, int64_t n, const double *xs, int64_t k, int64_t m,
                     int64_t d, int64_t mode, int64_t kind, const double *gap, double eps,
                     const double *cutoffs, double *out) {
    int64_t p;
    double *mem = (double *)malloc((size_t)(m + (m + 1) + n + 2 * (m + 1)) * sizeof(double));
    double *ins, *insp, *del_costs, *work0, *work1;
    if (mem == NULL)
        return 1;
    ins = mem;
    insp = ins + m;
    del_costs = insp + m + 1;
    work0 = del_costs + n;
    work1 = work0 + m + 1;
    fill_del(q, n, d, mode, kind, gap, del_costs);
    for (p = 0; p < k; p++) {
        const double *x = xs + p * m * d;
        double cutoff = cutoffs != NULL ? cutoffs[p] : INFINITY;
        fill_ins(x, m, d, mode, kind, gap, ins, insp);
        /* the NumPy batch kernel always runs the reduced-coordinate sweep */
        out[p] = edit_pair_reduced(q, n, x, m, d, mode, kind, eps, del_costs, ins, insp,
                                   cutoff, work0, work1);
    }
    free(mem);
    return 0;
}
