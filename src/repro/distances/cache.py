"""Memoization of sequence-pair distance computations.

The paper's Type III (nearest-neighbour) query repeats steps 3-5 with a
growing radius, and chain verification repeatedly measures overlapping
subsequence pairs.  Without memoization the re-queries *recompute* every
segment-window distance the previous radius already paid for -- which is how
the seed benchmark ended up spending almost twice the naive scan's distance
computations on Type III.  A :class:`DistanceCache` remembers every pair the
matcher has measured so the growing-radius sweep only ever pays for a pair
once (the same "reuse previously computed work to skip recomputation" idea
that provenance-based data skipping applies to whole queries).

Keys are the sequences themselves: :class:`~repro.sequences.sequence.Sequence`
is immutable, hashable on its content (memoized), and windows/segments carry
their provenance, so the content fingerprint is a faithful stand-in for
``(sequence id, offset, length)`` while also unifying identical windows cut
from different places.

Early-abandoned computations are remembered too, as *lower bounds*: when
:meth:`~repro.distances.base.Distance.bounded` gives up at cutoff ``c`` the
cache records "distance > c", which still answers any later query with a
cutoff at most ``c`` without recomputing.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

from repro.sequences.sequence import Sequence

_INF = float("inf")


class _ReplayView:
    """Direct entry-table access for a single-lock bulk replay.

    Handed out by :meth:`DistanceCache.replay_view` while the cache lock is
    held: ``lookup``/``store`` reproduce the public methods' semantics --
    bound entries, the no-downgrade rule, insertion-order eviction -- but
    against the raw dict, with hit/miss tallies kept as plain local ints.
    The owning context manager folds the tallies into the cache statistics
    on exit, so a replayed log leaves exactly the statistics the same
    requests would have left through ``lookup``/``store`` one at a time.
    """

    __slots__ = ("entries", "max_entries", "hits", "misses")

    def __init__(self, entries: dict, max_entries: Optional[int]) -> None:
        self.entries = entries
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def lookup(self, first, second, cutoff) -> Optional[float]:
        entry = self.entries.get((first, second))
        if entry is not None:
            value, exact = entry
            if exact:
                self.hits += 1
                return value
            if cutoff is not None and value >= cutoff:
                self.hits += 1
                return _INF
        self.misses += 1
        return None

    def store(self, first, second, value, cutoff) -> None:
        entries = self.entries
        key = (first, second)
        if cutoff is None or value <= cutoff:
            entries[key] = (value, True)
        else:
            existing = entries.get(key)
            if existing is not None and (existing[1] or existing[0] >= cutoff):
                return
            entries[key] = (float(cutoff), False)
        if self.max_entries is not None:
            while len(entries) > self.max_entries:
                entries.pop(next(iter(entries)))


class DistanceCache:
    """A cache of exact distances and early-abandon lower bounds.

    The cache is thread-safe: every operation that touches the entry table
    or the hit/miss statistics takes an internal lock, so one cache may be
    shared between concurrently querying matchers (:func:`shared_cache`) and
    between the parallel work units of a thread-pool executor without
    corrupting the table or the eviction order.

    Parameters
    ----------
    max_entries:
        Optional capacity; when exceeded, the oldest entries are evicted
        (insertion order).  ``None`` (the default) means unbounded.  A
        single query adds at most ``segments x windows`` index entries plus
        its verification pairs, but a long-lived matcher serving a stream
        of *distinct* queries accumulates entries across queries, so the
        matcher bounds its cache (``MatcherConfig.cache_max_entries``).
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        #: key -> (value, exact).  ``exact=True``: value is the distance.
        #: ``exact=False``: the distance is known to be > value.
        self._entries: Dict[Tuple[Sequence, Sequence], Tuple[float, bool]] = {}
        self._hits = 0
        self._misses = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    @property
    def hits(self) -> int:
        """Number of lookups answered from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of lookups that required a fresh computation."""
        return self._misses

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss statistics."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    @staticmethod
    def cacheable(first: object, second: object) -> bool:
        """Whether a pair of payloads can serve as a cache key."""
        return isinstance(first, Sequence) and isinstance(second, Sequence)

    def lookup(
        self, first: Sequence, second: Sequence, cutoff: Optional[float] = None
    ) -> Optional[float]:
        """The cached distance of ``(first, second)``, or ``None`` on a miss.

        With a ``cutoff``, a stored lower bound of at least ``cutoff``
        answers the query with ``inf`` (the pair provably cannot be within
        the cutoff); exact entries always answer.  Statistics are updated.

        The entry read happens outside the lock -- a single ``dict.get``
        of an immutable tuple, safe under the GIL and under free-threaded
        builds (per-object dict synchronization) alike -- so concurrent
        readers only serialize on the statistics increment, not on each
        other's probes.  That narrow critical section is what lets the
        thread executor scale on no-GIL (PEP 703) interpreters while the
        hit/miss counts stay exact.
        """
        entry = self._entries.get((first, second))
        if entry is not None:
            value, exact = entry
            if exact:
                with self._lock:
                    self._hits += 1
                return value
            if cutoff is not None and value >= cutoff:
                with self._lock:
                    self._hits += 1
                return _INF
        with self._lock:
            self._misses += 1
        return None

    def peek(
        self, first: Sequence, second: Sequence, cutoff: Optional[float] = None
    ) -> Optional[float]:
        """:meth:`lookup` without touching the hit/miss statistics.

        Parallel work units read the cache through ``peek`` while they run;
        the accounting-faithful lookups happen later, during the unit-log
        replay (see :mod:`repro.distances.recording`), so a query answered
        in parallel leaves exactly the statistics a serial run would.

        Lock-free on purpose: a single ``dict.get`` is atomic under the
        GIL, entry tuples are immutable, and ``peek`` mutates nothing --
        so the hottest read path of every work unit skips the lock.
        """
        entry = self._entries.get((first, second))
        if entry is not None:
            value, exact = entry
            if exact:
                return value
            if cutoff is not None and value >= cutoff:
                return _INF
        return None

    def store(
        self,
        first: Sequence,
        second: Sequence,
        value: float,
        cutoff: Optional[float] = None,
    ) -> None:
        """Record a computation of ``(first, second)``.

        A finite ``value`` at most ``cutoff`` (or with no cutoff at all) is
        exact; a value beyond the cutoff means the kernel abandoned early,
        so only the lower bound ``distance > cutoff`` is recorded -- and
        never downgrades an existing exact entry or a larger bound.

        Exact stores into an unbounded cache take the lock-free fast path:
        a single dict assignment of an immutable tuple needs no critical
        section (exact entries always win, so write order between racing
        threads is immaterial), and it is the overwhelmingly common store.
        Bound entries (read-modify-write against the no-downgrade rule) and
        capacity-bounded caches (eviction walks the table) keep the lock.
        """
        key = (first, second)
        if cutoff is None or value <= cutoff:
            if self.max_entries is None:
                self._entries[key] = (value, True)
                return
            with self._lock:
                self._entries[key] = (value, True)
                self._evict_overflow()
            return
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None and (existing[1] or existing[0] >= cutoff):
                return
            self._entries[key] = (float(cutoff), False)
            self._evict_overflow()

    def _evict_overflow(self) -> None:
        """Drop oldest entries until the capacity bound holds again.

        Callers must hold :attr:`_lock`.
        """
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._entries.pop(next(iter(self._entries)))

    @contextmanager
    def replay_view(self):
        """Single-lock bulk access for unit-log replays.

        The columnar replay (:mod:`repro.distances.recording`) touches the
        cache once per logged request; going through :meth:`lookup` /
        :meth:`store` would pay a lock round-trip each time.  This context
        manager takes the lock *once*, yields a :class:`_ReplayView` over
        the raw entry table (same lookup/store/eviction semantics, local
        hit/miss tallies), and folds the tallies into the statistics on
        exit -- so a full log replays under one critical section and still
        leaves byte-identical cache content, eviction order, and counts.
        """
        view = _ReplayView(self._entries, self.max_entries)
        with self._lock:
            try:
                yield view
            finally:
                self._hits += view.hits
                self._misses += view.misses

    # ------------------------------------------------------------------ #
    # Snapshot support
    # ------------------------------------------------------------------ #
    def iter_entries(self) -> Iterator[Tuple[Sequence, Sequence, float, bool]]:
        """Yield ``(first, second, value, exact)`` in insertion order.

        Insertion order *is* eviction order, so a consumer that replays the
        stream through :meth:`seed` reproduces not just the contents but the
        future eviction behaviour of a bounded cache.  The entry table is
        snapshotted under the lock first, so iteration is safe against
        concurrent inserts (it yields the state at call time).
        """
        with self._lock:
            entries = list(self._entries.items())
        for (first, second), (value, exact) in entries:
            yield first, second, value, exact

    def seed(self, first: Sequence, second: Sequence, value: float, exact: bool = True) -> None:
        """Install one entry directly (snapshot restore), respecting capacity.

        Unlike :meth:`store` this bypasses the exact/bound bookkeeping: the
        caller asserts the entry is precisely what a live cache held (for a
        bound entry, ``value`` is the cutoff the kernel abandoned at).
        """
        with self._lock:
            self._entries[(first, second)] = (float(value), bool(exact))
            self._evict_overflow()

    def __repr__(self) -> str:
        return (
            f"DistanceCache(entries={len(self._entries)}, "
            f"hits={self._hits}, misses={self._misses})"
        )


_SHARED_CACHES: Dict[str, DistanceCache] = {}
_SHARED_CACHES_LOCK = threading.Lock()

#: Default capacity of a :func:`shared_cache`; sized for multi-matcher
#: workloads (several matchers' worth of segment-window pairs).
SHARED_CACHE_MAX_ENTRIES = 1_048_576


def shared_cache(name: str = "default", max_entries: Optional[int] = None) -> DistanceCache:
    """A process-wide named :class:`DistanceCache` for multi-matcher workloads.

    Matchers built over the *same distance measure* can pass the returned
    cache to :class:`~repro.core.matcher.SubsequenceMatcher` so that windows
    shared between their databases (or queries probed against several
    matchers) are measured once per process rather than once per matcher.

    The cache is keyed by content only, so sharing one cache between
    matchers with *different* distances would mix up their values -- use a
    distinct ``name`` per distance (e.g. ``shared_cache("frechet")``).

    The first call for a ``name`` creates the cache (with ``max_entries``,
    defaulting to :data:`SHARED_CACHE_MAX_ENTRIES`); later calls return the
    same instance and ignore ``max_entries``.
    """
    with _SHARED_CACHES_LOCK:
        cache = _SHARED_CACHES.get(name)
        if cache is None:
            capacity = SHARED_CACHE_MAX_ENTRIES if max_entries is None else max_entries
            cache = DistanceCache(max_entries=capacity)
            _SHARED_CACHES[name] = cache
        return cache
