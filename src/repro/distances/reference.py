"""Reference (pure-Python, cell-by-cell) DP kernels.

These are the original loop implementations of the table-filling kernels in
:mod:`repro.distances.alignment`, retained verbatim as correctness oracles:
the vectorized kernels are required to agree with them to within floating
point round-off (``tests/test_vectorized_kernels.py`` asserts this across
random inputs, bands, and unequal lengths).  They are *not* used on any hot
path.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import DistanceError


def reference_warping_table(
    cost: np.ndarray,
    aggregate: str = "sum",
    band: Optional[int] = None,
) -> np.ndarray:
    """Cell-by-cell DTW / discrete-Fréchet table (the pre-vectorization kernel)."""
    if cost.ndim != 2 or cost.shape[0] == 0 or cost.shape[1] == 0:
        raise DistanceError("cost matrix must be a non-empty 2-D array")
    if aggregate not in ("sum", "max"):
        raise DistanceError(f"aggregate must be 'sum' or 'max', got {aggregate!r}")
    n, m = cost.shape
    use_sum = aggregate == "sum"
    inf = float("inf")
    cost_rows = cost.tolist()
    rows: List[List[float]] = []
    for i in range(n):
        cost_row = cost_rows[i]
        prev_row = rows[i - 1] if i > 0 else None
        row = [inf] * m
        if band is None:
            j_start, j_stop = 0, m
        else:
            j_start = max(0, i - band)
            j_stop = min(m, i + band + 1)
        for j in range(j_start, j_stop):
            c = cost_row[j]
            if i == 0 and j == 0:
                best = 0.0
            else:
                best = inf
                if prev_row is not None:
                    if j > 0 and prev_row[j - 1] < best:
                        best = prev_row[j - 1]
                    if prev_row[j] < best:
                        best = prev_row[j]
                if j > 0 and row[j - 1] < best:
                    best = row[j - 1]
            if best == inf:
                continue
            if use_sum:
                row[j] = best + c
            else:
                row[j] = best if best > c else c
        rows.append(row)
    return np.asarray(rows, dtype=np.float64)


def reference_edit_table(
    substitution: np.ndarray,
    deletion: np.ndarray,
    insertion: np.ndarray,
) -> np.ndarray:
    """Cell-by-cell edit-distance table (the pre-vectorization kernel)."""
    if substitution.ndim != 2 or substitution.shape[0] == 0 or substitution.shape[1] == 0:
        raise DistanceError("cost matrix must be a non-empty 2-D array")
    n, m = substitution.shape
    if deletion.shape != (n,) or insertion.shape != (m,):
        raise DistanceError("gap cost vectors do not match the substitution matrix")
    sub_rows = substitution.tolist()
    del_costs = deletion.tolist()
    ins_costs = insertion.tolist()
    first_row = [0.0] * (m + 1)
    acc = 0.0
    for j in range(1, m + 1):
        acc += ins_costs[j - 1]
        first_row[j] = acc
    rows: List[List[float]] = [first_row]
    for i in range(1, n + 1):
        sub_row = sub_rows[i - 1]
        delete_cost = del_costs[i - 1]
        prev_row = rows[i - 1]
        row = [0.0] * (m + 1)
        row[0] = prev_row[0] + delete_cost
        for j in range(1, m + 1):
            best = prev_row[j - 1] + sub_row[j - 1]
            up = prev_row[j] + delete_cost
            if up < best:
                best = up
            left = row[j - 1] + ins_costs[j - 1]
            if left < best:
                best = left
            row[j] = best
        rows.append(row)
    return np.asarray(rows, dtype=np.float64)


def reference_lcss_length(matches: np.ndarray) -> int:
    """Cell-by-cell longest-common-subsequence length over a match matrix."""
    match_rows = matches.tolist()
    n, m = matches.shape
    previous = [0] * (m + 1)
    for i in range(1, n + 1):
        row_matches = match_rows[i - 1]
        current = [0] * (m + 1)
        for j in range(1, m + 1):
            if row_matches[j - 1]:
                current[j] = previous[j - 1] + 1
            else:
                up = previous[j]
                left = current[j - 1]
                current[j] = up if up >= left else left
        previous = current
    return int(previous[m])
