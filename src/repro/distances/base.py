"""The :class:`Distance` interface and element-level ground metrics.

A sequence distance compares two whole (sub)sequences.  Most of the
elastic measures (DTW, ERP, Fréchet) are built on top of an *element*
metric -- the cost of coupling one element of the first sequence with one
element of the second.  :class:`ElementMetric` captures that ground
distance so that the same DP code works for scalar series, trajectories,
and symbol codes.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional, Union

import numpy as np

from repro.exceptions import DistanceError, IncompatibleSequencesError
from repro.sequences.sequence import Sequence

SequenceLike = Union[Sequence, np.ndarray, Iterable[float]]


def as_array(sequence: SequenceLike) -> np.ndarray:
    """Coerce a :class:`Sequence`, array or iterable into a 2-D float array.

    The returned array always has shape ``(length, dim)``; scalar series and
    strings become ``(length, 1)``.  Normalising shapes here keeps every
    distance implementation free of special cases.
    """
    if isinstance(sequence, Sequence):
        values = sequence.values
    else:
        values = np.asarray(sequence)
    if values.ndim == 0:
        raise DistanceError("cannot interpret a scalar as a sequence")
    values = np.asarray(values, dtype=np.float64)
    if values.ndim == 1:
        values = values.reshape(-1, 1)
    elif values.ndim != 2:
        raise DistanceError(
            f"sequences must be 1-D or 2-D arrays, got ndim={values.ndim}"
        )
    if values.shape[0] == 0:
        raise DistanceError("cannot compute a distance over an empty sequence")
    return values


def check_same_dim(first: np.ndarray, second: np.ndarray) -> None:
    """Raise when two element arrays have different dimensionality."""
    if first.shape[1] != second.shape[1]:
        raise IncompatibleSequencesError(
            f"element dimensionalities differ: {first.shape[1]} vs {second.shape[1]}"
        )


class ElementMetric:
    """Ground distance between individual sequence elements.

    Parameters
    ----------
    kind:
        ``"euclidean"`` -- the L2 norm of the element difference (the usual
        choice for time series and trajectories);
        ``"manhattan"`` -- the L1 norm;
        ``"discrete"`` -- 0 when the elements are identical, 1 otherwise
        (the natural ground distance for symbols).
    """

    KINDS = ("euclidean", "manhattan", "discrete")

    def __init__(self, kind: str = "euclidean") -> None:
        if kind not in self.KINDS:
            raise DistanceError(
                f"unknown element metric {kind!r}; expected one of {self.KINDS}"
            )
        self.kind = kind

    def __repr__(self) -> str:
        return f"ElementMetric({self.kind!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ElementMetric):
            return NotImplemented
        return self.kind == other.kind

    def __hash__(self) -> int:
        return hash(self.kind)

    def matrix(self, first: np.ndarray, second: np.ndarray) -> np.ndarray:
        """Full cost matrix ``C[i, j] = d(first[i], second[j])``.

        Both inputs must already be ``(length, dim)`` arrays.  The matrix is
        computed with broadcasting, which keeps the elastic-distance DP loops
        free of per-cell Python-level arithmetic.
        """
        check_same_dim(first, second)
        diff = first[:, None, :] - second[None, :, :]
        if self.kind == "euclidean":
            return np.sqrt(np.sum(diff * diff, axis=2))
        if self.kind == "manhattan":
            return np.sum(np.abs(diff), axis=2)
        return (np.any(diff != 0.0, axis=2)).astype(np.float64)

    def matrix_batch(self, first: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Cost tensor ``T[k, i, j] = d(first[i], items[k, j])``.

        ``first`` is one ``(n, dim)`` operand shared by the whole batch and
        ``items`` a ``(k, m, dim)`` stack of second operands; the result backs
        the batched elastic-distance kernels.
        """
        diff = first[None, :, None, :] - items[:, None, :, :]
        if self.kind == "euclidean":
            return np.sqrt(np.sum(diff * diff, axis=3))
        if self.kind == "manhattan":
            return np.sum(np.abs(diff), axis=3)
        return (np.any(diff != 0.0, axis=3)).astype(np.float64)

    def to_origin_batch(
        self, items: np.ndarray, origin: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """:meth:`to_origin` over a ``(k, m, dim)`` stack; returns ``(k, m)``."""
        if origin is None:
            origin = np.zeros(items.shape[2], dtype=np.float64)
        diff = items - origin.reshape(1, 1, -1)
        if self.kind == "euclidean":
            return np.sqrt(np.sum(diff * diff, axis=2))
        if self.kind == "manhattan":
            return np.sum(np.abs(diff), axis=2)
        return (np.any(diff != 0.0, axis=2)).astype(np.float64)

    def single(self, first: np.ndarray, second: np.ndarray) -> float:
        """Ground distance between two single elements (1-D arrays)."""
        diff = np.asarray(first, dtype=np.float64) - np.asarray(second, dtype=np.float64)
        if self.kind == "euclidean":
            return float(np.sqrt(np.dot(diff, diff)))
        if self.kind == "manhattan":
            return float(np.sum(np.abs(diff)))
        return 0.0 if not np.any(diff != 0.0) else 1.0

    def to_origin(self, elements: np.ndarray, origin: Optional[np.ndarray] = None) -> np.ndarray:
        """Ground distance of every element to a fixed ``origin`` element.

        ERP uses the distance to a *gap element* ``g`` (the origin by
        default) as the cost of an unmatched element.
        """
        if origin is None:
            origin = np.zeros(elements.shape[1], dtype=np.float64)
        diff = elements - origin.reshape(1, -1)
        if self.kind == "euclidean":
            return np.sqrt(np.sum(diff * diff, axis=1))
        if self.kind == "manhattan":
            return np.sum(np.abs(diff), axis=1)
        return (np.any(diff != 0.0, axis=1)).astype(np.float64)


def validate_group_shape(distance: "Distance", query: np.ndarray, shape: tuple) -> None:
    """The per-item checks of :func:`group_batch_operands` for a packed group.

    Callers holding a :class:`~repro.sequences.packed.PackedWindowStore`
    already know every member of a shape group is a valid ``(length, dim)``
    array, so only the query-relative checks remain; the error messages
    match the un-packed path exactly.
    """
    if shape[1] != query.shape[1]:
        raise IncompatibleSequencesError(
            f"element dimensionalities differ: {query.shape[1]} vs {shape[1]}"
        )
    if not distance.supports_unequal_lengths and shape[0] != query.shape[0]:
        raise IncompatibleSequencesError(
            f"{distance.name} requires equal-length sequences, "
            f"got {query.shape[0]} and {shape[0]}"
        )


def group_cutoff(cutoff, indexes) -> "Union[None, float, np.ndarray]":
    """Slice a batch cutoff (``None``/scalar/vector) down to one shape group."""
    if cutoff is None:
        return None
    if np.ndim(cutoff) == 0:
        return float(cutoff)
    return np.asarray(cutoff, dtype=np.float64)[np.asarray(indexes, dtype=np.intp)]


def item_cutoff(cutoff, index: int) -> Optional[float]:
    """The scalar threshold one batch position runs under."""
    if cutoff is None:
        return None
    if np.ndim(cutoff) == 0:
        return float(cutoff)
    return float(cutoff[index])


def group_batch_operands(
    distance: "Distance",
    query: np.ndarray,
    items: "List[SequenceLike]",
    indexes: Optional[Iterable[int]] = None,
) -> "tuple[dict, dict]":
    """Validate batch operands against ``query`` and group them by shape.

    Shared by :meth:`Distance.batch` and the counting/caching wrapper in
    :mod:`repro.indexing.stats`, so the coercion rules (dimensionality check,
    lockstep length requirement) and the shape-grouping policy live in one
    place.  ``indexes`` restricts the work to a subset of ``items`` (the
    wrapper skips cache hits); the default covers every item.

    Returns ``(arrays, groups)``: ``arrays`` maps item index to its coerced
    ``(m, dim)`` array, ``groups`` maps each array shape to the list of item
    indexes with that shape.
    """
    if indexes is None:
        indexes = range(len(items))
    arrays: "dict[int, np.ndarray]" = {}
    groups: "dict[tuple, list]" = {}
    for index in indexes:
        arr = as_array(items[index])
        check_same_dim(query, arr)
        if not distance.supports_unequal_lengths and arr.shape[0] != query.shape[0]:
            raise IncompatibleSequencesError(
                f"{distance.name} requires equal-length sequences, "
                f"got {query.shape[0]} and {arr.shape[0]}"
            )
        arrays[index] = arr
        groups.setdefault(arr.shape, []).append(index)
    return arrays, groups


class Distance(abc.ABC):
    """Abstract base class for sequence distance measures.

    Subclasses implement :meth:`compute` over normalised ``(length, dim)``
    arrays; the public :meth:`__call__` handles coercion from
    :class:`~repro.sequences.sequence.Sequence` objects and plain arrays.
    """

    #: Short, stable identifier used by the registry and in reports.
    name: str = "distance"
    #: Whether the measure is symmetric and obeys the triangle inequality.
    is_metric: bool = False
    #: Whether the measure obeys the paper's consistency property.
    is_consistent: bool = False
    #: Whether the measure tolerates operands of different lengths.
    supports_unequal_lengths: bool = True

    def __call__(self, first: SequenceLike, second: SequenceLike) -> float:
        """Distance between two sequences (after shape normalisation)."""
        a, b = self._coerce_pair(first, second)
        return float(self.compute(a, b))

    def bounded(self, first: SequenceLike, second: SequenceLike, cutoff: float) -> float:
        """Distance between two sequences, early-abandoned beyond ``cutoff``.

        Returns the exact distance whenever it is at most ``cutoff``;
        otherwise any value strictly greater than ``cutoff`` (typically
        ``inf``) may be returned.  Callers that only need to know whether a
        pair is within a query radius -- the matcher's verification step and
        the linear-scan index -- use this to let the DP kernels stop as soon
        as a table row proves the radius unreachable.
        """
        a, b = self._coerce_pair(first, second)
        return float(self.compute_bounded(a, b, float(cutoff)))

    def _coerce_pair(
        self, first: SequenceLike, second: SequenceLike
    ) -> "tuple[np.ndarray, np.ndarray]":
        a = as_array(first)
        b = as_array(second)
        check_same_dim(a, b)
        if not self.supports_unequal_lengths and a.shape[0] != b.shape[0]:
            raise IncompatibleSequencesError(
                f"{self.name} requires equal-length sequences, "
                f"got {a.shape[0]} and {b.shape[0]}"
            )
        return a, b

    @abc.abstractmethod
    def compute(self, first: np.ndarray, second: np.ndarray) -> float:
        """Distance between two ``(length, dim)`` arrays."""

    def compute_bounded(self, first: np.ndarray, second: np.ndarray, cutoff: float) -> float:
        """:meth:`compute` with permission to abandon beyond ``cutoff``.

        The default simply computes the exact distance; kernels with
        row-monotone DP tables (DTW, ERP, Levenshtein, EDR, Fréchet)
        override it to stop once a row's minimum exceeds ``cutoff``.
        """
        return self.compute(first, second)

    # ------------------------------------------------------------------ #
    # Batched evaluation
    # ------------------------------------------------------------------ #
    def batch(
        self,
        query: SequenceLike,
        items: "List[SequenceLike]",
        cutoff=None,
    ) -> np.ndarray:
        """Distances from ``query`` to every item, as one kernel per shape group.

        Items are grouped by ``(length, dim)`` and each group is stacked into
        one ``(k, m, dim)`` tensor handed to :meth:`compute_batch`, so the
        vectorized kernels sweep the whole group's DP tables at once instead
        of paying one kernel launch per pair.  With a ``cutoff`` -- one
        scalar, or a per-item vector of length ``len(items)`` -- the same
        early-abandon contract as :meth:`bounded` applies per item: a
        returned value is exact whenever it is at most that item's cutoff,
        and any value beyond the cutoff (typically ``inf``) means "provably
        outside".
        """
        q = as_array(query)
        arrays, groups = group_batch_operands(self, q, items)
        out = np.empty(len(items), dtype=np.float64)
        for indexes in groups.values():
            tensor = np.stack([arrays[i] for i in indexes])
            out[indexes] = self.compute_batch(q, tensor, group_cutoff(cutoff, indexes))
        return out

    def compute_batch(
        self, query: np.ndarray, items: np.ndarray, cutoff
    ) -> np.ndarray:
        """Distances from ``query`` (``(n, dim)``) to ``items`` (``(k, m, dim)``).

        ``cutoff`` is ``None``, one scalar, or a per-item vector.  The
        default loops :meth:`compute` / :meth:`compute_bounded` per item;
        the elastic measures override it with genuinely batched kernels.
        """
        values = np.empty(items.shape[0], dtype=np.float64)
        for index in range(items.shape[0]):
            threshold = item_cutoff(cutoff, index)
            if threshold is None:
                values[index] = self.compute(query, items[index])
            else:
                values[index] = self.compute_bounded(query, items[index], threshold)
        return values

    # ------------------------------------------------------------------ #
    # Optional capabilities
    # ------------------------------------------------------------------ #
    def lower_bound(self, first: SequenceLike, second: SequenceLike) -> float:
        """A cheap lower bound on the distance (default: 0).

        Index structures may use lower bounds to skip full computations;
        subclasses override this when a meaningful bound exists.
        """
        return 0.0

    def empty_distance(self, other: SequenceLike) -> float:
        """Distance between the empty sequence and ``other`` (default: inf).

        Only the gap-based edit distances define this: they can absorb every
        element of ``other`` as an insertion.  It matters for the
        consistency property (Definition 1), whose existential quantifies
        over *possibly empty* subsequences ``SQ`` -- e.g. ERP with the
        default gap assigns distance 0 to a pair like ``([1, 1], [0, 1, 1])``
        by deleting the gap-valued element, and the subsequence ``[0]`` of
        the target is then matched by the empty subsequence of the query.
        Measures without a gap concept keep the default ``inf`` (no
        alignment with the empty sequence exists).
        """
        return float("inf")

    def pairwise(self, items: List[SequenceLike]) -> np.ndarray:
        """Symmetric pairwise distance matrix over ``items``.

        The matrix is filled assuming symmetry even for non-symmetric
        measures, in which case the upper triangle is authoritative.
        """
        arrays = [as_array(item) for item in items]
        n = len(arrays)
        matrix = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i + 1, n):
                value = float(self.compute(arrays[i], arrays[j]))
                matrix[i, j] = value
                matrix[j, i] = value
        return matrix

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
