"""Empirical verification of the paper's consistency property.

Definition 1 of the paper: a distance ``delta`` is *consistent* when, for any
two sequences ``Q`` and ``X`` and for every subsequence ``SX`` of ``X``,
there exists a subsequence ``SQ`` of ``Q`` with ``delta(SQ, SX) <=
delta(Q, X)``.

The declarations on each :class:`~repro.distances.base.Distance` subclass
(``is_consistent``) record the paper's analytical results; this module
provides an *empirical* checker used by the test-suite and available to
users who plug in their own distances.  The checker enumerates (or samples)
subsequences ``SX`` and verifies that the minimum over subsequences ``SQ``
never exceeds ``delta(Q, X)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.distances.base import Distance, as_array
from repro.exceptions import DistanceError


@dataclass
class ConsistencyViolation:
    """A single counterexample found by :func:`check_consistency`."""

    #: Bounds (start, stop) of the database subsequence SX that has no close SQ.
    sx_bounds: Tuple[int, int]
    #: delta(Q, X), which every SX should be able to beat.
    whole_distance: float
    #: The best (smallest) delta(SQ, SX) found over all subsequences SQ.
    best_subsequence_distance: float


@dataclass
class ConsistencyReport:
    """Outcome of an empirical consistency check.

    ``consistent`` is true when no violation was found among the examined
    subsequences.  A true value on sampled subsequences is evidence, not
    proof; a false value is a genuine counterexample.
    """

    consistent: bool
    pairs_checked: int
    violations: List[ConsistencyViolation] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.consistent


def _all_bounds(length: int, min_length: int) -> List[Tuple[int, int]]:
    """Every (start, stop) pair describing a subsequence of at least min_length."""
    return [
        (start, stop)
        for start, stop in itertools.combinations(range(length + 1), 2)
        if stop - start >= min_length
    ]


def check_consistency(
    distance: Distance,
    query,
    target,
    min_length: int = 1,
    max_subsequences: Optional[int] = 200,
    rng: Optional[np.random.Generator] = None,
) -> ConsistencyReport:
    """Empirically test Definition 1 on a concrete pair of sequences.

    Parameters
    ----------
    distance:
        The distance measure under test.
    query, target:
        The sequences ``Q`` and ``X``.
    min_length:
        Minimum subsequence length to consider (1 reproduces the
        definition verbatim; larger values speed the check up).
    max_subsequences:
        When set, at most this many subsequences ``SX`` are examined,
        sampled uniformly; ``None`` enumerates all of them.
    rng:
        Random generator used for sampling (defaults to a fixed seed so the
        check is reproducible).

    Returns
    -------
    ConsistencyReport
        Violations carry the offending ``SX`` bounds, making failures easy
        to turn into regression tests.
    """
    if min_length < 1:
        raise DistanceError(f"min_length must be >= 1, got {min_length}")
    q = as_array(query)
    x = as_array(target)
    whole = float(distance.compute(q, x))

    sx_bounds = _all_bounds(x.shape[0], min_length)
    if max_subsequences is not None and len(sx_bounds) > max_subsequences:
        generator = rng or np.random.default_rng(0)
        chosen = generator.choice(len(sx_bounds), size=max_subsequences, replace=False)
        sx_bounds = [sx_bounds[index] for index in sorted(chosen)]

    sq_bounds = _all_bounds(q.shape[0], min_length)

    violations: List[ConsistencyViolation] = []
    pairs_checked = 0
    lockstep = not distance.supports_unequal_lengths
    for start, stop in sx_bounds:
        sx = x[start:stop]
        # Definition 1 quantifies over *possibly empty* subsequences SQ: the
        # gap-based edit distances can absorb all of SX into insertions (ERP
        # with its default gap needs this when X contains gap-valued
        # elements); measures without a gap concept report inf here.
        best = float(distance.empty_distance(sx))
        for q_start, q_stop in sq_bounds:
            if best <= whole:
                break
            if lockstep and (q_stop - q_start) != (stop - start):
                # Lockstep distances are only defined for equal lengths, so
                # the existential in Definition 1 quantifies over same-length
                # subsequences of Q.
                continue
            pairs_checked += 1
            value = float(distance.compute(q[q_start:q_stop], sx))
            if value < best:
                best = value
            if best <= whole:
                break
        if best > whole and not np.isclose(best, whole):
            violations.append(
                ConsistencyViolation(
                    sx_bounds=(start, stop),
                    whole_distance=whole,
                    best_subsequence_distance=best,
                )
            )
    return ConsistencyReport(
        consistent=not violations,
        pairs_checked=pairs_checked,
        violations=violations,
    )
