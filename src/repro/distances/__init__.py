"""Distance substrate: sequence distance measures with metric/consistency flags.

Every distance in this subpackage implements the :class:`~repro.distances.base.Distance`
interface and declares two boolean properties the framework cares about:

``is_metric``
    Whether the distance obeys symmetry and the triangle inequality.  Only
    metric distances may be used with the metric indexes in
    :mod:`repro.indexing`.

``is_consistent``
    Whether the distance obeys the paper's consistency property
    (Definition 1), which the segmentation-based filtering of
    :mod:`repro.core` requires.

The measures the paper analyses are all provided: Euclidean, Hamming,
Levenshtein, DTW, ERP, and the discrete Fréchet distance, plus EDR and LCSS
as extensions.
"""

from repro.distances.base import Distance, ElementMetric
from repro.distances.cache import DistanceCache, shared_cache
from repro.distances.euclidean import Euclidean
from repro.distances.hamming import Hamming
from repro.distances.levenshtein import Levenshtein, WeightedLevenshtein
from repro.distances.dtw import DTW
from repro.distances.erp import ERP
from repro.distances.frechet import DiscreteFrechet
from repro.distances.edr import EDR
from repro.distances.lcss import LCSS
from repro.distances.consistency import check_consistency, ConsistencyReport
from repro.distances.registry import get_distance, register_distance, available_distances
from repro.distances.lower_bounds import (
    LowerBound,
    bounds_for,
    combined_bound,
    combined_batch_bound,
    register_lower_bound,
    registered_lower_bounds,
)

__all__ = [
    "Distance",
    "DistanceCache",
    "shared_cache",
    "LowerBound",
    "bounds_for",
    "combined_bound",
    "combined_batch_bound",
    "register_lower_bound",
    "registered_lower_bounds",
    "ElementMetric",
    "Euclidean",
    "Hamming",
    "Levenshtein",
    "WeightedLevenshtein",
    "DTW",
    "ERP",
    "DiscreteFrechet",
    "EDR",
    "LCSS",
    "check_consistency",
    "ConsistencyReport",
    "get_distance",
    "register_distance",
    "available_distances",
]
