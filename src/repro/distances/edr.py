"""EDR: Edit Distance on Real sequences (extension distance).

EDR treats two real-valued elements as "equal" when they fall within a
matching threshold ``epsilon`` of each other, and then counts edit
operations exactly like the Levenshtein distance.  It is robust to noise
and outliers but **not a metric** (the thresholding breaks the triangle
inequality), so it is provided as an extension usable with the linear-scan
path of the framework only.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.distances.alignment import batch_edit_distance_value, edit_distance_value
from repro.distances.backend import fused_provider
from repro.distances.base import Distance, ElementMetric
from repro.distances.compiled import METRIC_KIND_CODES, MODE_EDR, NO_GAP
from repro.exceptions import DistanceError


class EDR(Distance):
    """Edit Distance on Real sequences.

    Parameters
    ----------
    epsilon:
        Matching threshold: elements at ground distance <= ``epsilon`` match
        at cost 0, otherwise substitution costs 1.
    element_metric:
        Ground distance used for the threshold test.
    """

    name = "edr"
    is_metric = False
    is_consistent = True
    supports_unequal_lengths = True

    def __init__(self, epsilon: float = 0.5, element_metric: Optional[ElementMetric] = None) -> None:
        if epsilon < 0:
            raise DistanceError(f"epsilon must be non-negative, got {epsilon}")
        self.epsilon = float(epsilon)
        self.element_metric = element_metric or ElementMetric("euclidean")

    def compute(self, first: np.ndarray, second: np.ndarray) -> float:
        return self.compute_bounded(first, second, None)

    def compute_bounded(
        self, first: np.ndarray, second: np.ndarray, cutoff: Optional[float]
    ) -> float:
        """Early-abandoning EDR: all edit operations cost 0 or 1."""
        kernels = fused_provider(first.shape[1])
        if kernels is not None:
            kind = METRIC_KIND_CODES[self.element_metric.kind]
            return kernels.edit_value(
                first, second, MODE_EDR, kind, NO_GAP, self.epsilon, cutoff
            )
        ground = self.element_metric.matrix(first, second)
        substitution = (ground > self.epsilon).astype(np.float64)
        deletion = np.ones(first.shape[0], dtype=np.float64)
        insertion = np.ones(second.shape[0], dtype=np.float64)
        return edit_distance_value(substitution, deletion, insertion, cutoff=cutoff)

    def empty_distance(self, other) -> float:
        """EDR against the empty sequence: one unit-cost insertion per element."""
        from repro.distances.base import as_array

        return float(as_array(other).shape[0])

    def compute_batch(self, query: np.ndarray, items: np.ndarray, cutoff) -> np.ndarray:
        """Batched EDR: threshold the batched ground tensor, one row sweep."""
        kernels = fused_provider(query.shape[1])
        if kernels is not None:
            kind = METRIC_KIND_CODES[self.element_metric.kind]
            return kernels.edit_batch(
                query, items, MODE_EDR, kind, NO_GAP, self.epsilon, cutoff
            )
        ground = self.element_metric.matrix_batch(query, items)
        substitution = (ground > self.epsilon).astype(np.float64)
        deletion = np.ones(query.shape[0], dtype=np.float64)
        insertion = np.ones((items.shape[0], items.shape[1]), dtype=np.float64)
        return batch_edit_distance_value(substitution, deletion, insertion, cutoff=cutoff)

    def __repr__(self) -> str:
        return f"EDR(epsilon={self.epsilon}, element_metric={self.element_metric!r})"
