"""Compiled elastic-distance kernel providers (the "compiled" tier).

The NumPy row sweeps in :mod:`repro.distances.alignment` are the always-on
oracle; this module supplies drop-in *compiled* implementations of the same
recurrences with the element-cost computation fused into the DP loop, so a
single call covers what the NumPy path does in two stages (cost matrix
broadcast + row sweep).  Three providers exist, sharing one algorithm
specification:

``numba``
    The functions below, JIT-compiled with ``@numba.njit(cache=True)`` when
    Numba is importable.  Numba is an *optional* dependency -- nothing in
    this module (or the package) requires it.
``cc``
    ``_kernels.c`` (the same recurrences in C), compiled on first use with
    the system C compiler into a content-hash-keyed shared library and
    loaded through :mod:`ctypes`.  Available wherever a ``cc``/``gcc``/
    ``clang`` binary exists.
``pyloop``
    The very same Python functions, un-jitted.  Far slower than NumPy --
    it exists so the shared algorithm specification is testable on
    machines with neither Numba nor a C compiler, and as a debugging
    backend (``REPRO_KERNEL=pyloop``).

Exactness contract: for every call form the providers replicate the
floating-point operation order of the corresponding NumPy kernel --
sequential prefix sums, element-wise minima and running minima for the
additive recurrences; the direct bottleneck recurrence (min/max are exact
selections) for Fréchet; the same :data:`~repro.distances.alignment`
small-table switch for single edit-distance values and the always-reduced
sweep for batches.  Values are therefore bit-identical to the NumPy tier
wherever the early-abandon contract requires exactness (``<= cutoff`` or
unbounded), which is what keeps results, work counters, caches, and replay
logs byte-identical across kernel backends.

Element costs are accumulated sequentially over the element axis, which
matches NumPy's reduction order only below NumPy's pairwise-summation
threshold (8 addends); :func:`fusable_dim` gates dispatch accordingly.

Every provider exposes the same four entry points::

    warp_value(query, item, kind, use_max, band, cutoff) -> float
    warp_batch(query, items, kind, use_max, band, cutoffs) -> ndarray
    edit_value(query, item, mode, kind, gap, eps, cutoff) -> float
    edit_batch(query, items, mode, kind, gap, eps, cutoffs) -> ndarray

with ``kind`` an element-metric code (0 euclidean, 1 manhattan,
2 discrete), ``mode`` an edit-recurrence code (0 Levenshtein, 1 ERP,
2 EDR), ``band`` ``None`` or a Sakoe-Chiba half-width, ``cutoff`` ``None``
or a float, and ``cutoffs`` ``None``, a float, or a per-row ``(k,)``
threshold vector.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

_INF = float("inf")

#: Element-metric codes shared with ``_kernels.c``.
METRIC_KIND_CODES = {"euclidean": 0, "manhattan": 1, "discrete": 2}

#: Edit-recurrence codes shared with ``_kernels.c``.
MODE_LEVENSHTEIN = 0
MODE_ERP = 1
MODE_EDR = 2

#: Placeholder gap element for the modes that never read one
#: (``MODE_LEVENSHTEIN`` / ``MODE_EDR`` use unit gap costs internally).
NO_GAP = np.zeros(1)

#: Mirrors ``alignment._SMALL_TABLE_CELLS`` (the single-value edit kernels
#: switch between the direct and the reduced-coordinate recurrence there).
_SMALL_TABLE_CELLS = 1024

#: NumPy switches to pairwise summation at 8 addends; below that its
#: reductions are sequential and the fused element costs are bit-identical.
MAX_FUSED_DIM = 7


def fusable_dim(dim: int) -> bool:
    """Whether fused element costs reproduce NumPy's summation order."""
    return dim <= MAX_FUSED_DIM


# --------------------------------------------------------------------- #
# Shared algorithm specification (plain Python, Numba-compilable).
#
# These functions are the single source of truth for what the compiled
# tier computes: the ``pyloop`` provider calls them as-is, the ``numba``
# provider calls their ``njit`` products, and ``_kernels.c`` transcribes
# them line by line.  Conventions: ``band < 0`` means unbanded and a
# ``cutoff`` of +inf means unbounded (both turn the abandon checks into
# no-ops exactly as the NumPy kernels' ``cutoff is None`` branches do).
# --------------------------------------------------------------------- #


def _ecost(q, i, x, j, d, kind):
    """Ground distance between elements ``q[i]`` and ``x[j]``."""
    s = 0.0
    if kind == 0:
        for t in range(d):
            diff = q[i, t] - x[j, t]
            s += diff * diff
        return s ** 0.5
    if kind == 1:
        for t in range(d):
            s += abs(q[i, t] - x[j, t])
        return s
    for t in range(d):
        if q[i, t] - x[j, t] != 0.0:
            return 1.0
    return 0.0


def _gap_cost(x, j, gap, d, kind):
    """Ground distance between element ``x[j]`` and the gap element."""
    s = 0.0
    if kind == 0:
        for t in range(d):
            diff = x[j, t] - gap[t]
            s += diff * diff
        return s ** 0.5
    if kind == 1:
        for t in range(d):
            s += abs(x[j, t] - gap[t])
        return s
    for t in range(d):
        if x[j, t] - gap[t] != 0.0:
            return 1.0
    return 0.0


def _edit_sub(q, i, x, j, d, mode, kind, eps):
    """Substitution cost of the edit recurrences (see ``edit_sub`` in C)."""
    if mode == 0:
        for t in range(d):
            if q[i, t] != x[j, t]:
                return 1.0
        return 0.0
    g = _ecost(q, i, x, j, d, kind)
    if mode == 1:
        return g
    if g > eps:
        return 1.0
    return 0.0


def _warp_sum_pair(q, x, kind, band, cutoff, row, buf, costp):
    """Reduced-coordinate additive row sweep; mirrors ``_warp_sum_value``."""
    n = q.shape[0]
    m = x.shape[0]
    d = q.shape[1]
    acc = 0.0
    for j in range(m):
        acc += _ecost(q, 0, x, j, d, kind)
        costp[j] = acc
        row[j] = acc
    if band >= 0:
        j_stop = min(m, band + 1)
        for j in range(j_stop, m):
            row[j] = _INF
    if row[0] > cutoff:
        return _INF
    for i in range(1, n):
        if band < 0:
            j_start = 0
            j_stop = m
        else:
            j_start = min(max(0, i - band), m)
            j_stop = min(m, i + band + 1)
        acc = 0.0
        for j in range(m):
            acc += _ecost(q, i, x, j, d, kind)
            costp[j] = acc
        buf[0] = row[0]
        for j in range(1, m):
            buf[j] = min(row[j], row[j - 1])
        for j in range(j_start):
            buf[j] = _INF
        for j in range(j_stop, m):
            buf[j] = _INF
        buf[0] = buf[0] - 0.0
        for j in range(1, m):
            buf[j] = buf[j] - costp[j - 1]
        running = _INF
        for j in range(m):
            if buf[j] < running:
                running = buf[j]
            buf[j] = running
        for j in range(m):
            buf[j] = buf[j] + costp[j]
        for j in range(j_stop, m):
            buf[j] = _INF
        row, buf = buf, row
        if cutoff != _INF:
            row_min = row[0]
            for j in range(1, m):
                if row[j] < row_min:
                    row_min = row[j]
            if row_min > cutoff:
                return _INF
    return row[m - 1]


def _warp_max_pair(q, x, kind, band, cutoff, prev, row):
    """Direct bottleneck recurrence; mirrors ``_warp_max_value_small``."""
    n = q.shape[0]
    m = x.shape[0]
    d = q.shape[1]
    for i in range(n):
        if band < 0:
            j_start = 0
            j_stop = m
        else:
            j_start = min(max(0, i - band), m)
            j_stop = min(m, i + band + 1)
        row_min = _INF
        for j in range(m):
            row[j] = _INF
        for j in range(j_start, j_stop):
            c = _ecost(q, i, x, j, d, kind)
            if i == 0 and j == 0:
                best = 0.0
            else:
                best = _INF
                if i > 0:
                    if j > 0 and prev[j - 1] < best:
                        best = prev[j - 1]
                    if prev[j] < best:
                        best = prev[j]
                if j > 0 and row[j - 1] < best:
                    best = row[j - 1]
                if best == _INF:
                    continue
            value = best if best > c else c
            row[j] = value
            if value < row_min:
                row_min = value
        if cutoff != _INF and row_min > cutoff:
            return _INF
        prev, row = row, prev
    return prev[m - 1]


def _edit_pair_small(q, x, mode, kind, eps, del_costs, ins, cutoff, prev, row):
    """Direct scalar edit recurrence; mirrors ``_edit_value_small``."""
    n = q.shape[0]
    m = x.shape[0]
    d = q.shape[1]
    acc = 0.0
    prev[0] = 0.0
    for j in range(1, m + 1):
        acc += ins[j - 1]
        prev[j] = acc
    for i in range(1, n + 1):
        delc = del_costs[i - 1]
        first = prev[0] + delc
        row[0] = first
        row_min = first
        for j in range(1, m + 1):
            best = prev[j - 1] + _edit_sub(q, i - 1, x, j - 1, d, mode, kind, eps)
            up = prev[j] + delc
            if up < best:
                best = up
            left = row[j - 1] + ins[j - 1]
            if left < best:
                best = left
            row[j] = best
            if best < row_min:
                row_min = best
        if cutoff != _INF and row_min > cutoff:
            return _INF
        prev, row = row, prev
    return prev[m]


def _edit_pair_reduced(q, x, mode, kind, eps, del_costs, ins, insp, cutoff, reduced, buf):
    """Reduced-coordinate edit sweep; mirrors ``edit_distance_value``."""
    n = q.shape[0]
    m = x.shape[0]
    d = q.shape[1]
    for j in range(m + 1):
        reduced[j] = 0.0
    for i in range(n):
        delc = del_costs[i]
        for j in range(m):
            rs = _edit_sub(q, i, x, j, d, mode, kind, eps) - ins[j]
            a = reduced[j] + rs
            b = reduced[j + 1] + delc
            buf[j + 1] = a if a < b else b
        buf[0] = reduced[0] + delc
        running = _INF
        for j in range(m + 1):
            if buf[j] < running:
                running = buf[j]
            buf[j] = running
        reduced, buf = buf, reduced
        if cutoff != _INF:
            row_min = reduced[0] + insp[0]
            for j in range(1, m + 1):
                v = reduced[j] + insp[j]
                if v < row_min:
                    row_min = v
            if row_min > cutoff:
                return _INF
    return reduced[m] + insp[m]


def _warp_value_impl(q, x, kind, use_max, band, cutoff):
    m = x.shape[0]
    if use_max:
        scratch = np.empty(2 * m)
        return _warp_max_pair(q, x, kind, band, cutoff, scratch[:m], scratch[m:])
    scratch = np.empty(3 * m)
    return _warp_sum_pair(
        q, x, kind, band, cutoff, scratch[:m], scratch[m : 2 * m], scratch[2 * m :]
    )


def _warp_batch_impl(q, xs, kind, use_max, band, cutoffs, out):
    k = xs.shape[0]
    m = xs.shape[1]
    scratch = np.empty(3 * m)
    for p in range(k):
        if use_max:
            out[p] = _warp_max_pair(
                q, xs[p], kind, band, cutoffs[p], scratch[:m], scratch[m : 2 * m]
            )
        else:
            out[p] = _warp_sum_pair(
                q,
                xs[p],
                kind,
                band,
                cutoffs[p],
                scratch[:m],
                scratch[m : 2 * m],
                scratch[2 * m :],
            )


def _fill_ins(x, mode, kind, gap, ins, insp):
    m = x.shape[0]
    d = x.shape[1]
    acc = 0.0
    insp[0] = 0.0
    for j in range(m):
        if mode == 1:
            ins[j] = _gap_cost(x, j, gap, d, kind)
        else:
            ins[j] = 1.0
        acc += ins[j]
        insp[j + 1] = acc


def _fill_del(q, mode, kind, gap, del_costs):
    n = q.shape[0]
    d = q.shape[1]
    for i in range(n):
        if mode == 1:
            del_costs[i] = _gap_cost(q, i, gap, d, kind)
        else:
            del_costs[i] = 1.0


def _edit_value_impl(q, x, mode, kind, gap, eps, cutoff):
    n = q.shape[0]
    m = x.shape[0]
    ins = np.empty(m)
    insp = np.empty(m + 1)
    del_costs = np.empty(n)
    work0 = np.empty(m + 1)
    work1 = np.empty(m + 1)
    _fill_ins(x, mode, kind, gap, ins, insp)
    _fill_del(q, mode, kind, gap, del_costs)
    if n * m <= _SMALL_TABLE_CELLS:
        return _edit_pair_small(q, x, mode, kind, eps, del_costs, ins, cutoff, work0, work1)
    return _edit_pair_reduced(
        q, x, mode, kind, eps, del_costs, ins, insp, cutoff, work0, work1
    )


def _edit_batch_impl(q, xs, mode, kind, gap, eps, cutoffs, out):
    k = xs.shape[0]
    n = q.shape[0]
    m = xs.shape[1]
    ins = np.empty(m)
    insp = np.empty(m + 1)
    del_costs = np.empty(n)
    work0 = np.empty(m + 1)
    work1 = np.empty(m + 1)
    _fill_del(q, mode, kind, gap, del_costs)
    for p in range(k):
        _fill_ins(xs[p], mode, kind, gap, ins, insp)
        # the NumPy batch kernel always runs the reduced-coordinate sweep
        out[p] = _edit_pair_reduced(
            q, xs[p], mode, kind, eps, del_costs, ins, insp, cutoffs[p], work0, work1
        )


# --------------------------------------------------------------------- #
# Provider front-ends
# --------------------------------------------------------------------- #


def _contiguous(array: np.ndarray) -> np.ndarray:
    if array.flags.c_contiguous:
        return array
    return np.ascontiguousarray(array)


def _norm_band(band: Optional[int]) -> int:
    return -1 if band is None else int(band)


def _norm_cutoff(cutoff: Optional[float]) -> float:
    return _INF if cutoff is None else float(cutoff)


def _norm_cutoffs(cutoffs: Union[None, float, np.ndarray], k: int) -> np.ndarray:
    """Per-row thresholds as a ``(k,)`` float64 array (+inf = unbounded)."""
    if cutoffs is None:
        return np.full(k, _INF)
    if np.ndim(cutoffs) == 0:
        return np.full(k, float(cutoffs))
    vector = np.ascontiguousarray(np.asarray(cutoffs, dtype=np.float64))
    if vector.shape != (k,):
        raise ValueError(f"cutoff vector has shape {vector.shape}, expected ({k},)")
    return vector


class KernelProvider:
    """Base class: shared argument normalisation, per-provider raw calls."""

    name = "abstract"

    def warp_value(self, query, item, kind, use_max, band, cutoff) -> float:
        q = _contiguous(query)
        x = _contiguous(item)
        return float(
            self._warp_value(q, x, int(kind), bool(use_max), _norm_band(band), _norm_cutoff(cutoff))
        )

    def warp_batch(self, query, items, kind, use_max, band, cutoffs) -> np.ndarray:
        q = _contiguous(query)
        xs = _contiguous(items)
        out = np.empty(xs.shape[0], dtype=np.float64)
        self._warp_batch(
            q, xs, int(kind), bool(use_max), _norm_band(band),
            _norm_cutoffs(cutoffs, xs.shape[0]), out,
        )
        return out

    def edit_value(self, query, item, mode, kind, gap, eps, cutoff) -> float:
        q = _contiguous(query)
        x = _contiguous(item)
        g = _contiguous(np.asarray(gap, dtype=np.float64))
        return float(
            self._edit_value(q, x, int(mode), int(kind), g, float(eps), _norm_cutoff(cutoff))
        )

    def edit_batch(self, query, items, mode, kind, gap, eps, cutoffs) -> np.ndarray:
        q = _contiguous(query)
        xs = _contiguous(items)
        g = _contiguous(np.asarray(gap, dtype=np.float64))
        out = np.empty(xs.shape[0], dtype=np.float64)
        self._edit_batch(
            q, xs, int(mode), int(kind), g, float(eps),
            _norm_cutoffs(cutoffs, xs.shape[0]), out,
        )
        return out

    def warm(self) -> None:
        """Run every kernel once on tiny inputs (JIT warm-up / .so load)."""
        q = np.zeros((2, 1))
        x = np.ones((2, 1))
        xs = np.ones((1, 2, 1))
        gap = np.zeros(1)
        for use_max in (False, True):
            self.warp_value(q, x, 0, use_max, None, None)
            self.warp_batch(q, xs, 0, use_max, None, 1.5)
        for mode in (MODE_LEVENSHTEIN, MODE_ERP, MODE_EDR):
            self.edit_value(q, x, mode, 0, gap, 0.5, None)
            self.edit_batch(q, xs, mode, 0, gap, 0.5, None)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class PyLoopProvider(KernelProvider):
    """The shared algorithm spec, interpreted.  Slow; for tests/debugging."""

    name = "pyloop"
    _warp_value = staticmethod(_warp_value_impl)
    _warp_batch = staticmethod(_warp_batch_impl)
    _edit_value = staticmethod(_edit_value_impl)
    _edit_batch = staticmethod(_edit_batch_impl)


class NumbaProvider(KernelProvider):
    """The shared algorithm spec, ``@njit(cache=True)``-compiled."""

    name = "numba"

    def __init__(self) -> None:
        import numba

        jit = numba.njit(cache=True)
        ecost = jit(_ecost)
        gap_cost = jit(_gap_cost)
        edit_sub = jit(_edit_sub)
        # Re-bind the helper globals so the jitted pair kernels call the
        # jitted helpers; the module-level originals stay untouched.
        ns = {
            "np": np,
            "_INF": _INF,
            "_SMALL_TABLE_CELLS": _SMALL_TABLE_CELLS,
            "_ecost": ecost,
            "_gap_cost": gap_cost,
            "_edit_sub": edit_sub,
        }
        warp_sum = jit(_rebind(_warp_sum_pair, ns))
        warp_max = jit(_rebind(_warp_max_pair, ns))
        ns["_warp_sum_pair"] = warp_sum
        ns["_warp_max_pair"] = warp_max
        edit_small = jit(_rebind(_edit_pair_small, ns))
        edit_reduced = jit(_rebind(_edit_pair_reduced, ns))
        fill_ins = jit(_rebind(_fill_ins, ns))
        fill_del = jit(_rebind(_fill_del, ns))
        ns["_edit_pair_small"] = edit_small
        ns["_edit_pair_reduced"] = edit_reduced
        ns["_fill_ins"] = fill_ins
        ns["_fill_del"] = fill_del
        self._warp_value = jit(_rebind(_warp_value_impl, ns))
        self._warp_batch = jit(_rebind(_warp_batch_impl, ns))
        self._edit_value = jit(_rebind(_edit_value_impl, ns))
        self._edit_batch = jit(_rebind(_edit_batch_impl, ns))


def _rebind(func, namespace: dict):
    """Clone ``func`` with its globals replaced by ``namespace``.

    Numba resolves the helper calls inside each kernel through the
    function's ``__globals__``; rebinding lets the jitted kernels see the
    jitted helpers without mutating this module's namespace.
    """
    import types

    clone = types.FunctionType(
        func.__code__, namespace, func.__name__, func.__defaults__, func.__closure__
    )
    clone.__doc__ = func.__doc__
    return clone


class CcProvider(KernelProvider):
    """ctypes front-end over the shared library built from ``_kernels.c``."""

    name = "cc"

    def __init__(self, library_path: str) -> None:
        lib = ctypes.CDLL(library_path)
        i64, f64, ptr = ctypes.c_int64, ctypes.c_double, ctypes.c_void_p
        lib.repro_warp_value.restype = ctypes.c_int
        lib.repro_warp_value.argtypes = [ptr, i64, ptr, i64, i64, i64, i64, i64, f64, ptr]
        lib.repro_warp_batch.restype = ctypes.c_int
        lib.repro_warp_batch.argtypes = [
            ptr, i64, ptr, i64, i64, i64, i64, i64, i64, ptr, ptr,
        ]
        lib.repro_edit_value.restype = ctypes.c_int
        lib.repro_edit_value.argtypes = [
            ptr, i64, ptr, i64, i64, i64, i64, ptr, f64, f64, ptr,
        ]
        lib.repro_edit_batch.restype = ctypes.c_int
        lib.repro_edit_batch.argtypes = [
            ptr, i64, ptr, i64, i64, i64, i64, i64, ptr, f64, ptr, ptr,
        ]
        self._lib = lib
        self.library_path = library_path

    @staticmethod
    def _check(status: int) -> None:
        if status != 0:
            raise MemoryError("compiled kernel scratch allocation failed")

    def _warp_value(self, q, x, kind, use_max, band, cutoff):
        out = ctypes.c_double()
        self._check(
            self._lib.repro_warp_value(
                q.ctypes.data, q.shape[0], x.ctypes.data, x.shape[0], q.shape[1],
                kind, int(use_max), band, cutoff, ctypes.byref(out),
            )
        )
        return out.value

    def _warp_batch(self, q, xs, kind, use_max, band, cutoffs, out):
        self._check(
            self._lib.repro_warp_batch(
                q.ctypes.data, q.shape[0], xs.ctypes.data, xs.shape[0], xs.shape[1],
                xs.shape[2], kind, int(use_max), band, cutoffs.ctypes.data,
                out.ctypes.data,
            )
        )

    def _edit_value(self, q, x, mode, kind, gap, eps, cutoff):
        out = ctypes.c_double()
        self._check(
            self._lib.repro_edit_value(
                q.ctypes.data, q.shape[0], x.ctypes.data, x.shape[0], q.shape[1],
                mode, kind, gap.ctypes.data, eps, cutoff, ctypes.byref(out),
            )
        )
        return out.value

    def _edit_batch(self, q, xs, mode, kind, gap, eps, cutoffs, out):
        self._check(
            self._lib.repro_edit_batch(
                q.ctypes.data, q.shape[0], xs.ctypes.data, xs.shape[0], xs.shape[1],
                xs.shape[2], mode, kind, gap.ctypes.data, eps, cutoffs.ctypes.data,
                out.ctypes.data,
            )
        )


# --------------------------------------------------------------------- #
# C library build + cache
# --------------------------------------------------------------------- #

_C_SOURCE = Path(__file__).with_name("_kernels.c")


def _kernel_cache_dir() -> Path:
    configured = os.environ.get("REPRO_KERNEL_CACHE")
    if configured:
        return Path(configured)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro-kernels"


def find_c_compiler() -> Optional[str]:
    """The first usable C compiler (``$CC``, then cc/gcc/clang on PATH)."""
    configured = os.environ.get("CC")
    if configured and shutil.which(configured):
        return configured
    for candidate in ("cc", "gcc", "clang"):
        path = shutil.which(candidate)
        if path:
            return path
    return None


def build_c_library() -> Optional[str]:
    """Compile ``_kernels.c`` into the cache directory; return the .so path.

    The library file name embeds a content hash of the source, so stale
    caches are never loaded and concurrent builders race benignly (compile
    to a temporary name, ``os.replace`` into place).  Returns ``None`` when
    no compiler is available or the build fails -- callers treat that as
    "provider unavailable", never as an error.
    """
    if not _C_SOURCE.is_file():
        return None
    source = _C_SOURCE.read_bytes()
    digest = hashlib.sha256(source).hexdigest()[:16]
    cache_dir = _kernel_cache_dir()
    library = cache_dir / f"repro-kernels-{digest}.so"
    if library.is_file():
        return str(library)
    compiler = find_c_compiler()
    if compiler is None:
        return None
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(cache_dir))
        os.close(fd)
        result = subprocess.run(
            [compiler, "-O3", "-fPIC", "-shared", "-o", tmp, str(_C_SOURCE), "-lm"],
            capture_output=True,
            timeout=120,
        )
        if result.returncode != 0:
            os.unlink(tmp)
            return None
        os.replace(tmp, library)
        return str(library)
    except (OSError, subprocess.SubprocessError):
        return None


def make_provider(name: str) -> KernelProvider:
    """Instantiate one provider by name; raises on unavailability."""
    if name == "pyloop":
        return PyLoopProvider()
    if name == "numba":
        return NumbaProvider()  # raises ImportError when Numba is absent
    if name == "cc":
        library = build_c_library()
        if library is None:
            raise RuntimeError("no C compiler available (or the build failed)")
        return CcProvider(library)
    raise ValueError(f"unknown kernel provider {name!r}")
