"""Recorded distance evaluation for parallel work units.

The parallel executors (:mod:`repro.core.executor`) run index probes and
chain verifications concurrently, but the framework's contract is strict:
whatever the execution substrate, a query must return *byte-identical
results and identical work counters* to the serial path.  Results are easy
-- every distance value is a pure function of its operands -- but the
counters are not: whether a distance request is a *fresh computation* or a
*cache hit* depends on the order in which earlier requests populated the
shared :class:`~repro.distances.cache.DistanceCache`, and concurrent units
racing on one cache would make that order (and therefore the accounting)
nondeterministic.

The resolution rests on one observation: the *request stream* of a work
unit -- which pairs it measures, with which cutoffs, in which order -- is a
pure function of the distance values, never of the cache state (a hit and a
fresh computation return the same number).  So each unit runs against a
**private overlay** over a read-only snapshot of the shared cache and keeps
a **log** of its requests; when the executor is done, the logs are replayed
serially, in unit order, against the real cache and counters.  The replay
performs no kernels -- every value is in the log -- it only re-derives the
hit/fresh/prefilter classification each request *would* have received under
serial execution, and applies the stores in serial order (which also
reproduces the serial cache content and eviction order).

Two recording front-ends exist, matching the two distance entry points of
the query pipeline:

* :class:`RecordingCounting` duck-types the index layer's
  :class:`~repro.indexing.stats.CountingDistance` (``__call__`` /
  ``bounded`` / ``batch``) for probe work units;
* :class:`RecordingVerifyCache` duck-types :class:`DistanceCache` for the
  verification step's ``_measure`` helper.

Logs come in two formats, selected per recorder (``log_format``; the
process default is ``REPRO_LOG_FORMAT``, falling back to ``columnar``):

* ``"columnar"`` (default): preallocated NumPy columns -- request-kind
  codes, pair references, a ``(value, cutoff, bound)`` float block --
  appended with array writes and replayed in bulk.  The replay converts
  whole columns to Python scalars once, classifies under a single cache
  lock (:meth:`DistanceCache.replay_view`), and applies counter tallies in
  one batched update per log instead of three method calls per request.
  Batched probes log one O(1) descriptor per batch, not one record per
  window.
* ``"object"``: the original one-Python-tuple-per-request log, replayed by
  :func:`replay_probe_log` / :func:`replay_verify_log` one request at a
  time through the public cache methods.  Kept as the executable reference
  semantics -- the equivalence suite drives random request streams through
  both formats and asserts identical counters, cache content, and eviction
  order.

Both replays re-derive the same classification; the columnar path just
pays far less bookkeeping per request, which is what lets the parallel
executors keep their byte-identical promise without losing their speedup
to logging overhead.

One documented inexactness remains: if the shared cache evicts entries
*mid-stage* (capacity reached while a query is executing), a unit may have
answered a request from an entry the serial run would already have evicted.
The replay then counts that request as a fresh computation with the
recorded value -- results stay exact, the counters may differ by the
handful of requests involved.  The matcher-sized default capacities make
this unreachable in practice.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import List, Optional, Sequence as TypingSequence, Tuple

import numpy as np

from repro.distances.base import (
    Distance,
    as_array,
    group_batch_operands,
    validate_group_shape,
)
from repro.distances.cache import DistanceCache
from repro.distances.lower_bounds import combined_batch_bound, combined_bound
from repro.sequences.packed import resolve_remote_tensor
from repro.sequences.sequence import Sequence

_INF = float("inf")
_NAN = float("nan")

#: Log record tags of the object format (first tuple element of a record).
_CALL = "call"
_BOUNDED = "bounded"
_BATCH = "batch"

#: Request-kind bit flags of the columnar format.
_K_CACHEABLE = 1  # pair is a valid cache key
_K_BOUNDED = 2  # bounded request (cutoff column is set); unset: plain call
_K_HAS_BOUND = 4  # the prefilter evaluated a lower bound (bound column set)
_K_BATCH = 8  # placeholder row for the next entry of ``batches``

#: Supported request-log formats.
LOG_FORMATS = ("columnar", "object")


def default_log_format() -> str:
    """The process-wide log format: ``REPRO_LOG_FORMAT`` or ``columnar``."""
    fmt = os.environ.get("REPRO_LOG_FORMAT", "columnar").strip().lower()
    if fmt not in LOG_FORMATS:
        raise ValueError(
            f"REPRO_LOG_FORMAT must be one of {', '.join(LOG_FORMATS)}; got {fmt!r}"
        )
    return fmt


def _resolve_log_format(log_format: Optional[str]) -> str:
    if log_format is None:
        return default_log_format()
    if log_format not in LOG_FORMATS:
        raise ValueError(f"log_format must be one of {', '.join(LOG_FORMATS)}; got {log_format!r}")
    return log_format


class _Overlay:
    """A unit-private write layer over a read-only base cache snapshot.

    ``lookup`` consults the overlay first (it holds the unit's most recent
    knowledge) and falls back to :meth:`DistanceCache.peek` on the base,
    which never mutates the base statistics.  ``store`` only ever writes the
    overlay.  Entry semantics (exact values vs ``distance > cutoff`` lower
    bounds, no downgrades) mirror :class:`DistanceCache`.
    """

    __slots__ = ("base", "entries")

    def __init__(self, base: Optional[DistanceCache]) -> None:
        self.base = base
        self.entries: dict = {}

    def lookup(
        self, first: Sequence, second: Sequence, cutoff: Optional[float] = None
    ) -> Optional[float]:
        entry = self.entries.get((first, second))
        if entry is not None:
            value, exact = entry
            if exact:
                return value
            if cutoff is not None and value >= cutoff:
                return _INF
        if self.base is not None:
            return self.base.peek(first, second, cutoff=cutoff)
        return None

    def store(
        self, first: Sequence, second: Sequence, value: float, cutoff: Optional[float] = None
    ) -> None:
        key = (first, second)
        if cutoff is None or value <= cutoff:
            self.entries[key] = (value, True)
            return
        existing = self.entries.get(key)
        if existing is not None and (existing[1] or existing[0] >= cutoff):
            return
        self.entries[key] = (float(cutoff), False)


class _ProbeColumns:
    """Preallocated columnar storage for a probe unit's request stream.

    One row per scalar request: a kind byte, the two pair references, and a
    ``(value, cutoff, bound)`` float triple (``nan`` where a field does not
    apply -- the kind flags, not the ``nan``, decide what is meaningful).
    Batched probes append one ``_K_BATCH`` placeholder row plus an O(1)
    descriptor on :attr:`batches`; the replay walks rows in order and pulls
    the next descriptor whenever it meets a placeholder, so the serial
    request order is preserved exactly.
    """

    __slots__ = ("kinds", "pairs", "floats", "size", "batches")

    _INITIAL = 128

    def __init__(self) -> None:
        self.kinds = np.zeros(self._INITIAL, dtype=np.uint8)
        self.pairs = np.empty((self._INITIAL, 2), dtype=object)
        self.floats = np.zeros((self._INITIAL, 3), dtype=np.float64)
        self.size = 0
        self.batches: List[tuple] = []

    def _grow(self) -> None:
        capacity = len(self.kinds) * 2
        size = self.size
        kinds = np.zeros(capacity, dtype=np.uint8)
        kinds[:size] = self.kinds[:size]
        self.kinds = kinds
        pairs = np.empty((capacity, 2), dtype=object)
        pairs[:size] = self.pairs[:size]
        self.pairs = pairs
        floats = np.zeros((capacity, 3), dtype=np.float64)
        floats[:size] = self.floats[:size]
        self.floats = floats

    def append(
        self, kind: int, first, second, value: float, cutoff: float, bound: float
    ) -> None:
        row = self.size
        if row == len(self.kinds):
            self._grow()
        self.kinds[row] = kind
        self.pairs[row, 0] = first
        self.pairs[row, 1] = second
        floats = self.floats[row]
        floats[0] = value
        floats[1] = cutoff
        floats[2] = bound
        self.size = row + 1

    def append_batch(self, record: tuple) -> None:
        row = self.size
        if row == len(self.kinds):
            self._grow()
        self.kinds[row] = _K_BATCH
        self.size = row + 1
        self.batches.append(record)


class _VerifyColumns:
    """Columnar storage for a verification unit's request stream.

    One row per request: a flag byte (bit 0: a cutoff applies), the pair
    references, and a ``(cutoff, value)`` float pair.  Hit/store rows are
    not distinguished -- the replay re-derives the classification against
    the real cache either way.
    """

    __slots__ = ("flags", "pairs", "floats", "size")

    _INITIAL = 128

    def __init__(self) -> None:
        self.flags = np.zeros(self._INITIAL, dtype=np.uint8)
        self.pairs = np.empty((self._INITIAL, 2), dtype=object)
        self.floats = np.zeros((self._INITIAL, 2), dtype=np.float64)
        self.size = 0

    def _grow(self) -> None:
        capacity = len(self.flags) * 2
        size = self.size
        flags = np.zeros(capacity, dtype=np.uint8)
        flags[:size] = self.flags[:size]
        self.flags = flags
        pairs = np.empty((capacity, 2), dtype=object)
        pairs[:size] = self.pairs[:size]
        self.pairs = pairs
        floats = np.zeros((capacity, 2), dtype=np.float64)
        floats[:size] = self.floats[:size]
        self.floats = floats

    def append(self, first, second, cutoff: Optional[float], value: float) -> None:
        row = self.size
        if row == len(self.flags):
            self._grow()
        floats = self.floats[row]
        if cutoff is None:
            floats[0] = _NAN
        else:
            self.flags[row] = 1
            floats[0] = cutoff
        floats[1] = value
        self.pairs[row, 0] = first
        self.pairs[row, 1] = second
        self.size = row + 1


class _NullReplayView:
    """Replay view over "no cache": every lookup misses, stores are dropped.

    Lets the replay loops stay branch-free on ``cache is None`` -- the
    counter outcomes (everything classifies as fresh) match the object-log
    replay's explicit ``cache is None`` handling.
    """

    __slots__ = ()

    def lookup(self, first, second, cutoff):
        return None

    def store(self, first, second, value, cutoff):
        return None


_NULL_VIEW = _NullReplayView()


@contextmanager
def _replay_view(cache: Optional[DistanceCache]):
    if cache is None:
        yield _NULL_VIEW
    else:
        with cache.replay_view() as view:
            yield view


class RecordingCounting:
    """A per-unit stand-in for :class:`~repro.indexing.stats.CountingDistance`.

    Index ``_range_search`` implementations receive one of these when they
    execute inside a parallel work unit: same call surface (``__call__``,
    ``bounded``, ``batch``, plus the ``inner``/``name``/``is_metric``
    attributes the indexes read), but all cache traffic goes through a
    private overlay and every request is logged for the serial replay.

    The prefilter bounds are evaluated exactly where the serial
    ``CountingDistance`` would evaluate them -- on cache misses only -- and
    their outcomes ride along in the log so the replay can reconstruct the
    prefilter tallies without recomputing anything.

    ``log_format`` picks the request-log encoding (see the module
    docstring); :meth:`replay_into` replays whichever log was kept.
    """

    def __init__(
        self,
        inner: Distance,
        base: Optional[DistanceCache],
        prefilter: bool = False,
        log_format: Optional[str] = None,
    ) -> None:
        self.inner = inner
        self.prefilter = bool(prefilter)
        self._overlay = _Overlay(base)
        self.log_format = _resolve_log_format(log_format)
        if self.log_format == "columnar":
            self._columns: Optional[_ProbeColumns] = _ProbeColumns()
            #: Object-format request log (``None`` under the columnar format).
            self.log: Optional[List[tuple]] = None
        else:
            self._columns = None
            self.log = []
        #: Columnar batch stores not yet applied to the overlay, as
        #: ``(query, items, cutoff, values, group_indexes)``.  A unit's
        #: *last* batch never needs its overlay stores (nothing reads them
        #: before the unit ends; the replay works from the columns), so the
        #: columnar finish defers materialization until the next overlay
        #: read (:meth:`_flush_overlay`).  Every read path flushes first,
        #: so the overlay state observable at any read is identical to
        #: eager stores.
        self._unapplied: List[tuple] = []

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def is_metric(self) -> bool:
        return self.inner.is_metric

    @property
    def cache(self) -> Optional[DistanceCache]:
        """The base cache the overlay snapshots (read-only during the unit)."""
        return self._overlay.base

    def __call__(self, first, second) -> float:
        columns = self._columns
        if not DistanceCache.cacheable(first, second):
            value = self.inner(first, second)
            if columns is not None:
                columns.append(0, first, second, value, _NAN, _NAN)
            else:
                self.log.append((_CALL, first, second, value, False, False))
            return value
        if self._unapplied:
            self._flush_overlay()
        cached = self._overlay.lookup(first, second)
        if cached is not None:
            if columns is not None:
                columns.append(_K_CACHEABLE, first, second, cached, _NAN, _NAN)
            else:
                self.log.append((_CALL, first, second, cached, True, True))
            return cached
        value = self.inner(first, second)
        self._overlay.store(first, second, value)
        if columns is not None:
            columns.append(_K_CACHEABLE, first, second, value, _NAN, _NAN)
        else:
            self.log.append((_CALL, first, second, value, False, True))
        return value

    def bounded(self, first, second, cutoff: float) -> float:
        columns = self._columns
        cacheable = DistanceCache.cacheable(first, second)
        kind = _K_BOUNDED | (_K_CACHEABLE if cacheable else 0)
        if cacheable:
            if self._unapplied:
                self._flush_overlay()
            cached = self._overlay.lookup(first, second, cutoff=cutoff)
            if cached is not None:
                if columns is not None:
                    columns.append(kind, first, second, cached, cutoff, _NAN)
                else:
                    self.log.append((_BOUNDED, first, second, cutoff, cached, True, True, None))
                return cached
        bound = None
        if self.prefilter:
            bound = combined_bound(self.inner, first, second)
            kind |= _K_HAS_BOUND
            if bound > cutoff:
                if cacheable:
                    self._overlay.store(first, second, _INF, cutoff=cutoff)
                if columns is not None:
                    columns.append(kind, first, second, _INF, cutoff, bound)
                else:
                    self.log.append(
                        (_BOUNDED, first, second, cutoff, _INF, False, cacheable, bound)
                    )
                return _INF
        value = self.inner.bounded(first, second, cutoff)
        if cacheable:
            self._overlay.store(first, second, value, cutoff=cutoff)
        if columns is not None:
            columns.append(kind, first, second, value, cutoff, _NAN if bound is None else bound)
        else:
            self.log.append((_BOUNDED, first, second, cutoff, value, False, cacheable, bound))
        return value

    def batch(
        self,
        query,
        items: TypingSequence,
        cutoff: Optional[float] = None,
        packed=None,
    ) -> np.ndarray:
        """Recorded analogue of :meth:`CountingDistance.batch`.

        Structured as prepare / compute / finish so a process-pool work
        unit can run the pure compute phase in a child process (see
        :meth:`batch_prepare`); calling :meth:`batch` runs all three phases
        in this process, which is what thread-pool units do.
        """
        context = self.batch_prepare(query, items, cutoff, packed=packed)
        computed = compute_batch_groups(context.payload())
        return self.batch_finish(context, computed)

    def batch_prepare(self, query, items, cutoff, packed=None, remote=False) -> "_BatchContext":
        """Cache lookups + shape grouping; returns the pure-compute payload.

        ``packed`` optionally serves the operand tensors from a packed
        window layout (see :meth:`CountingDistance.batch`); the payload the
        remote phase receives is value-identical either way.  With
        ``remote`` set (``"auto"`` or ``"shared"``) a packed layout may
        hand out shared-memory row references instead of materialized
        tensors (see :meth:`~repro.sequences.packed.StoreGather.remote_payload`),
        which is what keeps process-pool chunk payloads O(metadata) instead
        of O(windows); ``"shared"`` makes an unexportable store an error
        rather than a silent pickle fallback.
        """
        values = np.empty(len(items), dtype=np.float64)
        hits = [False] * len(items)
        query_array = as_array(query)
        pending: List[int] = []
        # The overlay/base lookups are inlined (the classification loop is
        # the hottest record-side path): overlay entry first, base-cache
        # entry second, each with the full exact/bound-entry semantics of
        # ``_Overlay.lookup``.  The base read is the same lock-free
        # ``dict.get`` that ``DistanceCache.peek`` documents.
        if isinstance(query, Sequence):
            if self._unapplied:
                self._flush_overlay()
            append = pending.append
            overlay_entries = self._overlay.entries
            overlay_get = overlay_entries.get
            base = self._overlay.base
            # An empty base table cannot answer any probe, so skip the
            # per-item chained get.  The emptiness check is the same
            # benign race as the lock-free reads themselves: a store that
            # lands mid-batch is equivalent to every chained get missing.
            base_get = (
                base._entries.get if base is not None and base._entries else None
            )
            if not overlay_entries and base_get is None:
                # Cold unit (nothing recorded yet, base empty): every
                # lookup would miss, so the classification is just "all
                # pending" -- the common first-probe case.
                pending = list(range(len(items)))
                return self._prepare_groups(
                    query, items, cutoff, values, hits, query_array, pending, packed, remote
                )
            has_cutoff = cutoff is not None
            for index, item in enumerate(items):
                if isinstance(item, Sequence):
                    key = (query, item)
                    cached = None
                    entry = overlay_get(key)
                    if entry is not None:
                        value, exact = entry
                        if exact:
                            cached = value
                        elif has_cutoff and value >= cutoff:
                            cached = _INF
                    if cached is None and base_get is not None:
                        entry = base_get(key)
                        if entry is not None:
                            value, exact = entry
                            if exact:
                                cached = value
                            elif has_cutoff and value >= cutoff:
                                cached = _INF
                    if cached is not None:
                        values[index] = cached
                        hits[index] = True
                        continue
                append(index)
        else:
            pending = list(range(len(items)))
        return self._prepare_groups(
            query, items, cutoff, values, hits, query_array, pending, packed, remote
        )

    def _prepare_groups(
        self, query, items, cutoff, values, hits, query_array, pending, packed, remote
    ) -> "_BatchContext":
        """Shape-group the pending items and assemble the batch context."""
        grouped: List[Tuple[List[int], object]] = []
        if packed is None:
            arrays, groups = group_batch_operands(self.inner, query_array, items, pending)
            for indexes in groups.values():
                grouped.append((indexes, np.stack([arrays[i] for i in indexes])))
        else:
            group_positions = getattr(packed, "group_positions", None)
            if group_positions is not None:
                shape_groups = group_positions(pending)
            else:
                groups = {}
                for index in pending:
                    groups.setdefault(packed.shape_of(index), []).append(index)
                shape_groups = list(groups.items())
            if remote:
                require = remote == "shared"

                def gather(indexes, _packed=packed, _require=require):
                    return _packed.remote_payload(indexes, require=_require)
            else:
                gather = packed.gather
            for shape, indexes in shape_groups:
                validate_group_shape(self.inner, query_array, shape)
                grouped.append((indexes, gather(indexes)))
        return _BatchContext(self, query, items, cutoff, values, hits, query_array, grouped)

    def batch_finish(
        self, context: "_BatchContext", computed: List[Tuple[np.ndarray, Optional[np.ndarray]]]
    ) -> np.ndarray:
        """Fold the computed group values/bounds back in; log the batch."""
        if self._columns is not None:
            return self._batch_finish_columnar(context, computed)
        values, hits = context.values, context.hits
        bounds: List[Optional[float]] = [None] * len(context.items)
        for (indexes, _tensor), (group_values, group_bounds) in zip(context.grouped, computed):
            for position, index in enumerate(indexes):
                value = float(group_values[position])
                values[index] = value
                if group_bounds is not None:
                    bounds[index] = float(group_bounds[position])
                if DistanceCache.cacheable(context.query, context.items[index]):
                    self._overlay.store(
                        context.query, context.items[index], value, cutoff=context.cutoff
                    )
        self.log.append(
            (
                _BATCH,
                context.query,
                list(context.items),
                context.cutoff,
                values.copy(),
                hits,
                bounds,
            )
        )
        return values

    def _batch_finish_columnar(self, context, computed) -> np.ndarray:
        """Columnar finish: vectorized scatter, one O(1) batch descriptor.

        The descriptor keeps the result array *by reference* (callers treat
        batch results as read-only, which every index does); the per-item
        Python work of the object path -- float boxing, per-item bound
        list -- is replaced by array scatters.
        """
        values = context.values
        items = context.items
        query = context.query
        cutoff = context.cutoff
        bounds_array: Optional[np.ndarray] = None
        bound_known: Optional[np.ndarray] = None
        for (indexes, _tensor), (group_values, group_bounds) in zip(context.grouped, computed):
            index_array = np.asarray(indexes, dtype=np.intp)
            values[index_array] = group_values
            if group_bounds is not None:
                if bounds_array is None:
                    bounds_array = np.zeros(len(items), dtype=np.float64)
                    bound_known = np.zeros(len(items), dtype=bool)
                bounds_array[index_array] = group_bounds
                bound_known[index_array] = True
        if isinstance(query, Sequence):
            # Defer the per-item overlay stores (see ``_unapplied``): the
            # group index lists are all the flush needs, and for the last
            # batch of the unit the stores never happen at all.
            self._unapplied.append(
                (query, items, cutoff, values, [indexes for indexes, _t in context.grouped])
            )
        self._columns.append_batch((query, items, cutoff, values, bounds_array, bound_known))
        return values

    def _flush_overlay(self) -> None:
        """Apply deferred columnar batch stores to the overlay, in order.

        ``_Overlay.store`` inlined against the overlay dict (exact entry
        vs bound entry, the no-downgrade rule; the overlay never evicts);
        the store order -- batches in finish order, groups in order,
        positions in order -- is exactly the eager order.
        """
        unapplied = self._unapplied
        self._unapplied = []
        entries = self._overlay.entries
        get = entries.get
        for query, items, cutoff, values, groups in unapplied:
            has_cutoff = cutoff is not None
            bound_entry = (float(cutoff), False) if has_cutoff else None
            value_list = values.tolist()
            for indexes in groups:
                for index in indexes:
                    item = items[index]
                    if isinstance(item, Sequence):
                        value = value_list[index]
                        key = (query, item)
                        if not has_cutoff or value <= cutoff:
                            entries[key] = (value, True)
                        else:
                            existing = get(key)
                            if existing is not None and (
                                existing[1] or existing[0] >= cutoff
                            ):
                                continue
                            entries[key] = bound_entry

    def replay_into(self, counting) -> None:
        """Replay this unit's log into the live ``CountingDistance``."""
        if self._columns is not None:
            _replay_probe_columns(self._columns, counting)
        else:
            replay_probe_log(self.log, counting)


class _BatchContext:
    """State carried between :meth:`RecordingCounting.batch_prepare` and finish."""

    __slots__ = ("owner", "query", "items", "cutoff", "values", "hits", "query_array", "grouped")

    def __init__(self, owner, query, items, cutoff, values, hits, query_array, grouped) -> None:
        self.owner = owner
        self.query = query
        self.items = list(items)
        self.cutoff = cutoff
        self.values = values
        self.hits = hits
        self.query_array = query_array
        self.grouped = grouped

    def payload(self) -> tuple:
        """The picklable pure-compute input for :func:`compute_batch_groups`."""
        return (
            self.owner.inner,
            self.query_array,
            [tensor for _indexes, tensor in self.grouped],
            self.cutoff,
            self.owner.prefilter,
        )


def compute_batch_groups(
    payload: tuple,
) -> List[Tuple[np.ndarray, Optional[np.ndarray]]]:
    """Pure kernel phase of a batched probe: bounds + grouped DP sweeps.

    ``payload`` is ``(distance, query_array, tensors, cutoff, prefilter)``
    -- everything picklable, no cache, no counters -- so this function can
    run in a process-pool child exactly as it runs inline.  A "tensor" is
    either a materialized ``(rows, length, dim)`` array or a shared-memory
    row reference (:class:`~repro.sequences.packed.SharedRows`), resolved
    here so the child attaches to the exported segment instead of
    unpickling the windows.  Returns one ``(values, bounds)`` pair per
    tensor; ``bounds`` is ``None`` when the prefilter did not run.  Pairs
    pruned by a bound get ``inf`` values, the same early-abandon contract
    as :meth:`Distance.batch`.
    """
    distance, query_array, tensors, cutoff, prefilter = payload
    results: List[Tuple[np.ndarray, Optional[np.ndarray]]] = []
    for tensor in tensors:
        tensor = resolve_remote_tensor(tensor)
        bounds: Optional[np.ndarray] = None
        values = np.empty(tensor.shape[0], dtype=np.float64)
        survivors = np.arange(tensor.shape[0])
        if prefilter and cutoff is not None:
            bounds = combined_batch_bound(distance, query_array, tensor)
            pruned_mask = bounds > cutoff
            values[pruned_mask] = _INF
            survivors = np.nonzero(~pruned_mask)[0]
        if len(survivors):
            fresh = distance.compute_batch(
                query_array,
                tensor[survivors],
                None if cutoff is None else float(cutoff),
            )
            values[survivors] = fresh
        results.append((values, bounds))
    return results


class RecordingVerifyCache:
    """A per-unit stand-in for the cache handed to chain verification.

    Verification's ``_measure`` helper drives the cache through exactly two
    operations -- ``lookup(first, second, cutoff)`` then, on a miss,
    ``store(first, second, value, cutoff)`` -- and counts hits and fresh
    kernels itself.  This duck-type routes both through the unit overlay
    and logs the requests for :meth:`replay_into` (columnar format) or
    :func:`replay_verify_log` (object format).
    """

    def __init__(self, base: Optional[DistanceCache], log_format: Optional[str] = None) -> None:
        self._overlay = _Overlay(base)
        self.log_format = _resolve_log_format(log_format)
        if self.log_format == "columnar":
            self._columns: Optional[_VerifyColumns] = _VerifyColumns()
            self.log: Optional[List[tuple]] = None
        else:
            self._columns = None
            self.log = []

    def lookup(
        self, first: Sequence, second: Sequence, cutoff: Optional[float] = None
    ) -> Optional[float]:
        value = self._overlay.lookup(first, second, cutoff=cutoff)
        if value is not None:
            if self._columns is not None:
                self._columns.append(first, second, cutoff, value)
            else:
                self.log.append((first, second, cutoff, value, True))
        return value

    def store(
        self, first: Sequence, second: Sequence, value: float, cutoff: Optional[float] = None
    ) -> None:
        self._overlay.store(first, second, value, cutoff=cutoff)
        if self._columns is not None:
            self._columns.append(first, second, cutoff, value)
        else:
            self.log.append((first, second, cutoff, value, False))

    def replay_into(self, cache: Optional[DistanceCache], counter) -> None:
        """Replay this unit's log into the real cache + verification counter."""
        if self._columns is not None:
            _replay_verify_columns(self._columns, cache, counter)
        else:
            replay_verify_log(self.log, cache, counter)


def _replay_probe_columns(columns: _ProbeColumns, counting) -> None:
    """Columnar analogue of :func:`replay_probe_log`.

    Classification is identical; the bookkeeping is not: whole columns are
    converted to Python scalars up front, all cache traffic of the log runs
    under one lock acquisition (:meth:`DistanceCache.replay_view`), and the
    counter receives one batched update per tally instead of a method call
    per request.
    """
    cache, counter, prefilter = counting.cache, counting.counter, counting.prefilter
    size = columns.size
    fresh = hits = pre_evaluated = pre_pruned = 0
    with _replay_view(cache) as view:
        kinds = columns.kinds[:size].tolist()
        pair_rows = columns.pairs[:size].tolist()
        float_rows = columns.floats[:size].tolist()
        batches = iter(columns.batches)
        # The row loop runs once per recorded request, so the view's
        # ``lookup``/``store`` are inlined against its raw entry dict
        # (identical semantics: bound entries, the no-downgrade rule,
        # insertion-order eviction; a no-downgrade store skips eviction).
        # The view's own hit/miss tallies are folded in once at the end.
        # ``entries is None`` is the null view of a cache-less replay:
        # every lookup misses and every store is a no-op, so both are
        # skipped outright.  On ``_K_BOUNDED`` rows the cutoff column is
        # always a real float, which makes ``cutoff is not None`` checks
        # unnecessary.
        entries = getattr(view, "entries", None)
        row_hits = row_misses = 0
        if entries is not None:
            get = entries.get
            max_entries = view.max_entries
        for row in range(size):
            kind = kinds[row]
            if kind & _K_BATCH:
                tallies = _replay_batch_record(next(batches), view, prefilter)
                fresh += tallies[0]
                hits += tallies[1]
                pre_evaluated += tallies[2]
                pre_pruned += tallies[3]
                continue
            first, second = pair_rows[row]
            value, cutoff, bound = float_rows[row]
            if kind & _K_BOUNDED:
                if kind & _K_CACHEABLE and entries is not None:
                    entry = get((first, second))
                    if entry is not None:
                        entry_value, exact = entry
                        if exact or entry_value >= cutoff:
                            row_hits += 1
                            hits += 1
                            continue
                    row_misses += 1
                if prefilter and kind & _K_HAS_BOUND:
                    pre_evaluated += 1
                    if bound > cutoff:
                        pre_pruned += 1
                        # store(first, second, inf, cutoff): always the
                        # bound-entry branch of the store rule.
                        if kind & _K_CACHEABLE and entries is not None:
                            key = (first, second)
                            existing = get(key)
                            if existing is None or not (
                                existing[1] or existing[0] >= cutoff
                            ):
                                entries[key] = (cutoff, False)
                                if max_entries is not None:
                                    while len(entries) > max_entries:
                                        entries.pop(next(iter(entries)))
                        continue
                fresh += 1
                if kind & _K_CACHEABLE and entries is not None:
                    key = (first, second)
                    if value <= cutoff:
                        entries[key] = (value, True)
                    else:
                        existing = get(key)
                        if existing is not None and (
                            existing[1] or existing[0] >= cutoff
                        ):
                            # No-downgrade early return: skips eviction.
                            continue
                        entries[key] = (cutoff, False)
                    if max_entries is not None:
                        while len(entries) > max_entries:
                            entries.pop(next(iter(entries)))
            elif kind & _K_CACHEABLE:
                if entries is not None:
                    key = (first, second)
                    entry = get(key)
                    # lookup with no cutoff: only exact entries can hit.
                    if entry is not None and entry[1]:
                        row_hits += 1
                        hits += 1
                        continue
                    row_misses += 1
                    fresh += 1
                    # store with no cutoff: always an exact entry.
                    entries[key] = (value, True)
                    if max_entries is not None:
                        while len(entries) > max_entries:
                            entries.pop(next(iter(entries)))
                else:
                    fresh += 1
            else:
                fresh += 1
        if entries is not None:
            view.hits += row_hits
            view.misses += row_misses
    if fresh:
        counter.increment(fresh)
    if hits:
        counter.record_cache_hit(hits)
    if pre_evaluated:
        counter.record_prefilter(pre_evaluated, pre_pruned)


def _replay_batch_record(record: tuple, view, prefilter: bool) -> Tuple[int, int, int, int]:
    """Replay one batch descriptor; returns (fresh, hits, evaluated, pruned).

    Two phases, mirroring both the serial ``CountingDistance.batch`` and
    the object-log replay: first every item is classified hit/pending
    against the real cache, then the pending items apply their prefilter
    outcomes and stores -- the same request order, so the same eviction
    order.
    """
    query, items, cutoff, values, bounds_array, bound_known = record
    fresh = hits = pre_evaluated = pre_pruned = 0
    query_cacheable = isinstance(query, Sequence)
    # The classification loop runs once per window of every batched probe
    # -- the single hottest replay path -- so the view's ``lookup`` is
    # inlined against its raw entry dict (semantics identical; the view's
    # own hit/miss tallies are updated in bulk below).  A null view (no
    # cache) or an uncacheable query classifies everything as pending
    # without any lookups, exactly as per-item ``lookup`` calls would.
    entries = getattr(view, "entries", None)
    if entries is None or not query_cacheable:
        pending = list(range(len(items)))
        pending_keys: Optional[List[Optional[tuple]]] = None
    else:
        pending = []
        # The key tuples survive into the store phase (``None`` marks an
        # uncacheable item), so each pending item is keyed exactly once.
        pending_keys = []
        append = pending.append
        key_append = pending_keys.append
        get = entries.get
        misses = 0
        for index, item in enumerate(items):
            if isinstance(item, Sequence):
                key = (query, item)
                entry = get(key)
                if entry is not None:
                    entry_value, exact = entry
                    if exact or (cutoff is not None and entry_value >= cutoff):
                        hits += 1
                        continue
                misses += 1
                append(index)
                key_append(key)
            else:
                append(index)
                key_append(None)
        view.hits += hits
        view.misses += misses
    if pending:
        value_list = values.tolist()
        use_prefilter = prefilter and cutoff is not None and bounds_array is not None
        if use_prefilter:
            # One classification code per item -- 0: no bound evaluated,
            # 1: evaluated but not pruned, 2: evaluated and pruned --
            # built with two vectorized ops instead of two list reads and
            # a float compare per item.
            code_list = (
                bound_known.astype(np.int8) + (bound_known & (bounds_array > cutoff))
            ).tolist()
        if pending_keys is None:
            # Null view or uncacheable query: no lookups hit and every
            # store is a no-op, so only the tallies remain.
            if use_prefilter:
                for index in pending:
                    code = code_list[index]
                    if code:
                        pre_evaluated += 1
                        if code == 2:
                            pre_pruned += 1
                            continue
                    fresh += 1
            else:
                fresh += len(pending)
        else:
            # ``store`` inlined against the raw dict: the no-downgrade
            # rule and the insertion-order eviction are preserved, and a
            # no-downgrade early return skips eviction, exactly as
            # ``_ReplayView.store`` does.
            get = entries.get
            max_entries = view.max_entries
            bound_entry = (float(cutoff), False) if cutoff is not None else None
            if use_prefilter:
                for index, key in zip(pending, pending_keys):
                    code = code_list[index]
                    if code:
                        pre_evaluated += 1
                        if code == 2:
                            pre_pruned += 1
                            # store(query, item, inf, cutoff): always the
                            # bound-entry branch of the store rule.
                            if key is not None:
                                existing = get(key)
                                if existing is None or not (
                                    existing[1] or existing[0] >= cutoff
                                ):
                                    entries[key] = bound_entry
                                    if max_entries is not None:
                                        while len(entries) > max_entries:
                                            entries.pop(next(iter(entries)))
                            continue
                    fresh += 1
                    if key is not None:
                        value = value_list[index]
                        if value <= cutoff:
                            entries[key] = (value, True)
                        else:
                            existing = get(key)
                            if existing is not None and (
                                existing[1] or existing[0] >= cutoff
                            ):
                                continue
                            entries[key] = bound_entry
                        if max_entries is not None:
                            while len(entries) > max_entries:
                                entries.pop(next(iter(entries)))
            else:
                for index, key in zip(pending, pending_keys):
                    fresh += 1
                    if key is None:
                        continue
                    value = value_list[index]
                    if cutoff is None or value <= cutoff:
                        entries[key] = (value, True)
                    else:
                        existing = get(key)
                        if existing is not None and (
                            existing[1] or existing[0] >= cutoff
                        ):
                            continue
                        entries[key] = bound_entry
                    if max_entries is not None:
                        while len(entries) > max_entries:
                            entries.pop(next(iter(entries)))
    return fresh, hits, pre_evaluated, pre_pruned


def _replay_verify_columns(
    columns: _VerifyColumns, cache: Optional[DistanceCache], counter
) -> None:
    """Columnar analogue of :func:`replay_verify_log`."""
    size = columns.size
    fresh = hits = 0
    with _replay_view(cache) as view:
        flags = columns.flags[:size].tolist()
        pair_rows = columns.pairs[:size].tolist()
        float_rows = columns.floats[:size].tolist()
        # Same inlining as :func:`_replay_probe_columns`: the view's
        # ``lookup``/``store`` run against the raw entry dict with
        # identical semantics, and since nothing mutates ``key`` between
        # the two, the lookup's entry doubles as the store's no-downgrade
        # check.  A cache-less replay (null view) classifies every row as
        # fresh with no stores, exactly as the per-row calls would.
        entries = getattr(view, "entries", None)
        if entries is None:
            fresh = size
        else:
            get = entries.get
            max_entries = view.max_entries
            for row in range(size):
                first, second = pair_rows[row]
                cutoff, value = float_rows[row]
                has_cutoff = flags[row]
                key = (first, second)
                entry = get(key)
                if entry is not None:
                    entry_value, exact = entry
                    if exact or (has_cutoff and entry_value >= cutoff):
                        hits += 1
                        continue
                fresh += 1
                if not has_cutoff or value <= cutoff:
                    entries[key] = (value, True)
                else:
                    if entry is not None and (entry[1] or entry[0] >= cutoff):
                        # No-downgrade early return: skips eviction.
                        continue
                    entries[key] = (cutoff, False)
                if max_entries is not None:
                    while len(entries) > max_entries:
                        entries.pop(next(iter(entries)))
            view.hits += hits
            view.misses += fresh
    counter.count += fresh
    counter.cache_hits += hits


def replay_probe_log(log: List[tuple], counting) -> None:
    """Re-run a probe unit's request stream against the real cache/counter.

    ``counting`` is the index's live
    :class:`~repro.indexing.stats.CountingDistance`.  For every logged
    request the replay decides hit vs fresh vs prefilter-pruned exactly as
    the serial path would have -- using the *real* cache state, which at
    this point includes the stores of every earlier unit -- and applies the
    stores in serial order.  No kernels run here.

    This is the object-format reference replay; the columnar format goes
    through :meth:`RecordingCounting.replay_into`.
    """
    cache, counter, prefilter = counting.cache, counting.counter, counting.prefilter
    for record in log:
        tag = record[0]
        if tag == _CALL:
            _tag, first, second, value, _hit, cacheable = record
            if cache is not None and cacheable:
                cached = cache.lookup(first, second)
                if cached is not None:
                    counter.record_cache_hit()
                    continue
                counter.increment()
                cache.store(first, second, value)
            else:
                counter.increment()
        elif tag == _BOUNDED:
            _tag, first, second, cutoff, value, _hit, cacheable, bound = record
            if cache is not None and cacheable:
                cached = cache.lookup(first, second, cutoff=cutoff)
                if cached is not None:
                    counter.record_cache_hit()
                    continue
            if prefilter and bound is not None:
                pruned = bound > cutoff
                counter.record_prefilter(1, 1 if pruned else 0)
                if pruned:
                    if cache is not None and cacheable:
                        cache.store(first, second, _INF, cutoff=cutoff)
                    continue
            counter.increment()
            if cache is not None and cacheable:
                cache.store(first, second, value, cutoff=cutoff)
        else:  # _BATCH
            _tag, query, items, cutoff, values, _hits, bounds = record
            pending: List[int] = []
            for index, item in enumerate(items):
                if cache is not None and DistanceCache.cacheable(query, item):
                    cached = cache.lookup(query, item, cutoff=cutoff)
                    if cached is not None:
                        counter.record_cache_hit()
                        continue
                pending.append(index)
            for index in pending:
                item = items[index]
                bound = bounds[index]
                if prefilter and cutoff is not None and bound is not None:
                    pruned = bound > cutoff
                    counter.record_prefilter(1, 1 if pruned else 0)
                    if pruned:
                        if cache is not None and DistanceCache.cacheable(query, item):
                            cache.store(query, item, _INF, cutoff=cutoff)
                        continue
                counter.increment()
                if cache is not None and DistanceCache.cacheable(query, item):
                    cache.store(query, item, float(values[index]), cutoff=cutoff)


def replay_verify_log(log: List[tuple], cache: Optional[DistanceCache], counter) -> None:
    """Re-run a verification unit's request stream; see :func:`replay_probe_log`.

    ``counter`` follows the verification counter protocol (``count`` /
    ``cache_hits`` attributes).  Object-format reference replay; the
    columnar format goes through :meth:`RecordingVerifyCache.replay_into`.
    """
    for first, second, cutoff, value, _hit in log:
        if cache is not None:
            cached = cache.lookup(first, second, cutoff=cutoff)
            if cached is not None:
                counter.cache_hits += 1
                continue
            counter.count += 1
            cache.store(first, second, value, cutoff=cutoff)
        else:
            counter.count += 1
