"""Recorded distance evaluation for parallel work units.

The parallel executors (:mod:`repro.core.executor`) run index probes and
chain verifications concurrently, but the framework's contract is strict:
whatever the execution substrate, a query must return *byte-identical
results and identical work counters* to the serial path.  Results are easy
-- every distance value is a pure function of its operands -- but the
counters are not: whether a distance request is a *fresh computation* or a
*cache hit* depends on the order in which earlier requests populated the
shared :class:`~repro.distances.cache.DistanceCache`, and concurrent units
racing on one cache would make that order (and therefore the accounting)
nondeterministic.

The resolution rests on one observation: the *request stream* of a work
unit -- which pairs it measures, with which cutoffs, in which order -- is a
pure function of the distance values, never of the cache state (a hit and a
fresh computation return the same number).  So each unit runs against a
**private overlay** over a read-only snapshot of the shared cache and keeps
a **log** of its requests; when the executor is done, the logs are replayed
serially, in unit order, against the real cache and counters.  The replay
performs no kernels -- every value is in the log -- it only re-derives the
hit/fresh/prefilter classification each request *would* have received under
serial execution, and applies the stores in serial order (which also
reproduces the serial cache content and eviction order).

Two recording front-ends exist, matching the two distance entry points of
the query pipeline:

* :class:`RecordingCounting` duck-types the index layer's
  :class:`~repro.indexing.stats.CountingDistance` (``__call__`` /
  ``bounded`` / ``batch``) for probe work units;
* :class:`RecordingVerifyCache` duck-types :class:`DistanceCache` for the
  verification step's ``_measure`` helper.

The matching replays are :func:`replay_probe_log` (into a
``CountingDistance``) and :func:`replay_verify_log` (into a verification
counter plus the cache).

One documented inexactness remains: if the shared cache evicts entries
*mid-stage* (capacity reached while a query is executing), a unit may have
answered a request from an entry the serial run would already have evicted.
The replay then counts that request as a fresh computation with the
recorded value -- results stay exact, the counters may differ by the
handful of requests involved.  The matcher-sized default capacities make
this unreachable in practice.
"""

from __future__ import annotations

from typing import List, Optional, Sequence as TypingSequence, Tuple

import numpy as np

from repro.distances.base import (
    Distance,
    as_array,
    group_batch_operands,
    validate_group_shape,
)
from repro.distances.cache import DistanceCache
from repro.distances.lower_bounds import combined_batch_bound, combined_bound
from repro.sequences.sequence import Sequence

_INF = float("inf")

#: Log record tags (first tuple element of every record).
_CALL = "call"
_BOUNDED = "bounded"
_BATCH = "batch"


class _Overlay:
    """A unit-private write layer over a read-only base cache snapshot.

    ``lookup`` consults the overlay first (it holds the unit's most recent
    knowledge) and falls back to :meth:`DistanceCache.peek` on the base,
    which never mutates the base statistics.  ``store`` only ever writes the
    overlay.  Entry semantics (exact values vs ``distance > cutoff`` lower
    bounds, no downgrades) mirror :class:`DistanceCache`.
    """

    __slots__ = ("base", "entries")

    def __init__(self, base: Optional[DistanceCache]) -> None:
        self.base = base
        self.entries: dict = {}

    def lookup(
        self, first: Sequence, second: Sequence, cutoff: Optional[float] = None
    ) -> Optional[float]:
        entry = self.entries.get((first, second))
        if entry is not None:
            value, exact = entry
            if exact:
                return value
            if cutoff is not None and value >= cutoff:
                return _INF
        if self.base is not None:
            return self.base.peek(first, second, cutoff=cutoff)
        return None

    def store(
        self, first: Sequence, second: Sequence, value: float, cutoff: Optional[float] = None
    ) -> None:
        key = (first, second)
        if cutoff is None or value <= cutoff:
            self.entries[key] = (value, True)
            return
        existing = self.entries.get(key)
        if existing is not None and (existing[1] or existing[0] >= cutoff):
            return
        self.entries[key] = (float(cutoff), False)


class RecordingCounting:
    """A per-unit stand-in for :class:`~repro.indexing.stats.CountingDistance`.

    Index ``_range_search`` implementations receive one of these when they
    execute inside a parallel work unit: same call surface (``__call__``,
    ``bounded``, ``batch``, plus the ``inner``/``name``/``is_metric``
    attributes the indexes read), but all cache traffic goes through a
    private overlay and every request is logged for the serial replay.

    The prefilter bounds are evaluated exactly where the serial
    ``CountingDistance`` would evaluate them -- on cache misses only -- and
    their outcomes ride along in the log so the replay can reconstruct the
    prefilter tallies without recomputing anything.
    """

    def __init__(
        self,
        inner: Distance,
        base: Optional[DistanceCache],
        prefilter: bool = False,
    ) -> None:
        self.inner = inner
        self.prefilter = bool(prefilter)
        self._overlay = _Overlay(base)
        #: The unit's request log, replayed by :func:`replay_probe_log`.
        self.log: List[tuple] = []

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def is_metric(self) -> bool:
        return self.inner.is_metric

    @property
    def cache(self) -> Optional[DistanceCache]:
        """The base cache the overlay snapshots (read-only during the unit)."""
        return self._overlay.base

    def __call__(self, first, second) -> float:
        if not DistanceCache.cacheable(first, second):
            value = self.inner(first, second)
            self.log.append((_CALL, first, second, value, False, False))
            return value
        cached = self._overlay.lookup(first, second)
        if cached is not None:
            self.log.append((_CALL, first, second, cached, True, True))
            return cached
        value = self.inner(first, second)
        self._overlay.store(first, second, value)
        self.log.append((_CALL, first, second, value, False, True))
        return value

    def bounded(self, first, second, cutoff: float) -> float:
        cacheable = DistanceCache.cacheable(first, second)
        if cacheable:
            cached = self._overlay.lookup(first, second, cutoff=cutoff)
            if cached is not None:
                self.log.append((_BOUNDED, first, second, cutoff, cached, True, True, None))
                return cached
        bound = None
        if self.prefilter:
            bound = combined_bound(self.inner, first, second)
            if bound > cutoff:
                if cacheable:
                    self._overlay.store(first, second, _INF, cutoff=cutoff)
                self.log.append(
                    (_BOUNDED, first, second, cutoff, _INF, False, cacheable, bound)
                )
                return _INF
        value = self.inner.bounded(first, second, cutoff)
        if cacheable:
            self._overlay.store(first, second, value, cutoff=cutoff)
        self.log.append((_BOUNDED, first, second, cutoff, value, False, cacheable, bound))
        return value

    def batch(
        self,
        query,
        items: TypingSequence,
        cutoff: Optional[float] = None,
        packed=None,
    ) -> np.ndarray:
        """Recorded analogue of :meth:`CountingDistance.batch`.

        Structured as prepare / compute / finish so a process-pool work
        unit can run the pure compute phase in a child process (see
        :meth:`batch_prepare`); calling :meth:`batch` runs all three phases
        in this process, which is what thread-pool units do.
        """
        context = self.batch_prepare(query, items, cutoff, packed=packed)
        computed = compute_batch_groups(context.payload())
        return self.batch_finish(context, computed)

    def batch_prepare(self, query, items, cutoff, packed=None) -> "_BatchContext":
        """Cache lookups + shape grouping; returns the pure-compute payload.

        ``packed`` optionally serves the operand tensors from a packed
        window layout (see :meth:`CountingDistance.batch`); the payload the
        remote phase receives is byte-identical either way.
        """
        values = np.empty(len(items), dtype=np.float64)
        hits = [False] * len(items)
        query_array = as_array(query)
        pending: List[int] = []
        for index, item in enumerate(items):
            if DistanceCache.cacheable(query, item):
                cached = self._overlay.lookup(query, item, cutoff=cutoff)
                if cached is not None:
                    values[index] = cached
                    hits[index] = True
                    continue
            pending.append(index)
        grouped: List[Tuple[List[int], np.ndarray]] = []
        if packed is None:
            arrays, groups = group_batch_operands(self.inner, query_array, items, pending)
            for indexes in groups.values():
                grouped.append((indexes, np.stack([arrays[i] for i in indexes])))
        else:
            groups = {}
            for index in pending:
                groups.setdefault(packed.shape_of(index), []).append(index)
            for shape, indexes in groups.items():
                validate_group_shape(self.inner, query_array, shape)
                grouped.append((indexes, packed.gather(indexes)))
        return _BatchContext(self, query, items, cutoff, values, hits, query_array, grouped)

    def batch_finish(
        self, context: "_BatchContext", computed: List[Tuple[np.ndarray, Optional[np.ndarray]]]
    ) -> np.ndarray:
        """Fold the computed group values/bounds back in; log the batch."""
        values, hits = context.values, context.hits
        bounds: List[Optional[float]] = [None] * len(context.items)
        for (indexes, _tensor), (group_values, group_bounds) in zip(context.grouped, computed):
            for position, index in enumerate(indexes):
                value = float(group_values[position])
                values[index] = value
                if group_bounds is not None:
                    bounds[index] = float(group_bounds[position])
                if DistanceCache.cacheable(context.query, context.items[index]):
                    self._overlay.store(
                        context.query, context.items[index], value, cutoff=context.cutoff
                    )
        self.log.append(
            (
                _BATCH,
                context.query,
                list(context.items),
                context.cutoff,
                values.copy(),
                hits,
                bounds,
            )
        )
        return values


class _BatchContext:
    """State carried between :meth:`RecordingCounting.batch_prepare` and finish."""

    __slots__ = ("owner", "query", "items", "cutoff", "values", "hits", "query_array", "grouped")

    def __init__(self, owner, query, items, cutoff, values, hits, query_array, grouped) -> None:
        self.owner = owner
        self.query = query
        self.items = list(items)
        self.cutoff = cutoff
        self.values = values
        self.hits = hits
        self.query_array = query_array
        self.grouped = grouped

    def payload(self) -> tuple:
        """The picklable pure-compute input for :func:`compute_batch_groups`."""
        return (
            self.owner.inner,
            self.query_array,
            [tensor for _indexes, tensor in self.grouped],
            self.cutoff,
            self.owner.prefilter,
        )


def compute_batch_groups(
    payload: tuple,
) -> List[Tuple[np.ndarray, Optional[np.ndarray]]]:
    """Pure kernel phase of a batched probe: bounds + grouped DP sweeps.

    ``payload`` is ``(distance, query_array, tensors, cutoff, prefilter)``
    -- everything picklable, no cache, no counters -- so this function can
    run in a process-pool child exactly as it runs inline.  Returns one
    ``(values, bounds)`` pair per tensor; ``bounds`` is ``None`` when the
    prefilter did not run.  Pairs pruned by a bound get ``inf`` values, the
    same early-abandon contract as :meth:`Distance.batch`.
    """
    distance, query_array, tensors, cutoff, prefilter = payload
    results: List[Tuple[np.ndarray, Optional[np.ndarray]]] = []
    for tensor in tensors:
        bounds: Optional[np.ndarray] = None
        values = np.empty(tensor.shape[0], dtype=np.float64)
        survivors = np.arange(tensor.shape[0])
        if prefilter and cutoff is not None:
            bounds = combined_batch_bound(distance, query_array, tensor)
            pruned_mask = bounds > cutoff
            values[pruned_mask] = _INF
            survivors = np.nonzero(~pruned_mask)[0]
        if len(survivors):
            fresh = distance.compute_batch(
                query_array,
                tensor[survivors],
                None if cutoff is None else float(cutoff),
            )
            values[survivors] = fresh
        results.append((values, bounds))
    return results


class RecordingVerifyCache:
    """A per-unit stand-in for the cache handed to chain verification.

    Verification's ``_measure`` helper drives the cache through exactly two
    operations -- ``lookup(first, second, cutoff)`` then, on a miss,
    ``store(first, second, value, cutoff)`` -- and counts hits and fresh
    kernels itself.  This duck-type routes both through the unit overlay and
    logs ``(first, second, cutoff, value, hit)`` tuples for
    :func:`replay_verify_log`.
    """

    def __init__(self, base: Optional[DistanceCache]) -> None:
        self._overlay = _Overlay(base)
        self.log: List[tuple] = []

    def lookup(
        self, first: Sequence, second: Sequence, cutoff: Optional[float] = None
    ) -> Optional[float]:
        value = self._overlay.lookup(first, second, cutoff=cutoff)
        if value is not None:
            self.log.append((first, second, cutoff, value, True))
        return value

    def store(
        self, first: Sequence, second: Sequence, value: float, cutoff: Optional[float] = None
    ) -> None:
        self._overlay.store(first, second, value, cutoff=cutoff)
        self.log.append((first, second, cutoff, value, False))


def replay_probe_log(log: List[tuple], counting) -> None:
    """Re-run a probe unit's request stream against the real cache/counter.

    ``counting`` is the index's live
    :class:`~repro.indexing.stats.CountingDistance`.  For every logged
    request the replay decides hit vs fresh vs prefilter-pruned exactly as
    the serial path would have -- using the *real* cache state, which at
    this point includes the stores of every earlier unit -- and applies the
    stores in serial order.  No kernels run here.
    """
    cache, counter, prefilter = counting.cache, counting.counter, counting.prefilter
    for record in log:
        tag = record[0]
        if tag == _CALL:
            _tag, first, second, value, _hit, cacheable = record
            if cache is not None and cacheable:
                cached = cache.lookup(first, second)
                if cached is not None:
                    counter.record_cache_hit()
                    continue
                counter.increment()
                cache.store(first, second, value)
            else:
                counter.increment()
        elif tag == _BOUNDED:
            _tag, first, second, cutoff, value, _hit, cacheable, bound = record
            if cache is not None and cacheable:
                cached = cache.lookup(first, second, cutoff=cutoff)
                if cached is not None:
                    counter.record_cache_hit()
                    continue
            if prefilter and bound is not None:
                pruned = bound > cutoff
                counter.record_prefilter(1, 1 if pruned else 0)
                if pruned:
                    if cache is not None and cacheable:
                        cache.store(first, second, _INF, cutoff=cutoff)
                    continue
            counter.increment()
            if cache is not None and cacheable:
                cache.store(first, second, value, cutoff=cutoff)
        else:  # _BATCH
            _tag, query, items, cutoff, values, _hits, bounds = record
            pending: List[int] = []
            for index, item in enumerate(items):
                if cache is not None and DistanceCache.cacheable(query, item):
                    cached = cache.lookup(query, item, cutoff=cutoff)
                    if cached is not None:
                        counter.record_cache_hit()
                        continue
                pending.append(index)
            for index in pending:
                item = items[index]
                bound = bounds[index]
                if prefilter and cutoff is not None and bound is not None:
                    pruned = bound > cutoff
                    counter.record_prefilter(1, 1 if pruned else 0)
                    if pruned:
                        if cache is not None and DistanceCache.cacheable(query, item):
                            cache.store(query, item, _INF, cutoff=cutoff)
                        continue
                counter.increment()
                if cache is not None and DistanceCache.cacheable(query, item):
                    cache.store(query, item, float(values[index]), cutoff=cutoff)


def replay_verify_log(log: List[tuple], cache: Optional[DistanceCache], counter) -> None:
    """Re-run a verification unit's request stream; see :func:`replay_probe_log`.

    ``counter`` follows the verification counter protocol (``count`` /
    ``cache_hits`` attributes).
    """
    for first, second, cutoff, value, _hit in log:
        if cache is not None:
            cached = cache.lookup(first, second, cutoff=cutoff)
            if cached is not None:
                counter.cache_hits += 1
                continue
            counter.count += 1
            cache.store(first, second, value, cutoff=cutoff)
        else:
            counter.count += 1
