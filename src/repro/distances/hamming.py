"""The Hamming distance: number of mismatching positions.

Like the Euclidean distance, the Hamming distance is a lockstep measure: it
requires equal-length operands and cannot absorb any temporal shift or gap.
It is metric and consistent, so it slots into the framework, but the paper
recommends the elastic measures (ERP, Fréchet, Levenshtein) for real
subsequence-matching workloads.
"""

from __future__ import annotations

import numpy as np

from repro.distances.base import Distance


class Hamming(Distance):
    """Number of positions at which two equal-length sequences differ.

    Metric: yes (it is the L0-style count metric on the product alphabet).
    Consistent: yes -- dropping positions can only reduce the count.
    """

    name = "hamming"
    is_metric = True
    is_consistent = True
    supports_unequal_lengths = False

    def __init__(self, normalised: bool = False) -> None:
        """``normalised=True`` divides by the length, yielding a value in [0, 1]."""
        self.normalised = normalised

    def compute(self, first: np.ndarray, second: np.ndarray) -> float:
        mismatches = np.any(first != second, axis=1)
        count = float(np.count_nonzero(mismatches))
        if self.normalised:
            return count / first.shape[0]
        return count

    def compute_batch(self, query: np.ndarray, items: np.ndarray, cutoff) -> np.ndarray:
        """Batched mismatch count over the whole group."""
        mismatches = np.any(items != query[None, :, :], axis=2)
        counts = np.count_nonzero(mismatches, axis=1).astype(np.float64)
        if self.normalised:
            return counts / query.shape[0]
        return counts

    def __repr__(self) -> str:
        return f"Hamming(normalised={self.normalised})"
