"""A small registry mapping distance names to factories.

The CLI, the persistence layer, and the benchmark harness all refer to
distances by their short names (``"erp"``, ``"frechet"``, ...); the registry
turns those names back into configured instances.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.distances.base import Distance
from repro.distances.dtw import DTW
from repro.distances.edr import EDR
from repro.distances.erp import ERP
from repro.distances.euclidean import Euclidean
from repro.distances.frechet import DiscreteFrechet
from repro.distances.hamming import Hamming
from repro.distances.lcss import LCSS
from repro.distances.levenshtein import Levenshtein, WeightedLevenshtein
from repro.exceptions import DistanceError

_FACTORIES: Dict[str, Callable[..., Distance]] = {}


def register_distance(name: str, factory: Callable[..., Distance], overwrite: bool = False) -> None:
    """Register ``factory`` under ``name``.

    Raises
    ------
    DistanceError
        If the name is already taken and ``overwrite`` is false.
    """
    key = name.lower()
    if key in _FACTORIES and not overwrite:
        raise DistanceError(f"a distance named {name!r} is already registered")
    _FACTORIES[key] = factory


def get_distance(name: str, **kwargs) -> Distance:
    """Instantiate the distance registered under ``name``.

    Keyword arguments are forwarded to the factory, e.g.
    ``get_distance("erp", gap=0.0)``.
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise DistanceError(
            f"unknown distance {name!r}; available: {', '.join(available_distances())}"
        ) from None
    return factory(**kwargs)


def available_distances() -> List[str]:
    """Sorted list of registered distance names."""
    return sorted(_FACTORIES)


# Built-in measures.
register_distance("euclidean", Euclidean)
register_distance("hamming", Hamming)
register_distance("levenshtein", Levenshtein)
register_distance("weighted-levenshtein", WeightedLevenshtein)
register_distance("dtw", DTW)
register_distance("erp", ERP)
register_distance("frechet", DiscreteFrechet)
register_distance("dfd", DiscreteFrechet)
register_distance("edr", EDR)
register_distance("lcss", LCSS)
