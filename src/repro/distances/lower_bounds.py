"""Cheap O(n) lower bounds used as prefilters in front of the DP kernels.

The elastic distance kernels cost ``O(nm)`` per pair even when vectorized;
most pairs probed by a range query are nowhere near the radius, so a cheap
bound that proves ``d(Q, X) > eps`` without filling a DP table skips the
kernel entirely -- the classic LB_Kim / LB_Keogh discipline of the time
series literature, and the same skip-before-expensive-work idea the paper's
triangle-inequality indexes apply at the index level.

Every bound registered here is *admissible*: it never exceeds the exact
distance, so pruning on ``bound > cutoff`` can never drop a true match (the
test-suite checks this property on random pairs for every registered bound).
The registered bounds and the distances they are valid for:

============== ===================================== =========================
bound          valid for                              idea
============== ===================================== =========================
``kim``        DTW (sum), discrete Fréchet (max)      both endpoint couplings
                                                      are mandatory
``keogh``      DTW, ERP, discrete Fréchet with a      every query element
               Euclidean or Manhattan ground metric   couples to (or, for ERP,
                                                      gaps instead of) some
                                                      element inside the
                                                      item's bounding box
``erp-gap``    ERP                                    | sum-to-gap(Q) -
                                                      sum-to-gap(X) |
                                                      (Chen & Ng)
``length``     Levenshtein, weighted Levenshtein,     >= |n - m| indels are
               EDR                                    unavoidable
``norm``       Euclidean                              reverse triangle
                                                      inequality
============== ===================================== =========================

Each bound offers a scalar ``pair`` form and a vectorized ``batch`` form
over a ``(k, m, dim)`` stack of same-shape items, which is what the batched
linear scan uses; :func:`combined_bound` / :func:`combined_batch_bound` take
the maximum over every applicable bound (0 when none applies, which prunes
nothing).
"""

from __future__ import annotations

import abc
from typing import List

import numpy as np

from repro.distances.base import Distance, ElementMetric, as_array
from repro.distances.dtw import DTW
from repro.distances.edr import EDR
from repro.distances.erp import ERP
from repro.distances.euclidean import Euclidean
from repro.distances.frechet import DiscreteFrechet
from repro.distances.levenshtein import Levenshtein, WeightedLevenshtein
from repro.exceptions import DistanceError


def _point_distances(metric: ElementMetric, points: np.ndarray, point: np.ndarray) -> np.ndarray:
    """Ground distance from every row of ``points`` (``(k, dim)``) to ``point``."""
    diff = points - point.reshape(1, -1)
    if metric.kind == "euclidean":
        return np.sqrt(np.sum(diff * diff, axis=1))
    if metric.kind == "manhattan":
        return np.sum(np.abs(diff), axis=1)
    return (np.any(diff != 0.0, axis=1)).astype(np.float64)


def _box_deficit(metric_kind: str, query: np.ndarray, low: np.ndarray, high: np.ndarray) -> np.ndarray:
    """Ground distance from each query element to the box ``[low, high]``.

    ``query`` is ``(n, dim)``; ``low``/``high`` broadcast against it (either
    ``(dim,)`` for one box or ``(k, 1, dim)`` for a batch of boxes).  The
    distance from a point to an axis-aligned box never exceeds the distance
    to any point inside the box, for both the L2 and L1 ground metrics.
    """
    deficit = np.maximum(np.maximum(low - query, query - high), 0.0)
    if metric_kind == "euclidean":
        return np.sqrt(np.sum(deficit * deficit, axis=-1))
    return np.sum(deficit, axis=-1)


class LowerBound(abc.ABC):
    """One admissible lower bound with scalar and batched evaluation."""

    #: Stable identifier used in reports and the README validity table.
    name: str = "lower-bound"

    @abc.abstractmethod
    def applies_to(self, distance: Distance) -> bool:
        """Whether this bound is valid for ``distance``."""

    @abc.abstractmethod
    def pair(self, distance: Distance, first: np.ndarray, second: np.ndarray) -> float:
        """Bound for one ``(n, dim)`` / ``(m, dim)`` pair."""

    def batch(self, distance: Distance, query: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Bounds from ``query`` to a ``(k, m, dim)`` stack (default: loop)."""
        return np.fromiter(
            (self.pair(distance, query, items[i]) for i in range(items.shape[0])),
            dtype=np.float64,
            count=items.shape[0],
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class KimEndpointBound(LowerBound):
    """LB_Kim-style endpoint bound for DTW (sum) and discrete Fréchet (max).

    The start couplings ``(first[0], second[0])`` and end couplings
    ``(first[-1], second[-1])`` are mandatory in every warping, so DTW pays
    at least their sum -- *except* when both operands have length 1, where
    start and end are the same single coupling and summing would count it
    twice (the bound would exceed the exact distance); that case takes the
    maximum instead, which is also what the bottleneck Fréchet distance
    always uses.
    """

    name = "kim"

    def applies_to(self, distance: Distance) -> bool:
        return isinstance(distance, (DTW, DiscreteFrechet))

    def pair(self, distance, first, second) -> float:
        metric = distance.element_metric
        start = metric.single(first[0], second[0])
        end = metric.single(first[-1], second[-1])
        if isinstance(distance, DiscreteFrechet) or (
            first.shape[0] == 1 and second.shape[0] == 1
        ):
            return float(max(start, end))
        return float(start + end)

    def batch(self, distance, query, items) -> np.ndarray:
        metric = distance.element_metric
        start = _point_distances(metric, items[:, 0, :], query[0])
        end = _point_distances(metric, items[:, -1, :], query[-1])
        if isinstance(distance, DiscreteFrechet) or (
            query.shape[0] == 1 and items.shape[1] == 1
        ):
            return np.maximum(start, end)
        return start + end


class KeoghEnvelopeBound(LowerBound):
    """LB_Keogh-style bounding-box bound for DTW, ERP, and discrete Fréchet.

    Every element of the query is either coupled with some element of the
    item (cost at least its ground distance to the item's axis-aligned
    bounding box) or, for ERP only, left unmatched (cost exactly its ground
    distance to the gap element).  Summing the per-element minima (or taking
    the maximum, for the bottleneck Fréchet distance) is therefore a valid
    bound for any warping, banded or not.  Only meaningful for the L2 / L1
    ground metrics; the discrete metric gets nothing from a bounding box.
    """

    name = "keogh"

    def applies_to(self, distance: Distance) -> bool:
        return isinstance(distance, (DTW, ERP, DiscreteFrechet)) and (
            distance.element_metric.kind in ("euclidean", "manhattan")
        )

    def pair(self, distance, first, second) -> float:
        low = second.min(axis=0)
        high = second.max(axis=0)
        deficits = _box_deficit(distance.element_metric.kind, first, low, high)
        if isinstance(distance, ERP):
            gap = distance._gap_vector(first.shape[1])
            gap_costs = distance.element_metric.to_origin(first, gap)
            deficits = np.minimum(deficits, gap_costs)
        if isinstance(distance, DiscreteFrechet):
            return float(np.max(deficits))
        return float(np.sum(deficits))

    def batch(self, distance, query, items) -> np.ndarray:
        low = items.min(axis=1)[:, None, :]
        high = items.max(axis=1)[:, None, :]
        deficits = _box_deficit(distance.element_metric.kind, query[None, :, :], low, high)
        if isinstance(distance, ERP):
            gap = distance._gap_vector(query.shape[1])
            gap_costs = distance.element_metric.to_origin(query, gap)
            deficits = np.minimum(deficits, gap_costs[None, :])
        if isinstance(distance, DiscreteFrechet):
            return np.max(deficits, axis=1)
        return np.sum(deficits, axis=1)


class ErpGapBound(LowerBound):
    """Chen & Ng's |sum-to-gap difference| bound for ERP."""

    name = "erp-gap"

    def applies_to(self, distance: Distance) -> bool:
        return isinstance(distance, ERP)

    def pair(self, distance, first, second) -> float:
        gap = distance._gap_vector(first.shape[1])
        metric = distance.element_metric
        total_first = float(np.sum(metric.to_origin(first, gap)))
        total_second = float(np.sum(metric.to_origin(second, gap)))
        return abs(total_first - total_second)

    def batch(self, distance, query, items) -> np.ndarray:
        gap = distance._gap_vector(query.shape[1])
        metric = distance.element_metric
        total_query = float(np.sum(metric.to_origin(query, gap)))
        totals = np.sum(metric.to_origin_batch(items, gap), axis=1)
        return np.abs(totals - total_query)


class LengthBound(LowerBound):
    """|n - m| indels are unavoidable for the edit-family distances.

    For the weighted Levenshtein distance the bound scales by the cheaper of
    the insertion and deletion costs.
    """

    name = "length"

    def applies_to(self, distance: Distance) -> bool:
        return isinstance(distance, (Levenshtein, WeightedLevenshtein, EDR))

    def _scale(self, distance) -> float:
        if isinstance(distance, WeightedLevenshtein):
            return min(distance.insertion_cost, distance.deletion_cost)
        return 1.0

    def pair(self, distance, first, second) -> float:
        return abs(first.shape[0] - second.shape[0]) * self._scale(distance)

    def batch(self, distance, query, items) -> np.ndarray:
        value = abs(query.shape[0] - items.shape[1]) * self._scale(distance)
        return np.full(items.shape[0], value, dtype=np.float64)


class NormBound(LowerBound):
    """Reverse triangle inequality for the Euclidean sequence distance."""

    name = "norm"

    def applies_to(self, distance: Distance) -> bool:
        return isinstance(distance, Euclidean)

    def pair(self, distance, first, second) -> float:
        return abs(float(np.linalg.norm(first)) - float(np.linalg.norm(second)))

    def batch(self, distance, query, items) -> np.ndarray:
        query_norm = float(np.linalg.norm(query))
        norms = np.sqrt(np.sum(items * items, axis=(1, 2)))
        return np.abs(norms - query_norm)


_REGISTRY: List[LowerBound] = []


def register_lower_bound(bound: LowerBound) -> None:
    """Add ``bound`` to the registry consulted by the combined bounds."""
    if any(existing.name == bound.name for existing in _REGISTRY):
        raise DistanceError(f"a lower bound named {bound.name!r} is already registered")
    _REGISTRY.append(bound)


def registered_lower_bounds() -> List[LowerBound]:
    """All registered bounds, in registration order."""
    return list(_REGISTRY)


def bounds_for(distance: Distance) -> List[LowerBound]:
    """The registered bounds valid for ``distance`` (possibly empty)."""
    return [bound for bound in _REGISTRY if bound.applies_to(distance)]


def combined_bound(distance: Distance, first, second) -> float:
    """Max over every applicable bound for one pair; 0 when none applies."""
    applicable = bounds_for(distance)
    if not applicable:
        return 0.0
    a = as_array(first)
    b = as_array(second)
    return max(bound.pair(distance, a, b) for bound in applicable)


def combined_batch_bound(distance: Distance, query: np.ndarray, items: np.ndarray) -> np.ndarray:
    """Max over every applicable bound for a ``(k, m, dim)`` stack of items."""
    applicable = bounds_for(distance)
    values = np.zeros(items.shape[0], dtype=np.float64)
    for bound in applicable:
        np.maximum(values, bound.batch(distance, query, items), out=values)
    return values


register_lower_bound(KimEndpointBound())
register_lower_bound(KeoghEnvelopeBound())
register_lower_bound(ErpGapBound())
register_lower_bound(LengthBound())
register_lower_bound(NormBound())
