"""Kernel-backend selection for the elastic-distance DP kernels.

Two tiers of kernels exist: the NumPy row sweeps in
:mod:`repro.distances.alignment` (always available, always tested -- the
oracle, alongside the scalar :mod:`repro.distances.reference`) and the
compiled providers of :mod:`repro.distances.compiled` (Numba JIT, a
ctypes-loaded C library, or the interpreted ``pyloop`` debugging variant).
Every provider is value-exact against the NumPy tier (see the contract in
:mod:`repro.distances.compiled`), so switching backends never changes
results, work counters, or cache interactions -- only speed.

Selection: the ``REPRO_KERNEL`` environment variable (or the
``MatcherConfig.kernel`` knob, which defaults to it) names a backend:

``auto`` (default)
    Detection order ``numba`` -> ``cc`` -> ``numpy``: the first provider
    that actually works wins, silently.
``numpy``
    Force the NumPy tier (compiled dispatch disabled).
``compiled``
    Like ``auto`` but *asks* for a compiled tier: when neither Numba nor a
    C compiler is available a one-time warning announces the NumPy
    fallback.
``numba`` / ``cc`` / ``pyloop``
    Force one specific provider; raises
    :class:`~repro.exceptions.ConfigurationError` when it is unavailable.

Resolution is lazy and cached per provider; the active backend is a
process-wide default plus a scope override
(:func:`kernel_scope`) that the query pipeline uses to honour a per-matcher
``MatcherConfig.kernel``.  The override is deliberately a plain global
rather than thread-local state: parallel executors run kernel calls on
worker threads, which must see the scope the coordinating pipeline opened.
Because every backend returns identical values, two matchers with
different ``kernel`` settings racing on one process can at worst briefly
run each other's (equally exact) tier.
"""

from __future__ import annotations

import os
import threading
import warnings
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.distances.compiled import KernelProvider, fusable_dim, make_provider
from repro.exceptions import ConfigurationError

#: Accepted values of ``REPRO_KERNEL`` / ``MatcherConfig.kernel``.
KNOWN_KERNELS = ("auto", "numpy", "compiled", "numba", "cc", "pyloop")

#: ``auto``/``compiled`` try these concrete providers in order.
DETECTION_ORDER = ("numba", "cc")

_provider_cache: Dict[str, Optional[KernelProvider]] = {}
_provider_lock = threading.Lock()
_default_provider: Optional[KernelProvider] = None
_default_resolved = False
_scope_provider: Optional[KernelProvider] = None
_scope_depth = 0
_warned_fallback = False


def default_kernel() -> str:
    """The configured default backend name (the ``REPRO_KERNEL`` env var)."""
    return os.environ.get("REPRO_KERNEL", "auto")


def _try_provider(name: str) -> Optional[KernelProvider]:
    """Instantiate (and cache) one concrete provider; ``None`` when broken.

    The fast path is a lock-free dict read -- safe on GIL builds and on
    free-threaded ones (per-object dict locking).  A miss builds the
    provider *outside* the lock (compilation can take seconds; holding a
    lock across it would serialize unrelated first queries) and publishes
    with ``setdefault`` so concurrent racers agree on one canonical
    provider instance.
    """
    try:
        return _provider_cache[name]
    except KeyError:
        pass
    try:
        provider: Optional[KernelProvider] = make_provider(name)
    except Exception:
        provider = None
    with _provider_lock:
        return _provider_cache.setdefault(name, provider)


def resolve_kernel(name: str) -> Optional[KernelProvider]:
    """Resolve a backend name to a provider (``None`` = the NumPy tier).

    ``auto`` falls back silently, ``compiled`` with a one-time warning;
    naming a concrete unavailable provider is a configuration error.
    """
    global _warned_fallback
    if name not in KNOWN_KERNELS:
        raise ConfigurationError(
            f"unknown kernel backend {name!r}; expected one of {KNOWN_KERNELS}"
        )
    if name == "numpy":
        return None
    if name in ("auto", "compiled"):
        for candidate in DETECTION_ORDER:
            provider = _try_provider(candidate)
            if provider is not None:
                return provider
        if name == "compiled" and not _warned_fallback:
            _warned_fallback = True
            warnings.warn(
                "REPRO_KERNEL=compiled requested but neither Numba nor a C "
                "compiler is available; falling back to the NumPy kernels",
                RuntimeWarning,
                stacklevel=2,
            )
        return None
    provider = _try_provider(name)
    if provider is None:
        raise ConfigurationError(
            f"kernel backend {name!r} is unavailable on this system "
            "(is the dependency installed / is a C compiler on PATH?)"
        )
    return provider


def active_kernels() -> Optional[KernelProvider]:
    """The provider the distance kernels should dispatch to right now.

    ``None`` means "use the NumPy sweeps".  Honours an open
    :func:`kernel_scope` first, then the lazily-resolved process default.
    """
    global _default_provider, _default_resolved
    if _scope_depth:
        return _scope_provider
    if not _default_resolved:
        _default_provider = resolve_kernel(default_kernel())
        _default_resolved = True
    return _default_provider


def fused_provider(dim: int) -> Optional[KernelProvider]:
    """The active provider when fused dispatch is exact for ``dim``.

    Compiled kernels accumulate element costs sequentially, which matches
    NumPy's reductions only below its pairwise-summation threshold; wider
    points fall back to the (always exact) NumPy tier.
    """
    if not fusable_dim(dim):
        return None
    return active_kernels()


def active_kernel_name() -> str:
    """Name of the backend :func:`active_kernels` currently serves.

    This is the label reported in ``QueryStats.kernel_backend`` -- the
    concrete provider (``numba``/``cc``/``pyloop``) or ``numpy``.
    """
    provider = active_kernels()
    return "numpy" if provider is None else provider.name


@contextmanager
def kernel_scope(name: str) -> Iterator[Optional[KernelProvider]]:
    """Run a block under the backend ``name`` (see module docstring).

    Used by the query pipeline to honour ``MatcherConfig.kernel`` around
    its probe and verify stages.  Nested scopes stack; the innermost wins.
    """
    global _scope_provider, _scope_depth
    provider = resolve_kernel(name)
    previous = _scope_provider
    _scope_provider = provider
    _scope_depth += 1
    try:
        yield provider
    finally:
        _scope_depth -= 1
        _scope_provider = previous


def reset_backend_state() -> None:
    """Forget every cached resolution (tests poke env vars and compilers)."""
    global _default_provider, _default_resolved, _warned_fallback
    _provider_cache.clear()
    _default_provider = None
    _default_resolved = False
    _warned_fallback = False
