"""Pluggable execution engines for parallel query work.

The query pipeline decomposes its probe and verify stages into independent
*work units* (see :meth:`repro.indexing.base.MetricIndex.query_work_units`
and :meth:`repro.core.pipeline.QueryPipeline`); an :class:`Executor` decides
how those units run:

:class:`SerialExecutor`
    In-order, in-process execution -- the reference semantics every other
    executor must reproduce exactly (results *and* work counters).
:class:`ThreadPoolExecutor`
    A shared :mod:`concurrent.futures` thread pool.  Python-level index
    traversal still serializes on the GIL, but the batched numpy DP kernels
    release it for their array sweeps, so kernel-heavy work units (the
    linear scan's shape-group batches, verification's bounded kernels)
    overlap on multiple cores with zero pickling cost.
:class:`ProcessPoolExecutor`
    A shared process pool for work units that expose a picklable
    *remote* phase.  Payloads -- chunked batches of window tensors -- are
    pickled to child processes that run pure kernels and return values;
    cache lookups, accounting, and result assembly stay in the parent, so
    the serial-equivalence contract is unaffected by what the children see.
    Units without a remote phase (the pointer-chasing tree traversals) run
    in the parent, so the process executor is never *wrong*, just selective
    about what it ships out.

Pools are shared process-wide, keyed by ``(kind, workers)``: matchers are
cheap to create in large numbers (the test-suite builds hundreds), so each
executor instance is a lightweight handle and the underlying OS threads /
processes are created lazily once and reused until interpreter exit.

Per-task CPU time is measured (``time.thread_time`` in whichever thread or
child process runs the task) and reported alongside the result, which is
what lets :class:`~repro.core.queries.QueryStats` show summed per-worker
CPU next to wall-clock for parallel stages.
"""

from __future__ import annotations

import abc
import atexit
import os
import threading
import time
from concurrent import futures
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence as TypingSequence, Tuple

from repro.exceptions import ConfigurationError

#: The executor names accepted by :func:`make_executor` and ``MatcherConfig``.
EXECUTOR_NAMES = ("serial", "thread", "process")


@dataclass
class WorkTask:
    """One schedulable unit of work.

    ``local`` runs the whole task in the calling process (serial and thread
    executors).  Tasks that can ship their kernel phase to another process
    additionally provide the three-phase split: ``prepare`` (parent-side,
    builds a picklable payload), ``remote`` (a module-level function run on
    the payload in a child), and ``finish`` (parent-side, folds the child's
    output into the task result).

    ``cost`` is a relative estimate of the task's compute weight (for a
    probe unit: windows x DP cells).  The process executor chunks payloads
    by accumulated cost rather than by count, so a single heavy shape
    group gets its own chunk instead of serializing a fixed-size one.
    """

    local: Callable[[], Any]
    prepare: Optional[Callable[[], Any]] = None
    remote: Optional[Callable[[Any], Any]] = None
    finish: Optional[Callable[[Any], Any]] = None
    cost: float = 1.0

    @property
    def supports_remote(self) -> bool:
        """Whether this task can run its compute phase in a child process."""
        return self.remote is not None and self.prepare is not None


@dataclass
class TaskResult:
    """A task's return value plus the CPU seconds spent producing it.

    ``inline`` marks results produced on the *calling* thread (the serial
    executor, pool shortcuts, the process executor's local fallbacks):
    their CPU is already part of the caller's own ``thread_time`` window,
    so stage accounting must not add it a second time.
    """

    value: Any
    cpu_seconds: float
    inline: bool = False

    @property
    def worker_cpu_seconds(self) -> float:
        """CPU burned off the calling thread (0 for inline results)."""
        return 0.0 if self.inline else self.cpu_seconds


def _run_timed(fn: Callable[[], Any], inline: bool = False) -> TaskResult:
    started = time.thread_time()
    value = fn()
    return TaskResult(value, time.thread_time() - started, inline)


def _run_remote_chunk(fn: Callable[[Any], Any], payloads: List[Any]) -> List[Tuple[Any, float]]:
    """Child-process entry point: run ``fn`` over one chunk of payloads."""
    out: List[Tuple[Any, float]] = []
    for payload in payloads:
        started = time.thread_time()
        value = fn(payload)
        out.append((value, time.thread_time() - started))
    return out


# --------------------------------------------------------------------- #
# Shared pools
# --------------------------------------------------------------------- #
_POOLS: dict = {}
_POOLS_LOCK = threading.Lock()


def _shared_pool(kind: str, workers: int):
    """The process-wide pool for ``(kind, workers)``, created on first use."""
    key = (kind, workers)
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is None:
            if kind == "thread":
                pool = futures.ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-worker"
                )
            else:
                pool = futures.ProcessPoolExecutor(max_workers=workers)
            _POOLS[key] = pool
        return pool


@atexit.register
def shutdown_pools() -> None:
    """Shut down every shared pool (registered atexit; callable from tests).

    Also sweeps the shared-memory window exports: once the worker processes
    are gone nothing can attach to the segments, and tearing them down here
    means a plain interpreter exit (or a server SIGTERM, which funnels into
    the same path) never leaks ``/dev/shm`` segments or trips the
    ``resource_tracker`` leak warnings.
    """
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True)
    from repro.sequences.packed import release_all_shared_exports

    release_all_shared_exports()


def default_workers() -> int:
    """The worker count used when the configuration leaves it unset."""
    return os.cpu_count() or 1


# --------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------- #
class Executor(abc.ABC):
    """Runs a list of :class:`WorkTask` and returns results in task order."""

    #: Stable identifier, also shown in ``QueryStats`` / CLI tables.
    name: str = "executor"

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)

    @property
    def is_parallel(self) -> bool:
        """Whether tasks may run concurrently (False only for the serial one)."""
        return True

    @property
    def runs_local_tasks_concurrently(self) -> bool:
        """Whether plain ``local`` tasks (no remote phase) can overlap.

        True for the thread pool; False for the serial executor and the
        process pool (which runs local-only tasks in the parent, one by
        one).  Callers use this to skip the recording/replay bookkeeping
        when there is no concurrency to buy with it.
        """
        return self.is_parallel

    @abc.abstractmethod
    def run(self, tasks: TypingSequence[WorkTask]) -> List[TaskResult]:
        """Execute every task; results are returned in task order."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """In-order, in-process execution: the reference semantics."""

    name = "serial"

    def __init__(self, workers: int = 1) -> None:
        super().__init__(1)

    @property
    def is_parallel(self) -> bool:
        return False

    def run(self, tasks: TypingSequence[WorkTask]) -> List[TaskResult]:
        return [_run_timed(task.local, inline=True) for task in tasks]


class ThreadPoolExecutor(Executor):
    """Fan work units out over a shared thread pool."""

    name = "thread"

    def run(self, tasks: TypingSequence[WorkTask]) -> List[TaskResult]:
        if len(tasks) <= 1:
            return [_run_timed(task.local, inline=True) for task in tasks]
        pool = _shared_pool("thread", self.workers)
        pending = [pool.submit(_run_timed, task.local) for task in tasks]
        return [future.result() for future in pending]


class ProcessPoolExecutor(Executor):
    """Ship remote-capable work units to a shared process pool, chunked.

    Payloads are grouped by their remote function and cut into chunks of
    roughly equal *cost* (each task's :attr:`WorkTask.cost` estimate,
    targeting ``2 * workers`` chunks per run) so the per-future pickling
    and IPC overhead is amortised over a batch of payloads while a single
    heavy task -- one giant shape group -- still gets a chunk of its own
    instead of serializing the stage behind a fixed-size cut.  Tasks
    without a remote phase run in the parent.
    """

    name = "process"

    @property
    def runs_local_tasks_concurrently(self) -> bool:
        return False

    def run(self, tasks: TypingSequence[WorkTask]) -> List[TaskResult]:
        results: List[Optional[TaskResult]] = [None] * len(tasks)
        remote_positions = [
            position for position, task in enumerate(tasks) if task.supports_remote
        ]
        if remote_positions:
            pool = _shared_pool("process", self.workers)
            prepared: List[Tuple[int, Any]] = [
                (position, tasks[position].prepare()) for position in remote_positions
            ]
            total_cost = sum(max(tasks[position].cost, 0.0) for position, _ in prepared)
            cost_target = total_cost / (2 * self.workers) if total_cost > 0 else None
            # Group by remote function so one chunk needs exactly one callable.
            by_fn: dict = {}
            for position, payload in prepared:
                by_fn.setdefault(tasks[position].remote, []).append((position, payload))
            pending = []
            for fn, entries in by_fn.items():
                for chunk in self._cost_chunks(tasks, entries, cost_target):
                    future = pool.submit(_run_remote_chunk, fn, [p for _, p in chunk])
                    pending.append((chunk, future))
            for chunk, future in pending:
                for (position, _payload), (value, child_cpu) in zip(
                    chunk, future.result()
                ):
                    task = tasks[position]
                    final = task.finish(value) if task.finish is not None else value
                    # Only the child's CPU counts as worker CPU; the
                    # prepare/finish phases ran on the calling thread and
                    # are already inside the caller's own CPU window.
                    results[position] = TaskResult(final, child_cpu)
        for position, task in enumerate(tasks):
            if results[position] is None:
                results[position] = _run_timed(task.local, inline=True)
        return results  # type: ignore[return-value]

    @staticmethod
    def _cost_chunks(
        tasks: TypingSequence[WorkTask],
        entries: List[Tuple[int, Any]],
        cost_target: Optional[float],
    ) -> List[List[Tuple[int, Any]]]:
        """Cut one remote-fn group into contiguous chunks of ~equal cost.

        ``cost_target`` is the global per-chunk budget (total cost over
        ``2 * workers``); with uniform costs the boundaries coincide with
        the old fixed ``ceil(n / (2 * workers))`` cut.  ``None`` (all
        costs zero) degrades to one chunk per entry.
        """
        if cost_target is None:
            return [[entry] for entry in entries]
        chunks: List[List[Tuple[int, Any]]] = []
        current: List[Tuple[int, Any]] = []
        accumulated = 0.0
        for entry in entries:
            current.append(entry)
            accumulated += max(tasks[entry[0]].cost, 0.0)
            if accumulated >= cost_target:
                chunks.append(current)
                current = []
                accumulated = 0.0
        if current:
            chunks.append(current)
        return chunks


def make_executor(name: str, workers: Optional[int] = None) -> Executor:
    """Build the executor the configuration names.

    ``workers=None`` means "one per CPU" for the parallel executors (and is
    ignored by the serial one).
    """
    if name == "serial":
        return SerialExecutor()
    count = default_workers() if workers is None else workers
    if name == "thread":
        return ThreadPoolExecutor(count)
    if name == "process":
        return ProcessPoolExecutor(count)
    raise ConfigurationError(
        f"unknown executor {name!r}; expected one of {EXECUTOR_NAMES}"
    )
