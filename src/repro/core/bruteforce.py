"""Brute-force subsequence matching: the correctness oracle.

The paper's complexity argument (Section 5) starts from the observation that
checking every pair of subsequences costs ``O(|Q|^2 |X|^2)`` distance
computations.  These functions implement exactly that, so tests can compare
the framework's answers against ground truth on small inputs, and the
complexity benchmark can quantify the gap the segmentation filter closes.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.core.config import MatcherConfig
from repro.core.queries import SubsequenceMatch
from repro.distances.base import Distance
from repro.sequences.database import SequenceDatabase
from repro.sequences.sequence import Sequence


def _admissible_pairs(
    query: Sequence, target: Sequence, config: MatcherConfig
) -> Iterator[Tuple[int, int, int, int]]:
    """Yield every admissible (q_start, q_stop, x_start, x_stop) combination."""
    for q_start in range(len(query)):
        for q_stop in range(q_start + config.min_length, len(query) + 1):
            q_len = q_stop - q_start
            for x_start in range(len(target)):
                shortest = max(config.min_length, q_len - config.max_shift)
                longest = q_len + config.max_shift
                for x_len in range(shortest, longest + 1):
                    x_stop = x_start + x_len
                    if x_stop > len(target):
                        break
                    yield q_start, q_stop, x_start, x_stop


def brute_force_matches(
    query: Sequence,
    database: SequenceDatabase,
    distance: Distance,
    radius: float,
    config: MatcherConfig,
) -> List[SubsequenceMatch]:
    """Every pair of similar subsequences, found by exhaustive enumeration.

    Only suitable for small inputs; the framework exists precisely because
    this costs ``O(|Q|^2 |X|^2)`` distance computations.
    """
    results: List[SubsequenceMatch] = []
    for sequence in database:
        source_id = sequence.seq_id or "seq"
        for q_start, q_stop, x_start, x_stop in _admissible_pairs(query, sequence, config):
            value = distance(
                query.subsequence(q_start, q_stop), sequence.subsequence(x_start, x_stop)
            )
            if value <= radius:
                results.append(
                    SubsequenceMatch(
                        distance=value,
                        source_id=source_id,
                        query_start=q_start,
                        query_stop=q_stop,
                        db_start=x_start,
                        db_stop=x_stop,
                    )
                )
    return results


def brute_force_longest(
    query: Sequence,
    database: SequenceDatabase,
    distance: Distance,
    radius: float,
    config: MatcherConfig,
) -> Optional[SubsequenceMatch]:
    """The longest pair of similar subsequences (ties broken by distance)."""
    best: Optional[SubsequenceMatch] = None
    for match in brute_force_matches(query, database, distance, radius, config):
        if (
            best is None
            or match.length > best.length
            or (match.length == best.length and match.distance < best.distance)
        ):
            best = match
    return best


def brute_force_nearest(
    query: Sequence,
    database: SequenceDatabase,
    distance: Distance,
    config: MatcherConfig,
) -> Optional[SubsequenceMatch]:
    """The closest admissible pair of subsequences regardless of radius."""
    best: Optional[SubsequenceMatch] = None
    for sequence in database:
        source_id = sequence.seq_id or "seq"
        for q_start, q_stop, x_start, x_stop in _admissible_pairs(query, sequence, config):
            value = distance(
                query.subsequence(q_start, q_stop), sequence.subsequence(x_start, x_stop)
            )
            if best is None or value < best.distance:
                best = SubsequenceMatch(
                    distance=value,
                    source_id=source_id,
                    query_start=q_start,
                    query_stop=q_stop,
                    db_start=x_start,
                    db_stop=x_stop,
                )
    return best


def count_brute_force_pairs(
    query: Sequence, database: SequenceDatabase, config: MatcherConfig
) -> int:
    """Number of admissible subsequence pairs brute force would evaluate."""
    total = 0
    for sequence in database:
        total += sum(1 for _ in _admissible_pairs(query, sequence, config))
    return total
