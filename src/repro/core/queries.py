"""Query descriptions, result records, and per-query statistics.

The paper distinguishes three query types (Section 3.2):

* **Type I** -- range query: every pair of similar subsequences;
* **Type II** -- longest similar subsequence: maximise the match length;
* **Type III** -- nearest neighbour: minimise the distance.

The dataclasses here describe those queries and their results; the logic
that answers them lives in :mod:`repro.core.matcher`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence as TypingSequence

from repro.exceptions import QueryError
from repro.sequences.windows import Window


@dataclass(frozen=True)
class RangeQuery:
    """Type I: all pairs of similar subsequences within ``radius``.

    With ``exhaustive=False`` (the default) the matcher reports one
    locally-maximal match per candidate chain -- a practical summary of the
    "large number of quite related results" the paper warns Type I queries
    produce.  With ``exhaustive=True`` every admissible endpoint combination
    inside every candidate region is verified, which is faithful but only
    affordable on small inputs.
    """

    radius: float
    #: Safety valve: stop after this many verified pairs (None = unlimited).
    max_results: Optional[int] = None
    #: Enumerate every admissible pair inside each candidate region.
    exhaustive: bool = False

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise QueryError(f"radius must be non-negative, got {self.radius}")
        if self.max_results is not None and self.max_results < 1:
            raise QueryError(f"max_results must be >= 1, got {self.max_results}")


@dataclass(frozen=True)
class LongestSubsequenceQuery:
    """Type II: the longest pair of similar subsequences within ``radius``."""

    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise QueryError(f"radius must be non-negative, got {self.radius}")


@dataclass(frozen=True)
class NearestSubsequenceQuery:
    """Type III: the closest pair of subsequences of length at least lambda.

    Attributes
    ----------
    max_radius:
        Upper bound for the binary search over the range radius.
    tolerance:
        Binary-search precision on the radius.
    radius_increment:
        The paper's ``eps_inc``: how much to enlarge the radius when the
        minimal radius that yields segment matches produces no verifiable
        subsequence pair.
    """

    max_radius: float
    tolerance: float = 1e-3
    radius_increment: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_radius <= 0:
            raise QueryError(f"max_radius must be positive, got {self.max_radius}")
        if self.tolerance <= 0:
            raise QueryError(f"tolerance must be positive, got {self.tolerance}")
        if self.radius_increment is not None and self.radius_increment <= 0:
            raise QueryError(
                f"radius_increment must be positive, got {self.radius_increment}"
            )


@dataclass(frozen=True)
class SegmentMatch:
    """Step-4 output: one query segment paired with one database window."""

    #: Start offset of the query segment within the query sequence.
    query_start: int
    #: Length of the query segment.
    query_length: int
    #: The matched database window (with provenance).
    window: Window
    #: Distance between segment and window when it was computed, else None.
    distance: Optional[float]

    @property
    def query_stop(self) -> int:
        """Exclusive end offset of the query segment."""
        return self.query_start + self.query_length


@dataclass(frozen=True, order=True)
class SubsequenceMatch:
    """A verified pair of similar subsequences (the framework's final output).

    Offsets are zero-based and half-open, i.e. the query subsequence is
    ``query[query_start:query_stop]`` and the database subsequence is
    ``database[source_id][db_start:db_stop]``.
    """

    distance: float
    source_id: str = field(compare=False)
    query_start: int = field(compare=False)
    query_stop: int = field(compare=False)
    db_start: int = field(compare=False)
    db_stop: int = field(compare=False)

    @property
    def query_length(self) -> int:
        """Length of the query-side subsequence."""
        return self.query_stop - self.query_start

    @property
    def db_length(self) -> int:
        """Length of the database-side subsequence."""
        return self.db_stop - self.db_start

    @property
    def length(self) -> int:
        """The shorter of the two subsequence lengths (the reported size)."""
        return min(self.query_length, self.db_length)

    def __repr__(self) -> str:
        return (
            f"SubsequenceMatch(source={self.source_id!r}, "
            f"query=[{self.query_start}:{self.query_stop}], "
            f"db=[{self.db_start}:{self.db_stop}], distance={self.distance:.4f})"
        )


@dataclass
class QueryStats:
    """Work accounting for one framework query.

    Attributes
    ----------
    segments_extracted:
        Number of query segments considered (step 3).
    index_distance_computations:
        Fresh distance evaluations spent inside the index during step 4.
    index_cache_hits:
        Step-4 distance requests answered by the matcher's distance cache
        (no kernel was run); counted separately so the computation counts
        keep matching the paper's definition.
    verification_distance_computations:
        Fresh distance evaluations spent verifying candidates during step 5.
    verification_cache_hits:
        Step-5 distance requests answered by the distance cache.
    segment_matches:
        Number of (segment, window) pairs produced by step 4.
    candidate_chains:
        Number of candidate chains examined in step 5.
    naive_distance_computations:
        What a linear scan would have spent in step 4 (segments x windows);
        the ratio against ``index_distance_computations`` is the paper's
        pruning ratio ``alpha``.
    prefilter_evaluations:
        Lower-bound evaluations performed in front of the step-4 kernels
        (see :mod:`repro.distances.lower_bounds`); 0 unless the backing
        index prefilters (the matcher's linear scan does by default).
    prefilter_pruned:
        Prefilter evaluations that proved the pair outside the radius, i.e.
        kernel executions skipped for the cost of an O(n) bound.
    stage_timings:
        Wall-clock seconds per pipeline stage (``segment``, ``probe``,
        ``chain``, ``verify``), as measured by the query-execution pipeline.
        Prefilter time is part of ``probe`` (the bounds run inside the
        batched kernel dispatch); its effect is visible through the
        prefilter counters instead.
    cpu_stage_timings:
        CPU seconds per pipeline stage: the orchestrating thread's CPU time
        plus the summed per-worker CPU time of every parallel work unit.
        Under the serial executor this tracks ``stage_timings``; under a
        parallel executor the CPU sum can exceed the wall-clock (several
        workers burning CPU simultaneously), which is exactly the "work
        that does not show up in wall-clock" a parallel run would otherwise
        appear to lose.
    executor / workers:
        The execution engine that answered the query and its worker count
        (see :mod:`repro.core.executor`).
    shards:
        Number of matcher shards that contributed to these statistics (1
        for a plain matcher; see
        :class:`~repro.core.sharded.ShardedMatcher`).
    passes:
        Per-pass history for queries that repeat steps 3-5 (Type III's
        radius sweep): one :class:`QueryStats` per pass, in execution
        order.  For such queries the flat counters above follow
        :meth:`merged`'s convention -- work counters are summed over the
        passes while the shape counters describe the final pass.
    """

    segments_extracted: int = 0
    index_distance_computations: int = 0
    verification_distance_computations: int = 0
    segment_matches: int = 0
    candidate_chains: int = 0
    naive_distance_computations: int = 0
    index_cache_hits: int = 0
    verification_cache_hits: int = 0
    prefilter_evaluations: int = 0
    prefilter_pruned: int = 0
    stage_timings: Dict[str, float] = field(default_factory=dict)
    cpu_stage_timings: Dict[str, float] = field(default_factory=dict)
    executor: str = "serial"
    workers: int = 1
    shards: int = 1
    passes: List["QueryStats"] = field(default_factory=list)

    @property
    def total_distance_computations(self) -> int:
        """All fresh distance evaluations performed while answering the query."""
        return self.index_distance_computations + self.verification_distance_computations

    @property
    def total_cache_hits(self) -> int:
        """All distance requests the cache answered while answering the query."""
        return self.index_cache_hits + self.verification_cache_hits

    @property
    def pruning_ratio(self) -> float:
        """Fraction of naive step-4 distance computations avoided (``alpha``)."""
        if self.naive_distance_computations == 0:
            return 0.0
        saved = self.naive_distance_computations - self.index_distance_computations
        return max(0.0, saved / self.naive_distance_computations)

    @property
    def prefilter_prune_ratio(self) -> float:
        """Fraction of prefilter evaluations that skipped a kernel."""
        if self.prefilter_evaluations == 0:
            return 0.0
        return self.prefilter_pruned / self.prefilter_evaluations

    @classmethod
    def merged(cls, passes: TypingSequence["QueryStats"]) -> "QueryStats":
        """Aggregate the stats of repeated step-3/4/5 passes (Type III).

        Work counters (distance computations, cache hits, prefilter
        evaluations, wall-clock and CPU stage timings) are summed across
        the passes -- that is what answering the query actually cost --
        while the shape counters (``segments_extracted``,
        ``segment_matches``, ``candidate_chains``,
        ``naive_distance_computations``) report the *final* pass, the one
        that produced the answer.  The full per-pass history is kept in
        :attr:`passes`.
        """
        if not passes:
            return cls()
        final = passes[-1]
        total = cls(
            segments_extracted=final.segments_extracted,
            segment_matches=final.segment_matches,
            candidate_chains=final.candidate_chains,
            naive_distance_computations=final.naive_distance_computations,
            index_distance_computations=sum(p.index_distance_computations for p in passes),
            verification_distance_computations=sum(
                p.verification_distance_computations for p in passes
            ),
            index_cache_hits=sum(p.index_cache_hits for p in passes),
            verification_cache_hits=sum(p.verification_cache_hits for p in passes),
            prefilter_evaluations=sum(p.prefilter_evaluations for p in passes),
            prefilter_pruned=sum(p.prefilter_pruned for p in passes),
            executor=final.executor,
            workers=final.workers,
            shards=final.shards,
        )
        for stats in passes:
            for stage, seconds in stats.stage_timings.items():
                total.stage_timings[stage] = total.stage_timings.get(stage, 0.0) + seconds
            for stage, seconds in stats.cpu_stage_timings.items():
                total.cpu_stage_timings[stage] = (
                    total.cpu_stage_timings.get(stage, 0.0) + seconds
                )
        total.passes = list(passes)
        return total

    @classmethod
    def across_shards(cls, shard_stats: TypingSequence["QueryStats"]) -> "QueryStats":
        """Combine per-shard statistics into one record (sharded matchers).

        Every shard answered the *same* query over *its* partition of the
        windows, so ``segments_extracted`` is taken from the first shard
        (each extracted the identical segment set) while everything else --
        work counters, matches, chains, the naive denominator, and both
        timing dictionaries -- sums across shards.  ``shards`` records the
        fan-out width; the per-shard records are kept in :attr:`passes`.
        """
        if not shard_stats:
            return cls()
        first = shard_stats[0]
        total = cls(
            segments_extracted=first.segments_extracted,
            segment_matches=sum(s.segment_matches for s in shard_stats),
            candidate_chains=sum(s.candidate_chains for s in shard_stats),
            naive_distance_computations=sum(
                s.naive_distance_computations for s in shard_stats
            ),
            index_distance_computations=sum(
                s.index_distance_computations for s in shard_stats
            ),
            verification_distance_computations=sum(
                s.verification_distance_computations for s in shard_stats
            ),
            index_cache_hits=sum(s.index_cache_hits for s in shard_stats),
            verification_cache_hits=sum(s.verification_cache_hits for s in shard_stats),
            prefilter_evaluations=sum(s.prefilter_evaluations for s in shard_stats),
            prefilter_pruned=sum(s.prefilter_pruned for s in shard_stats),
            executor=first.executor,
            workers=first.workers,
            shards=len(shard_stats),
        )
        for stats in shard_stats:
            for stage, seconds in stats.stage_timings.items():
                total.stage_timings[stage] = total.stage_timings.get(stage, 0.0) + seconds
            for stage, seconds in stats.cpu_stage_timings.items():
                total.cpu_stage_timings[stage] = (
                    total.cpu_stage_timings.get(stage, 0.0) + seconds
                )
        total.passes = list(shard_stats)
        return total
