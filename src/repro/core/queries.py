"""Declarative query specs, result envelopes, and per-query statistics.

The paper distinguishes three query types (Section 3.2):

* **Type I** -- range query: every pair of similar subsequences;
* **Type II** -- longest similar subsequence: maximise the match length;
* **Type III** -- nearest neighbour: minimise the distance.

The dataclasses here are the *single source of truth* for what a query
means: a spec is self-validating, optionally carries the query sequence it
should run against (:meth:`BaseQuery.bind`), and every backend -- the plain
:class:`~repro.core.matcher.SubsequenceMatcher`, the
:class:`~repro.core.sharded.ShardedMatcher`, and the
:class:`~repro.core.service.SearchService` facade -- answers a bound spec
through the same ``execute(spec) -> QueryResult`` entry point.
:class:`TopKQuery` generalises Type III to k > 1 via a k-bounded candidate
heap (:class:`TopKCandidates`) maintained across the radius sweep.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field, fields, replace
from typing import ClassVar, Dict, Iterator, List, Optional, Sequence as TypingSequence, Tuple

from repro.exceptions import QueryError
from repro.sequences.sequence import Sequence
from repro.sequences.windows import Window


class BaseQuery:
    """Shared behaviour of the declarative query specs.

    Every concrete spec is a frozen dataclass whose trailing fields are the
    uniform envelope controls -- result paging (``limit``/``offset``) and an
    optional bound ``query`` sequence.  A spec without a bound sequence is a
    reusable template (the legacy per-sequence methods and
    ``execute_many([spec.bind(q) for q in ...])`` both rely on that);
    :meth:`bind` attaches the sequence without mutating the template.
    """

    #: Stable identifier used by ``describe()`` and the CLI's ``--type`` flag.
    kind: ClassVar[str] = "base"

    def bind(self, query: Sequence) -> "BaseQuery":
        """A copy of this spec bound to the given query sequence."""
        return replace(self, query=query)

    def bound_query(self) -> Sequence:
        """The bound query sequence; raises when the spec is a bare template."""
        if self.query is None:
            raise QueryError(
                f"{type(self).__name__} has no bound query sequence; call "
                "spec.bind(query) before execute()"
            )
        return self.query

    def describe(self) -> Dict[str, object]:
        """JSON-safe echo of the spec: its type plus every scalar parameter."""
        payload: Dict[str, object] = {"type": self.kind}
        for spec_field in fields(self):
            if spec_field.name == "query":
                continue
            payload[spec_field.name] = getattr(self, spec_field.name)
        return payload

    def _validate_envelope(self) -> None:
        if self.limit is not None and self.limit < 1:
            raise QueryError(f"limit must be >= 1 or None, got {self.limit}")
        if self.offset < 0:
            raise QueryError(f"offset must be non-negative, got {self.offset}")


@dataclass(frozen=True)
class RangeQuery(BaseQuery):
    """Type I: all pairs of similar subsequences within ``radius``.

    With ``exhaustive=False`` (the default) the matcher reports one
    locally-maximal match per candidate chain -- a practical summary of the
    "large number of quite related results" the paper warns Type I queries
    produce.  With ``exhaustive=True`` every admissible endpoint combination
    inside every candidate region is verified, which is faithful but only
    affordable on small inputs.
    """

    kind: ClassVar[str] = "range"

    radius: float
    #: Safety valve: stop after this many verified pairs (None = unlimited).
    #: Unlike ``limit`` this caps the *work* -- verification stops early.
    max_results: Optional[int] = None
    #: Enumerate every admissible pair inside each candidate region.
    exhaustive: bool = False
    #: Result paging: page size (None = everything) and starting position.
    limit: Optional[int] = None
    offset: int = 0
    #: The bound query sequence (see :meth:`BaseQuery.bind`).
    query: Optional[Sequence] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise QueryError(f"radius must be non-negative, got {self.radius}")
        if self.max_results is not None and self.max_results < 1:
            raise QueryError(f"max_results must be >= 1, got {self.max_results}")
        self._validate_envelope()


@dataclass(frozen=True)
class LongestSubsequenceQuery(BaseQuery):
    """Type II: the longest pair of similar subsequences within ``radius``."""

    kind: ClassVar[str] = "longest"

    radius: float
    #: Result paging (a Type II result has at most one match; kept for the
    #: uniform envelope).
    limit: Optional[int] = None
    offset: int = 0
    query: Optional[Sequence] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise QueryError(f"radius must be non-negative, got {self.radius}")
        self._validate_envelope()


@dataclass(frozen=True)
class NearestSubsequenceQuery(BaseQuery):
    """Type III: the closest pair of subsequences of length at least lambda.

    Attributes
    ----------
    max_radius:
        Upper bound for the binary search over the range radius.
    tolerance:
        Binary-search precision on the radius.
    radius_increment:
        The paper's ``eps_inc``: how much to enlarge the radius when the
        minimal radius that yields segment matches produces no verifiable
        subsequence pair.
    """

    kind: ClassVar[str] = "nearest"

    max_radius: float
    tolerance: float = 1e-3
    radius_increment: Optional[float] = None
    limit: Optional[int] = None
    offset: int = 0
    query: Optional[Sequence] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_radius <= 0:
            raise QueryError(f"max_radius must be positive, got {self.max_radius}")
        if self.tolerance <= 0:
            raise QueryError(f"tolerance must be positive, got {self.tolerance}")
        if self.radius_increment is not None and self.radius_increment <= 0:
            raise QueryError(
                f"radius_increment must be positive, got {self.radius_increment}"
            )
        self._validate_envelope()


@dataclass(frozen=True)
class TopKQuery(BaseQuery):
    """Type III generalised to the ``k`` nearest subsequence pairs.

    The matcher answers it with the same radius sweep as
    :class:`NearestSubsequenceQuery` -- binary-search the minimal radius
    producing segment matches, then enlarge by ``radius_increment`` -- but
    instead of stopping at the first verified pair it maintains a k-bounded
    candidate heap (:class:`TopKCandidates`) across the passes and stops as
    soon as the heap holds ``k`` distinct matches.  Candidates are ranked by
    the deterministic :func:`match_ranking_key`, which is what makes a
    sharded sweep merge to exactly the unsharded answer.

    ``TopKQuery(k=1, ...)`` is byte-identical -- results *and* work
    counters -- to :class:`NearestSubsequenceQuery` with the same
    parameters.
    """

    kind: ClassVar[str] = "topk"

    k: int
    max_radius: float
    tolerance: float = 1e-3
    radius_increment: Optional[float] = None
    limit: Optional[int] = None
    offset: int = 0
    query: Optional[Sequence] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QueryError(f"k must be >= 1, got {self.k}")
        if self.max_radius <= 0:
            raise QueryError(f"max_radius must be positive, got {self.max_radius}")
        if self.tolerance <= 0:
            raise QueryError(f"tolerance must be positive, got {self.tolerance}")
        if self.radius_increment is not None and self.radius_increment <= 0:
            raise QueryError(
                f"radius_increment must be positive, got {self.radius_increment}"
            )
        self._validate_envelope()


def as_query_spec(spec) -> BaseQuery:
    """Normalise a user-supplied spec: a bare number is a Type I radius."""
    if isinstance(spec, BaseQuery):
        return spec
    if isinstance(spec, (int, float)) and not isinstance(spec, bool):
        return RangeQuery(radius=float(spec))
    raise QueryError(f"unsupported query spec: {spec!r}")


@dataclass(frozen=True)
class SegmentMatch:
    """Step-4 output: one query segment paired with one database window."""

    #: Start offset of the query segment within the query sequence.
    query_start: int
    #: Length of the query segment.
    query_length: int
    #: The matched database window (with provenance).
    window: Window
    #: Distance between segment and window when it was computed, else None.
    distance: Optional[float]

    @property
    def query_stop(self) -> int:
        """Exclusive end offset of the query segment."""
        return self.query_start + self.query_length


@dataclass(frozen=True, order=True)
class SubsequenceMatch:
    """A verified pair of similar subsequences (the framework's final output).

    Offsets are zero-based and half-open, i.e. the query subsequence is
    ``query[query_start:query_stop]`` and the database subsequence is
    ``database[source_id][db_start:db_stop]``.
    """

    distance: float
    source_id: str = field(compare=False)
    query_start: int = field(compare=False)
    query_stop: int = field(compare=False)
    db_start: int = field(compare=False)
    db_stop: int = field(compare=False)

    @property
    def query_length(self) -> int:
        """Length of the query-side subsequence."""
        return self.query_stop - self.query_start

    @property
    def db_length(self) -> int:
        """Length of the database-side subsequence."""
        return self.db_stop - self.db_start

    @property
    def length(self) -> int:
        """The shorter of the two subsequence lengths (the reported size)."""
        return min(self.query_length, self.db_length)

    def __repr__(self) -> str:
        return (
            f"SubsequenceMatch(source={self.source_id!r}, "
            f"query=[{self.query_start}:{self.query_stop}], "
            f"db=[{self.db_start}:{self.db_stop}], distance={self.distance:.4f})"
        )


def match_identity(match: SubsequenceMatch) -> tuple:
    """The identity of a match: which subsequence pair it names."""
    return (
        match.source_id,
        match.query_start,
        match.query_stop,
        match.db_start,
        match.db_stop,
    )


def match_ranking_key(match: SubsequenceMatch) -> tuple:
    """Deterministic total order for nearest / top-k ranking.

    Smaller distance wins; exact distance ties go to the longer match, then
    to ``(seq_id, offsets)``.  The key extends to the full identity of the
    match, so it is a *total* order: two distinct matches never compare
    equal, which is what lets a sharded sweep merge per-shard candidates
    into exactly the match list an unsharded sweep produces.
    """
    return (
        match.distance,
        -match.length,
        match.source_id,
        match.query_start,
        match.db_start,
        match.query_stop,
        match.db_stop,
    )


class TopKCandidates:
    """A k-bounded candidate pool ordered by :func:`match_ranking_key`.

    The top-k radius sweep feeds every verified match of every pass into
    this structure; it keeps the ``k`` best-ranked distinct matches seen so
    far (a bounded min-heap, maintained as a sorted list because ``k`` is
    small) and deduplicates by match identity -- the same subsequence pair
    re-verified at a larger radius is not a new candidate.  The final
    contents depend only on the *set* of matches fed in, never on their
    arrival order, which is the property the sharded/unsharded equivalence
    rests on.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        self.k = k
        self._entries: List[Tuple[tuple, SubsequenceMatch]] = []
        self._seen: set = set()

    def add(self, match: SubsequenceMatch) -> bool:
        """Offer a candidate; returns whether it entered the pool."""
        identity = match_identity(match)
        if identity in self._seen:
            return False
        self._seen.add(identity)
        key = match_ranking_key(match)
        if len(self._entries) == self.k and key >= self._entries[-1][0]:
            return False
        bisect.insort(self._entries, (key, match))
        if len(self._entries) > self.k:
            self._entries.pop()
        return True

    @property
    def full(self) -> bool:
        """Whether the pool holds ``k`` candidates (the sweep's stop signal)."""
        return len(self._entries) == self.k

    def ranked(self) -> List[SubsequenceMatch]:
        """The candidates, best first."""
        return [match for _key, match in self._entries]

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class QueryStats:
    """Work accounting for one framework query.

    Attributes
    ----------
    segments_extracted:
        Number of query segments considered (step 3).
    index_distance_computations:
        Fresh distance evaluations spent inside the index during step 4.
    index_cache_hits:
        Step-4 distance requests answered by the matcher's distance cache
        (no kernel was run); counted separately so the computation counts
        keep matching the paper's definition.
    verification_distance_computations:
        Fresh distance evaluations spent verifying candidates during step 5.
    verification_cache_hits:
        Step-5 distance requests answered by the distance cache.
    segment_matches:
        Number of (segment, window) pairs produced by step 4.
    candidate_chains:
        Number of candidate chains examined in step 5.
    naive_distance_computations:
        What a linear scan would have spent in step 4 (segments x windows);
        the ratio against ``index_distance_computations`` is the paper's
        pruning ratio ``alpha``.
    prefilter_evaluations:
        Lower-bound evaluations performed in front of the step-4 kernels
        (see :mod:`repro.distances.lower_bounds`); 0 unless the backing
        index prefilters (the matcher's linear scan does by default).
    prefilter_pruned:
        Prefilter evaluations that proved the pair outside the radius, i.e.
        kernel executions skipped for the cost of an O(n) bound.
    stage_timings:
        Wall-clock seconds per pipeline stage (``segment``, ``probe``,
        ``chain``, ``verify``), as measured by the query-execution pipeline.
        Prefilter time is part of ``probe`` (the bounds run inside the
        batched kernel dispatch); its effect is visible through the
        prefilter counters instead.
    cpu_stage_timings:
        CPU seconds per pipeline stage: the orchestrating thread's CPU time
        plus the summed per-worker CPU time of every parallel work unit.
        Under the serial executor this tracks ``stage_timings``; under a
        parallel executor the CPU sum can exceed the wall-clock (several
        workers burning CPU simultaneously), which is exactly the "work
        that does not show up in wall-clock" a parallel run would otherwise
        appear to lose.
    executor / workers:
        The execution engine that answered the query and its worker count
        (see :mod:`repro.core.executor`).
    kernel_backend:
        The distance-kernel tier that served the query's DP sweeps --
        ``"numpy"`` for the vectorized row sweeps, or a compiled provider
        name (``"numba"``/``"cc"``/``"pyloop"``); see
        :mod:`repro.distances.backend`.  Every tier returns identical
        values, so this label never explains a result difference -- only a
        speed difference.
    transport:
        The configured payload transport for process-pool work units:
        ``"auto"``, ``"pickle"``, or ``"shared"`` (see
        :attr:`~repro.core.config.MatcherConfig.transport`).  Like the
        kernel backend, this label never explains a result difference --
        only how window tensors reached the workers.
    shards:
        Number of matcher shards that contributed to these statistics (1
        for a plain matcher; see
        :class:`~repro.core.sharded.ShardedMatcher`).
    passes:
        Per-pass history for queries that repeat steps 3-5 (Type III's
        radius sweep): one :class:`QueryStats` per pass, in execution
        order.  For such queries the flat counters above follow
        :meth:`merged`'s convention -- work counters are summed over the
        passes while the shape counters describe the final pass.
    """

    segments_extracted: int = 0
    index_distance_computations: int = 0
    verification_distance_computations: int = 0
    segment_matches: int = 0
    candidate_chains: int = 0
    naive_distance_computations: int = 0
    index_cache_hits: int = 0
    verification_cache_hits: int = 0
    prefilter_evaluations: int = 0
    prefilter_pruned: int = 0
    stage_timings: Dict[str, float] = field(default_factory=dict)
    cpu_stage_timings: Dict[str, float] = field(default_factory=dict)
    executor: str = "serial"
    workers: int = 1
    kernel_backend: str = "numpy"
    transport: str = "auto"
    shards: int = 1
    passes: List["QueryStats"] = field(default_factory=list)

    @property
    def total_distance_computations(self) -> int:
        """All fresh distance evaluations performed while answering the query."""
        return self.index_distance_computations + self.verification_distance_computations

    @property
    def total_cache_hits(self) -> int:
        """All distance requests the cache answered while answering the query."""
        return self.index_cache_hits + self.verification_cache_hits

    @property
    def pruning_ratio(self) -> float:
        """Fraction of naive step-4 distance computations avoided (``alpha``)."""
        if self.naive_distance_computations == 0:
            return 0.0
        saved = self.naive_distance_computations - self.index_distance_computations
        return max(0.0, saved / self.naive_distance_computations)

    @property
    def prefilter_prune_ratio(self) -> float:
        """Fraction of prefilter evaluations that skipped a kernel."""
        if self.prefilter_evaluations == 0:
            return 0.0
        return self.prefilter_pruned / self.prefilter_evaluations

    @classmethod
    def merged(cls, passes: TypingSequence["QueryStats"]) -> "QueryStats":
        """Aggregate the stats of repeated step-3/4/5 passes (Type III).

        Work counters (distance computations, cache hits, prefilter
        evaluations, wall-clock and CPU stage timings) are summed across
        the passes -- that is what answering the query actually cost --
        while the shape counters (``segments_extracted``,
        ``segment_matches``, ``candidate_chains``,
        ``naive_distance_computations``) report the *final* pass, the one
        that produced the answer.  The full per-pass history is kept in
        :attr:`passes`.
        """
        if not passes:
            return cls()
        final = passes[-1]
        total = cls(
            segments_extracted=final.segments_extracted,
            segment_matches=final.segment_matches,
            candidate_chains=final.candidate_chains,
            naive_distance_computations=final.naive_distance_computations,
            index_distance_computations=sum(p.index_distance_computations for p in passes),
            verification_distance_computations=sum(
                p.verification_distance_computations for p in passes
            ),
            index_cache_hits=sum(p.index_cache_hits for p in passes),
            verification_cache_hits=sum(p.verification_cache_hits for p in passes),
            prefilter_evaluations=sum(p.prefilter_evaluations for p in passes),
            prefilter_pruned=sum(p.prefilter_pruned for p in passes),
            executor=final.executor,
            workers=final.workers,
            kernel_backend=final.kernel_backend,
            transport=final.transport,
            shards=final.shards,
        )
        for stats in passes:
            for stage, seconds in stats.stage_timings.items():
                total.stage_timings[stage] = total.stage_timings.get(stage, 0.0) + seconds
            for stage, seconds in stats.cpu_stage_timings.items():
                total.cpu_stage_timings[stage] = (
                    total.cpu_stage_timings.get(stage, 0.0) + seconds
                )
        total.passes = list(passes)
        return total

    @classmethod
    def across_shards(cls, shard_stats: TypingSequence["QueryStats"]) -> "QueryStats":
        """Combine per-shard statistics into one record (sharded matchers).

        Every shard answered the *same* query over *its* partition of the
        windows, so ``segments_extracted`` is taken from the first shard
        (each extracted the identical segment set) while everything else --
        work counters, matches, chains, the naive denominator, and both
        timing dictionaries -- sums across shards.  ``shards`` records the
        fan-out width; the per-shard records are kept in :attr:`passes`.
        """
        if not shard_stats:
            return cls()
        first = shard_stats[0]
        total = cls(
            segments_extracted=first.segments_extracted,
            segment_matches=sum(s.segment_matches for s in shard_stats),
            candidate_chains=sum(s.candidate_chains for s in shard_stats),
            naive_distance_computations=sum(
                s.naive_distance_computations for s in shard_stats
            ),
            index_distance_computations=sum(
                s.index_distance_computations for s in shard_stats
            ),
            verification_distance_computations=sum(
                s.verification_distance_computations for s in shard_stats
            ),
            index_cache_hits=sum(s.index_cache_hits for s in shard_stats),
            verification_cache_hits=sum(s.verification_cache_hits for s in shard_stats),
            prefilter_evaluations=sum(s.prefilter_evaluations for s in shard_stats),
            prefilter_pruned=sum(s.prefilter_pruned for s in shard_stats),
            executor=first.executor,
            workers=first.workers,
            kernel_backend=first.kernel_backend,
            transport=first.transport,
            shards=len(shard_stats),
        )
        for stats in shard_stats:
            for stage, seconds in stats.stage_timings.items():
                total.stage_timings[stage] = total.stage_timings.get(stage, 0.0) + seconds
            for stage, seconds in stats.cpu_stage_timings.items():
                total.cpu_stage_timings[stage] = (
                    total.cpu_stage_timings.get(stage, 0.0) + seconds
                )
        total.passes = list(shard_stats)
        return total


@dataclass
class QueryResult:
    """The uniform answer envelope of ``execute()`` -- every backend, every
    query type.

    Attributes
    ----------
    query:
        Echo of the spec that was executed (with its bound sequence).
    matches:
        The verified matches, after the spec's ``limit``/``offset`` paging.
        Type II/III put their single best match (or nothing) here; Type I
        and top-k put their full (paged) result list, best-first for top-k.
    total_matches:
        Match count *before* paging, so a pager knows when to stop.
    stats:
        The :class:`QueryStats` work accounting for the whole query.
    error:
        ``None`` on success; on a query that failed with a
        :class:`~repro.exceptions.QueryError` inside ``execute_many()``
        (e.g. a Type III query with no segment match at ``max_radius``),
        the error message -- the envelope then carries no matches.
    """

    query: BaseQuery
    matches: List[SubsequenceMatch]
    total_matches: int
    stats: QueryStats
    error: Optional[str] = None

    @classmethod
    def build(
        cls,
        spec: BaseQuery,
        matches: TypingSequence[SubsequenceMatch],
        stats: QueryStats,
        error: Optional[str] = None,
    ) -> "QueryResult":
        """Assemble the envelope, applying the spec's result paging."""
        matches = list(matches)
        total = len(matches)
        paged = matches[spec.offset :] if spec.offset else matches
        if spec.limit is not None:
            paged = paged[: spec.limit]
        return cls(query=spec, matches=paged, total_matches=total, stats=stats, error=error)

    @property
    def best(self) -> Optional[SubsequenceMatch]:
        """The first (best) match, or ``None`` -- the single-result view."""
        return self.matches[0] if self.matches else None

    def __iter__(self) -> Iterator[SubsequenceMatch]:
        return iter(self.matches)

    def __len__(self) -> int:
        return len(self.matches)

    def __bool__(self) -> bool:
        return bool(self.matches)
