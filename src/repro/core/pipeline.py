"""The staged query-execution pipeline behind every matcher query.

The paper's framework is a pipeline by construction -- window partitioning,
segment extraction, index range search, chaining, verification -- but until
this module existed the online half (steps 3-5) was re-orchestrated inside
each of the matcher's query methods as a per-segment Python loop.
:class:`QueryPipeline` makes the pipeline explicit: every query type is
decomposed into the same named stages

``segment``
    extract the query segments (step 3), memoized per query object so a
    Type III radius sweep extracts them once;
``prefilter``
    cheap lower bounds in front of the DP kernels (see
    :mod:`repro.distances.lower_bounds`) -- executed inside the batched
    probe's kernel dispatch and accounted through the
    :class:`~repro.indexing.stats.DistanceCounter` prefilter tallies;
``probe``
    the step-4 range search over every segment.  Under the serial executor
    this is one :meth:`~repro.indexing.base.MetricIndex.batch_range_query`
    call; under a parallel executor the index splits the batch into
    independent work units
    (:meth:`~repro.indexing.base.MetricIndex.query_work_units` -- per
    segment for the tree indexes, per segment x shape group for the linear
    scan) which fan out over the configured
    :class:`~repro.core.executor.Executor`;
``chain``
    concatenate consecutive window matches into candidate chains (step 5a);
``verify``
    turn chains into verified subsequence matches (step 5b), with one
    strategy per query type.  Chains are independent, so query types
    without early-exit dependencies (Type I without a result cap, each
    Type III pass) verify them as parallel work units too; Type II keeps
    its longest-first early break and verifies serially.

Whatever the executor, a query returns **byte-identical results and
identical work counters** to the serial path: parallel units run against
recorded overlays and their logs are replayed serially afterwards (see
:mod:`repro.distances.recording` for the argument why this is exact).

Each stage records wall-clock time into
:attr:`~repro.core.queries.QueryStats.stage_timings` and CPU time (the
orchestrating thread plus every worker) into
:attr:`~repro.core.queries.QueryStats.cpu_stage_timings`; the counter-based
accounting (fresh computations, cache hits, prefilter evaluations) lands in
the same :class:`~repro.core.queries.QueryStats`, which is what the CLI's
``repro search --stats`` table and the analysis helpers report.

New workloads plug in as verification strategies over the shared front half
(:meth:`QueryPipeline.probe`), instead of duplicating the step-3/4
orchestration again.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.candidates import CandidateChain, chain_segment_matches
from repro.core.config import MatcherConfig
from repro.core.executor import Executor, WorkTask, make_executor
from repro.core.queries import (
    LongestSubsequenceQuery,
    QueryStats,
    RangeQuery,
    SegmentMatch,
    SubsequenceMatch,
)
from repro.core.segmentation import extract_query_segments
from repro.core.verification import _VerificationCounter, enumerate_matches, verify_chain
from repro.distances.backend import active_kernel_name, kernel_scope
from repro.distances.base import Distance
from repro.distances.cache import DistanceCache
from repro.distances.recording import RecordingVerifyCache
from repro.indexing.base import MetricIndex, chunk_positions, run_query_work_units
from repro.sequences.database import SequenceDatabase
from repro.sequences.sequence import Sequence
from repro.sequences.windows import Window


@dataclass
class ProbeResult:
    """Output of the pipeline's front half (segment -> prefilter -> probe)."""

    #: The (segment, window) pairs produced by the batched index probe.
    matches: List[SegmentMatch]
    #: Step-3/4 accounting (segments, computations, prefilter, timings).
    stats: QueryStats


class QueryPipeline:
    """Executes the framework's online steps as explicit, accounted stages.

    The pipeline is stateless between queries apart from a one-slot segment
    memo: the most recent query object's extracted segments are kept so that
    repeated passes over the same query (Type III's binary search and radius
    sweep) skip re-extraction.  All distance-level sharing goes through the
    matcher's :class:`~repro.distances.cache.DistanceCache`, which the
    pipeline only observes through the index counter.

    The execution substrate is owned here: the pipeline builds (or is
    handed) an :class:`~repro.core.executor.Executor` from the matcher
    configuration and submits the probe and verify work units to it.
    """

    def __init__(
        self,
        database: SequenceDatabase,
        distance: Distance,
        config: MatcherConfig,
        index: MetricIndex,
        windows_by_key: dict,
        cache: Optional[DistanceCache] = None,
        executor: Optional[Executor] = None,
    ) -> None:
        self.database = database
        self.distance = distance
        self.config = config
        self.index = index
        self._windows_by_key = windows_by_key
        self.cache = cache
        self.executor = (
            executor
            if executor is not None
            else make_executor(config.executor, config.workers)
        )
        self._segment_memo: Optional[Tuple[Sequence, List[Window]]] = None
        # Monotonic insertion stamps backing the canonical probe order.
        # Maintained incrementally through note_window_added/removed so the
        # hot path never pays an O(windows) rebuild; relative order is all
        # the sort needs, so deletions simply drop their stamp.
        self._window_order = {key: stamp for stamp, key in enumerate(windows_by_key)}
        self._next_window_stamp = len(self._window_order)

    def note_window_added(self, key) -> None:
        """Record a window appended by the matcher's incremental update path."""
        self._window_order[key] = self._next_window_stamp
        self._next_window_stamp += 1

    def note_window_removed(self, key) -> None:
        """Forget a window deleted by the matcher's incremental update path."""
        del self._window_order[key]

    @property
    def window_count(self) -> int:
        """Number of database windows currently indexed.

        Computed live from the shared window dictionary (the matcher mutates
        it in place on :meth:`~repro.core.matcher.SubsequenceMatcher.add_sequence`
        / ``remove_sequence``), so the naive-cost denominator in the stats
        always reflects the database the query actually ran against.
        """
        return len(self._windows_by_key)

    def _new_stats(self) -> QueryStats:
        return QueryStats(
            executor=self.executor.name,
            workers=self.executor.workers,
            kernel_backend=active_kernel_name(),
            transport=self.config.transport,
        )

    # ------------------------------------------------------------------ #
    # Stage: segment (step 3)
    # ------------------------------------------------------------------ #
    def segments_for(self, query: Sequence) -> List[Window]:
        """Extract (or recall) the query segments of every admissible length."""
        memo = self._segment_memo
        if memo is not None and memo[0] is query:
            return memo[1]
        segments = extract_query_segments(query, self.config)
        self._segment_memo = (query, segments)
        return segments

    # ------------------------------------------------------------------ #
    # Stages: segment -> prefilter -> probe (steps 3-4)
    # ------------------------------------------------------------------ #
    def probe(self, query: Sequence, radius: float) -> ProbeResult:
        """Run the pipeline's front half and return matches plus accounting.

        The whole stage runs under the configured kernel scope (see
        :attr:`~repro.core.config.MatcherConfig.kernel`), so every DP sweep
        it triggers -- directly or from worker threads -- is served by the
        selected backend; the resolved backend name is recorded on the
        returned stats.
        """
        with kernel_scope(self.config.kernel):
            return self._probe(query, radius)

    def _probe(self, query: Sequence, radius: float) -> ProbeResult:
        stats = self._new_stats()
        started = time.perf_counter()
        cpu_started = time.thread_time()
        segments = self.segments_for(query)
        stats.stage_timings["segment"] = time.perf_counter() - started
        stats.cpu_stage_timings["segment"] = time.thread_time() - cpu_started
        stats.segments_extracted = len(segments)
        stats.naive_distance_computations = len(segments) * self.window_count

        counter = self.index.counter
        counter.checkpoint()
        started = time.perf_counter()
        cpu_started = time.thread_time()
        sequences = [segment.sequence for segment in segments]
        if self.executor.is_parallel:
            units = self.index.query_work_units(sequences, radius)
            per_segment, worker_cpu = run_query_work_units(
                self.index,
                units,
                len(sequences),
                self.executor,
                log_format=self.config.log_format,
                transport=self.config.transport,
            )
        else:
            per_segment = self.index.batch_range_query(sequences, radius)
            worker_cpu = 0.0
        # Canonical match order: hits within a segment are sorted by window
        # insertion order, so the (segment, window) pairs -- and everything
        # chaining and verification derive from them -- are identical no
        # matter which index class produced them, how its internal topology
        # evolved through incremental updates, or which executor ran the
        # probe.  This is the invariant the incremental-vs-rebuild,
        # snapshot, and parallel-equivalence guarantees rest on; for the
        # linear scan and the reference index it is a no-op (they already
        # enumerate items in insertion order).
        window_order = self._window_order
        matches: List[SegmentMatch] = []
        for segment, hits in zip(segments, per_segment):
            for hit in sorted(hits, key=lambda hit: window_order[hit.key]):
                window = self._windows_by_key[hit.key]
                matches.append(
                    SegmentMatch(
                        query_start=segment.start,
                        query_length=segment.length,
                        window=window,
                        distance=hit.distance,
                    )
                )
        stats.stage_timings["probe"] = time.perf_counter() - started
        stats.cpu_stage_timings["probe"] = (
            time.thread_time() - cpu_started
        ) + worker_cpu
        stats.index_distance_computations = counter.since_checkpoint()
        stats.index_cache_hits = counter.cache_hits_since_checkpoint()
        stats.prefilter_evaluations = counter.prefilter_since_checkpoint()
        stats.prefilter_pruned = counter.prefilter_pruned_since_checkpoint()
        stats.segment_matches = len(matches)
        return ProbeResult(matches, stats)

    # ------------------------------------------------------------------ #
    # Stage: chain (step 5a)
    # ------------------------------------------------------------------ #
    def chain(self, matches: List[SegmentMatch], stats: QueryStats) -> List[CandidateChain]:
        """Concatenate consecutive window matches into candidate chains."""
        started = time.perf_counter()
        cpu_started = time.thread_time()
        chains = chain_segment_matches(matches, self.config)
        stats.stage_timings["chain"] = time.perf_counter() - started
        stats.cpu_stage_timings["chain"] = time.thread_time() - cpu_started
        stats.candidate_chains = len(chains)
        return chains

    # ------------------------------------------------------------------ #
    # Stage: verify (step 5b) -- shared machinery
    # ------------------------------------------------------------------ #
    def verify_with_fallback(
        self,
        chain: CandidateChain,
        query: Sequence,
        radius: float,
        counter: _VerificationCounter,
        cache=None,
    ) -> Optional[SubsequenceMatch]:
        """Verify ``chain``; on failure, retry its halves recursively.

        Maximal chains can over-reach: a long, partly mis-stitched chain may
        span regions whose overall distance exceeds the radius even though a
        sub-chain supports a perfectly good match.  Splitting a failed chain
        in half and retrying costs at most a logarithmic factor in extra
        verifications and guarantees that every single-window match is still
        considered.

        ``cache`` defaults to the matcher's shared distance cache; parallel
        verification units pass their private recording overlay instead.
        """
        if cache is None:
            cache = self.cache
        db_sequence = self.database[chain.source_id]
        verified = verify_chain(
            chain,
            query,
            db_sequence,
            self.distance,
            radius,
            self.config,
            counter,
            cache=cache,
        )
        if verified is not None or chain.window_count == 1:
            return verified
        middle = chain.window_count // 2
        halves = (
            CandidateChain(chain.source_id, chain.matches[:middle]),
            CandidateChain(chain.source_id, chain.matches[middle:]),
        )
        best: Optional[SubsequenceMatch] = None
        for half in halves:
            candidate = self.verify_with_fallback(half, query, radius, counter, cache=cache)
            if candidate is None:
                continue
            if (
                best is None
                or candidate.length > best.length
                or (candidate.length == best.length and candidate.distance < best.distance)
            ):
                best = candidate
        return best

    def _verify_all_chains(
        self,
        chains: List[CandidateChain],
        counter: _VerificationCounter,
        runner: Callable[[CandidateChain, object, _VerificationCounter], object],
    ) -> Tuple[List[object], float]:
        """Run ``runner`` over every chain; results come back in chain order.

        Chains are mutually independent given a fixed radius, so under a
        parallel executor each becomes a work unit with a private
        :class:`~repro.distances.recording.RecordingVerifyCache`; the unit
        logs are replayed in chain order into the shared cache and
        ``counter`` afterwards, reproducing the serial accounting exactly.
        Returns the per-chain results plus the summed worker CPU seconds.
        """
        if (
            not self.executor.is_parallel
            or not self.executor.runs_local_tasks_concurrently
            or len(chains) <= 1
        ):
            # Verification units have no remote phase, so an executor that
            # cannot overlap local tasks (the process pool runs them one
            # by one in the parent) gains nothing from the recording
            # bookkeeping -- run the plain serial loop.
            return [runner(chain, self.cache, counter) for chain in chains], 0.0
        recordings: List[RecordingVerifyCache] = [
            RecordingVerifyCache(self.cache, log_format=self.config.log_format)
            for _chain in chains
        ]
        # Contiguous chunks of chains per task: candidate chains number in
        # the thousands and most verify in microseconds, so per-chain
        # futures would cost more than the verification itself.  Chunks are
        # cut by accumulated chain weight (window counts) so one monster
        # chain does not serialize a whole fixed-size chunk behind it.
        chunks = chunk_positions(
            len(chains),
            self.executor.workers,
            costs=[float(chain.window_count) for chain in chains],
        )
        tasks: List[WorkTask] = []
        for positions in chunks:

            def local(positions=positions):
                return [
                    runner(chains[p], recordings[p], _VerificationCounter())
                    for p in positions
                ]

            tasks.append(WorkTask(local))
        results = self.executor.run(tasks)
        for recording in recordings:
            recording.replay_into(self.cache, counter)
        per_chain: List[object] = []
        for result in results:
            per_chain.extend(result.value)
        return per_chain, sum(result.worker_cpu_seconds for result in results)

    @staticmethod
    def _finish_verify(
        stats: QueryStats,
        counter: _VerificationCounter,
        started: float,
        cpu_started: float,
        worker_cpu: float = 0.0,
    ) -> None:
        """Fold the verification counter and timings into ``stats``."""
        stats.stage_timings["verify"] = time.perf_counter() - started
        stats.cpu_stage_timings["verify"] = (
            time.thread_time() - cpu_started
        ) + worker_cpu
        stats.verification_distance_computations = counter.count
        stats.verification_cache_hits = counter.cache_hits

    # ------------------------------------------------------------------ #
    # Query strategies: one full pipeline run per query type
    # ------------------------------------------------------------------ #
    def run_range(
        self, query: Sequence, spec: RangeQuery
    ) -> Tuple[List[SubsequenceMatch], QueryStats]:
        """Type I: every (deduplicated) verified pair within the radius.

        Without a result cap every chain is verified, so the chains fan out
        as parallel verification units; with ``max_results`` the serial
        early-exit loop is kept (stopping after the n-th verified pair is a
        sequential dependency by definition).
        """
        with kernel_scope(self.config.kernel):
            return self._run_range(query, spec)

    def _run_range(
        self, query: Sequence, spec: RangeQuery
    ) -> Tuple[List[SubsequenceMatch], QueryStats]:
        probe = self.probe(query, spec.radius)
        stats = probe.stats
        chains = self.chain(probe.matches, stats)

        counter = _VerificationCounter()
        started = time.perf_counter()
        cpu_started = time.thread_time()

        def runner(chain, cache, chain_counter):
            if spec.exhaustive:
                return enumerate_matches(
                    chain,
                    query,
                    self.database[chain.source_id],
                    self.distance,
                    spec.radius,
                    self.config,
                    chain_counter,
                    max_results=spec.max_results,
                    cache=cache,
                )
            verified = self.verify_with_fallback(
                chain, query, spec.radius, chain_counter, cache=cache
            )
            return [verified] if verified is not None else []

        results: List[SubsequenceMatch] = []
        seen = set()

        def keep(match: SubsequenceMatch) -> None:
            identity = (
                match.source_id,
                match.query_start,
                match.query_stop,
                match.db_start,
                match.db_stop,
            )
            if identity not in seen:
                seen.add(identity)
                results.append(match)

        if spec.max_results is None:
            per_chain, worker_cpu = self._verify_all_chains(chains, counter, runner)
            for found in per_chain:
                for match in found:
                    keep(match)
            self._finish_verify(stats, counter, started, cpu_started, worker_cpu)
            return results, stats

        for chain in chains:
            for match in runner(chain, self.cache, counter):
                keep(match)
                if len(results) >= spec.max_results:
                    self._finish_verify(stats, counter, started, cpu_started)
                    return results, stats
        self._finish_verify(stats, counter, started, cpu_started)
        return results, stats

    def run_longest(
        self, query: Sequence, spec: LongestSubsequenceQuery
    ) -> Tuple[Optional[SubsequenceMatch], QueryStats]:
        """Type II: longest verified pair, chains examined longest first.

        A chain of ``k`` concatenated windows can support a match of length
        up to ``(k + 2) * lambda / 2``, so once a chain verifies, shorter
        chains that cannot possibly beat the verified length are skipped.
        That skip makes every verification depend on the previous ones, so
        Type II verification always runs serially (the probe still
        parallelizes); speculative parallel verification would change the
        work counters, which the executor contract forbids.
        """
        with kernel_scope(self.config.kernel):
            return self._run_longest(query, spec)

    def _run_longest(
        self, query: Sequence, spec: LongestSubsequenceQuery
    ) -> Tuple[Optional[SubsequenceMatch], QueryStats]:
        probe = self.probe(query, spec.radius)
        stats = probe.stats
        chains = self.chain(probe.matches, stats)

        counter = _VerificationCounter()
        started = time.perf_counter()
        cpu_started = time.thread_time()
        best: Optional[SubsequenceMatch] = None
        for chain in chains:
            potential = (chain.window_count + 2) * self.config.window_length
            if best is not None and potential <= best.length:
                break
            verified = self.verify_with_fallback(chain, query, spec.radius, counter)
            if verified is None:
                continue
            if (
                best is None
                or verified.length > best.length
                or (verified.length == best.length and verified.distance < best.distance)
            ):
                best = verified
        self._finish_verify(stats, counter, started, cpu_started)
        return best, stats

    def run_scored_pass(
        self, query: Sequence, radius: float
    ) -> Tuple[List[SubsequenceMatch], QueryStats]:
        """One fixed-radius verification pass: every chain's verified match.

        The shared engine behind Type III and top-k: every chain is
        verified (no early exit), so the chains fan out as parallel
        verification units, and the locally-maximal match of each verifying
        chain is returned in chain order.  The matchers' radius sweep ranks
        the matches through a k-bounded candidate heap ordered by the
        deterministic :func:`~repro.core.queries.match_ranking_key`
        (``k=1`` is the classic nearest query), so the distance work of a
        pass is identical whichever ``k`` consumes it.
        """
        with kernel_scope(self.config.kernel):
            return self._run_scored_pass(query, radius)

    def _run_scored_pass(
        self, query: Sequence, radius: float
    ) -> Tuple[List[SubsequenceMatch], QueryStats]:
        probe = self.probe(query, radius)
        stats = probe.stats
        chains = self.chain(probe.matches, stats)

        counter = _VerificationCounter()
        started = time.perf_counter()
        cpu_started = time.thread_time()

        def runner(chain, cache, chain_counter):
            return self.verify_with_fallback(chain, query, radius, chain_counter, cache=cache)

        per_chain, worker_cpu = self._verify_all_chains(chains, counter, runner)
        matches = [verified for verified in per_chain if verified is not None]
        self._finish_verify(stats, counter, started, cpu_started, worker_cpu)
        return matches, stats
