"""The staged query-execution pipeline behind every matcher query.

The paper's framework is a pipeline by construction -- window partitioning,
segment extraction, index range search, chaining, verification -- but until
this module existed the online half (steps 3-5) was re-orchestrated inside
each of the matcher's query methods as a per-segment Python loop.
:class:`QueryPipeline` makes the pipeline explicit: every query type is
decomposed into the same named stages

``segment``
    extract the query segments (step 3), memoized per query object so a
    Type III radius sweep extracts them once;
``prefilter``
    cheap lower bounds in front of the DP kernels (see
    :mod:`repro.distances.lower_bounds`) -- executed inside the batched
    probe's kernel dispatch and accounted through the
    :class:`~repro.indexing.stats.DistanceCounter` prefilter tallies;
``probe``
    one :meth:`~repro.indexing.base.MetricIndex.batch_range_query` call
    covering every segment (step 4), so indexes with batched execution run
    one grouped kernel sweep per segment instead of one kernel per pair;
``chain``
    concatenate consecutive window matches into candidate chains (step 5a);
``verify``
    turn chains into verified subsequence matches (step 5b), with one
    strategy per query type.

Each stage records wall-clock time into
:attr:`~repro.core.queries.QueryStats.stage_timings` and the counter-based
accounting (fresh computations, cache hits, prefilter evaluations) lands in
the same :class:`~repro.core.queries.QueryStats`, which is what the CLI's
``repro search --stats`` table and the analysis helpers report.

New workloads plug in as verification strategies over the shared front half
(:meth:`QueryPipeline.probe`), instead of duplicating the step-3/4
orchestration again.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.candidates import CandidateChain, chain_segment_matches
from repro.core.config import MatcherConfig
from repro.core.queries import (
    LongestSubsequenceQuery,
    QueryStats,
    RangeQuery,
    SegmentMatch,
    SubsequenceMatch,
)
from repro.core.segmentation import extract_query_segments
from repro.core.verification import _VerificationCounter, enumerate_matches, verify_chain
from repro.distances.base import Distance
from repro.distances.cache import DistanceCache
from repro.indexing.base import MetricIndex
from repro.sequences.database import SequenceDatabase
from repro.sequences.sequence import Sequence
from repro.sequences.windows import Window


@dataclass
class ProbeResult:
    """Output of the pipeline's front half (segment -> prefilter -> probe)."""

    #: The (segment, window) pairs produced by the batched index probe.
    matches: List[SegmentMatch]
    #: Step-3/4 accounting (segments, computations, prefilter, timings).
    stats: QueryStats


class QueryPipeline:
    """Executes the framework's online steps as explicit, accounted stages.

    The pipeline is stateless between queries apart from a one-slot segment
    memo: the most recent query object's extracted segments are kept so that
    repeated passes over the same query (Type III's binary search and radius
    sweep) skip re-extraction.  All distance-level sharing goes through the
    matcher's :class:`~repro.distances.cache.DistanceCache`, which the
    pipeline only observes through the index counter.
    """

    def __init__(
        self,
        database: SequenceDatabase,
        distance: Distance,
        config: MatcherConfig,
        index: MetricIndex,
        windows_by_key: dict,
        cache: Optional[DistanceCache] = None,
    ) -> None:
        self.database = database
        self.distance = distance
        self.config = config
        self.index = index
        self._windows_by_key = windows_by_key
        self.cache = cache
        self._segment_memo: Optional[Tuple[Sequence, List[Window]]] = None
        # Monotonic insertion stamps backing the canonical probe order.
        # Maintained incrementally through note_window_added/removed so the
        # hot path never pays an O(windows) rebuild; relative order is all
        # the sort needs, so deletions simply drop their stamp.
        self._window_order = {key: stamp for stamp, key in enumerate(windows_by_key)}
        self._next_window_stamp = len(self._window_order)

    def note_window_added(self, key) -> None:
        """Record a window appended by the matcher's incremental update path."""
        self._window_order[key] = self._next_window_stamp
        self._next_window_stamp += 1

    def note_window_removed(self, key) -> None:
        """Forget a window deleted by the matcher's incremental update path."""
        del self._window_order[key]

    @property
    def window_count(self) -> int:
        """Number of database windows currently indexed.

        Computed live from the shared window dictionary (the matcher mutates
        it in place on :meth:`~repro.core.matcher.SubsequenceMatcher.add_sequence`
        / ``remove_sequence``), so the naive-cost denominator in the stats
        always reflects the database the query actually ran against.
        """
        return len(self._windows_by_key)

    # ------------------------------------------------------------------ #
    # Stage: segment (step 3)
    # ------------------------------------------------------------------ #
    def segments_for(self, query: Sequence) -> List[Window]:
        """Extract (or recall) the query segments of every admissible length."""
        memo = self._segment_memo
        if memo is not None and memo[0] is query:
            return memo[1]
        segments = extract_query_segments(query, self.config)
        self._segment_memo = (query, segments)
        return segments

    # ------------------------------------------------------------------ #
    # Stages: segment -> prefilter -> probe (steps 3-4)
    # ------------------------------------------------------------------ #
    def probe(self, query: Sequence, radius: float) -> ProbeResult:
        """Run the pipeline's front half and return matches plus accounting."""
        stats = QueryStats()
        started = time.perf_counter()
        segments = self.segments_for(query)
        stats.stage_timings["segment"] = time.perf_counter() - started
        stats.segments_extracted = len(segments)
        stats.naive_distance_computations = len(segments) * self.window_count

        counter = self.index.counter
        counter.checkpoint()
        started = time.perf_counter()
        per_segment = self.index.batch_range_query(
            [segment.sequence for segment in segments], radius
        )
        # Canonical match order: hits within a segment are sorted by window
        # insertion order, so the (segment, window) pairs -- and everything
        # chaining and verification derive from them -- are identical no
        # matter which index class produced them or how its internal
        # topology evolved through incremental updates.  This is the
        # invariant the incremental-vs-rebuild and snapshot guarantees rest
        # on; for the linear scan and the reference index it is a no-op
        # (they already enumerate items in insertion order).
        window_order = self._window_order
        matches: List[SegmentMatch] = []
        for segment, hits in zip(segments, per_segment):
            for hit in sorted(hits, key=lambda hit: window_order[hit.key]):
                window = self._windows_by_key[hit.key]
                matches.append(
                    SegmentMatch(
                        query_start=segment.start,
                        query_length=segment.length,
                        window=window,
                        distance=hit.distance,
                    )
                )
        stats.stage_timings["probe"] = time.perf_counter() - started
        stats.index_distance_computations = counter.since_checkpoint()
        stats.index_cache_hits = counter.cache_hits_since_checkpoint()
        stats.prefilter_evaluations = counter.prefilter_since_checkpoint()
        stats.prefilter_pruned = counter.prefilter_pruned_since_checkpoint()
        stats.segment_matches = len(matches)
        return ProbeResult(matches, stats)

    # ------------------------------------------------------------------ #
    # Stage: chain (step 5a)
    # ------------------------------------------------------------------ #
    def chain(self, matches: List[SegmentMatch], stats: QueryStats) -> List[CandidateChain]:
        """Concatenate consecutive window matches into candidate chains."""
        started = time.perf_counter()
        chains = chain_segment_matches(matches, self.config)
        stats.stage_timings["chain"] = time.perf_counter() - started
        stats.candidate_chains = len(chains)
        return chains

    # ------------------------------------------------------------------ #
    # Stage: verify (step 5b) -- shared machinery
    # ------------------------------------------------------------------ #
    def verify_with_fallback(
        self,
        chain: CandidateChain,
        query: Sequence,
        radius: float,
        counter: _VerificationCounter,
    ) -> Optional[SubsequenceMatch]:
        """Verify ``chain``; on failure, retry its halves recursively.

        Maximal chains can over-reach: a long, partly mis-stitched chain may
        span regions whose overall distance exceeds the radius even though a
        sub-chain supports a perfectly good match.  Splitting a failed chain
        in half and retrying costs at most a logarithmic factor in extra
        verifications and guarantees that every single-window match is still
        considered.
        """
        db_sequence = self.database[chain.source_id]
        verified = verify_chain(
            chain,
            query,
            db_sequence,
            self.distance,
            radius,
            self.config,
            counter,
            cache=self.cache,
        )
        if verified is not None or chain.window_count == 1:
            return verified
        middle = chain.window_count // 2
        halves = (
            CandidateChain(chain.source_id, chain.matches[:middle]),
            CandidateChain(chain.source_id, chain.matches[middle:]),
        )
        best: Optional[SubsequenceMatch] = None
        for half in halves:
            candidate = self.verify_with_fallback(half, query, radius, counter)
            if candidate is None:
                continue
            if (
                best is None
                or candidate.length > best.length
                or (candidate.length == best.length and candidate.distance < best.distance)
            ):
                best = candidate
        return best

    @staticmethod
    def _finish_verify(
        stats: QueryStats, counter: _VerificationCounter, started: float
    ) -> None:
        """Fold the verification counter and timing into ``stats``."""
        stats.stage_timings["verify"] = time.perf_counter() - started
        stats.verification_distance_computations = counter.count
        stats.verification_cache_hits = counter.cache_hits

    # ------------------------------------------------------------------ #
    # Query strategies: one full pipeline run per query type
    # ------------------------------------------------------------------ #
    def run_range(
        self, query: Sequence, spec: RangeQuery
    ) -> Tuple[List[SubsequenceMatch], QueryStats]:
        """Type I: every (deduplicated) verified pair within the radius."""
        probe = self.probe(query, spec.radius)
        stats = probe.stats
        chains = self.chain(probe.matches, stats)

        counter = _VerificationCounter()
        started = time.perf_counter()
        results: List[SubsequenceMatch] = []
        seen = set()
        for chain in chains:
            if spec.exhaustive:
                found = enumerate_matches(
                    chain,
                    query,
                    self.database[chain.source_id],
                    self.distance,
                    spec.radius,
                    self.config,
                    counter,
                    max_results=spec.max_results,
                    cache=self.cache,
                )
            else:
                verified = self.verify_with_fallback(chain, query, spec.radius, counter)
                found = [verified] if verified is not None else []
            for match in found:
                identity = (
                    match.source_id,
                    match.query_start,
                    match.query_stop,
                    match.db_start,
                    match.db_stop,
                )
                if identity in seen:
                    continue
                seen.add(identity)
                results.append(match)
                if spec.max_results is not None and len(results) >= spec.max_results:
                    self._finish_verify(stats, counter, started)
                    return results, stats
        self._finish_verify(stats, counter, started)
        return results, stats

    def run_longest(
        self, query: Sequence, spec: LongestSubsequenceQuery
    ) -> Tuple[Optional[SubsequenceMatch], QueryStats]:
        """Type II: longest verified pair, chains examined longest first.

        A chain of ``k`` concatenated windows can support a match of length
        up to ``(k + 2) * lambda / 2``, so once a chain verifies, shorter
        chains that cannot possibly beat the verified length are skipped.
        """
        probe = self.probe(query, spec.radius)
        stats = probe.stats
        chains = self.chain(probe.matches, stats)

        counter = _VerificationCounter()
        started = time.perf_counter()
        best: Optional[SubsequenceMatch] = None
        for chain in chains:
            potential = (chain.window_count + 2) * self.config.window_length
            if best is not None and potential <= best.length:
                break
            verified = self.verify_with_fallback(chain, query, spec.radius, counter)
            if verified is None:
                continue
            if (
                best is None
                or verified.length > best.length
                or (verified.length == best.length and verified.distance < best.distance)
            ):
                best = verified
        self._finish_verify(stats, counter, started)
        return best, stats

    def run_nearest_pass(
        self, query: Sequence, radius: float
    ) -> Tuple[Optional[SubsequenceMatch], QueryStats]:
        """One fixed-radius pass of Type III: best verified match by distance."""
        probe = self.probe(query, radius)
        stats = probe.stats
        chains = self.chain(probe.matches, stats)

        counter = _VerificationCounter()
        started = time.perf_counter()
        best: Optional[SubsequenceMatch] = None
        for chain in chains:
            verified = self.verify_with_fallback(chain, query, radius, counter)
            if verified is None:
                continue
            if best is None or verified.distance < best.distance:
                best = verified
        self._finish_verify(stats, counter, started)
        return best, stats
