"""The :class:`SubsequenceMatcher`: the paper's five-step pipeline, assembled.

Typical use::

    from repro import (
        SequenceDatabase, Sequence, SequenceKind, DiscreteFrechet,
        SubsequenceMatcher, MatcherConfig,
    )

    db = SequenceDatabase(SequenceKind.TIME_SERIES)
    db.add(Sequence.from_values([...], seq_id="series-1"))
    matcher = SubsequenceMatcher(db, DiscreteFrechet(), MatcherConfig(min_length=40, max_shift=2))

    best = matcher.longest_similar(query, radius=1.5)          # Type II
    nearest = matcher.nearest_subsequence(query, max_radius=10)  # Type III
    all_pairs = matcher.range_search(query, radius=1.5)          # Type I

The online steps (3-5) are executed by the staged
:class:`~repro.core.pipeline.QueryPipeline`; the matcher owns the offline
steps (1-2), the Type III radius-sweep orchestration, and the multi-query
:meth:`batch_query` entry point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.core.candidates import chain_segment_matches
from repro.core.config import MatcherConfig
from repro.core.pipeline import QueryPipeline
from repro.core.queries import (
    LongestSubsequenceQuery,
    NearestSubsequenceQuery,
    QueryStats,
    RangeQuery,
    SegmentMatch,
    SubsequenceMatch,
)
from repro.core.segmentation import partition_database
from repro.distances.base import Distance
from repro.distances.cache import DistanceCache
from repro.exceptions import ConfigurationError, QueryError
from repro.indexing.base import MetricIndex
from repro.indexing.cover_tree import CoverTree
from repro.indexing.linear_scan import LinearScanIndex
from repro.indexing.reference_based import ReferenceIndex
from repro.indexing.reference_net import ReferenceNet
from repro.indexing.vp_tree import VPTree
from repro.sequences.database import SequenceDatabase
from repro.sequences.sequence import Sequence
from repro.sequences.windows import Window

#: A query specification accepted by :meth:`SubsequenceMatcher.batch_query`.
QuerySpec = Union[RangeQuery, LongestSubsequenceQuery, NearestSubsequenceQuery, float]


class SubsequenceMatcher:
    """Index a sequence database for subsequence similarity queries.

    Parameters
    ----------
    database:
        The sequences to search.  The database is *snapshotted* at
        construction: steps 1-2 (windowing and index construction) run once
        here; sequences added to the database afterwards are not visible
        until :meth:`refresh` is called.
    distance:
        The distance measure.  It must be consistent (the framework's
        filtering relies on Lemma 1-3); it must additionally be a metric
        unless the configured index is the linear scan.
    config:
        The framework parameters (lambda, lambda0, index choice, ...).
    cache:
        Optional externally-owned :class:`~repro.distances.cache.DistanceCache`
        -- typically :func:`repro.distances.cache.shared_cache` -- letting
        several matchers over the *same distance* share measured pairs.  A
        shared cache is never cleared by :meth:`refresh` (other matchers may
        still rely on its entries); when omitted, the matcher owns a private
        cache sized by ``config.cache_max_entries``.

    Attributes
    ----------
    last_query_stats:
        :class:`~repro.core.queries.QueryStats` for the most recent query,
        including index and verification distance counts -- the quantities
        the paper's evaluation reports -- plus the pipeline's per-stage
        timings and prefilter accounting.
    last_batch_stats:
        One :class:`~repro.core.queries.QueryStats` per query of the most
        recent :meth:`batch_query` call.
    distance_cache:
        The :class:`~repro.distances.cache.DistanceCache` shared between
        the index and the verification step.  Every (segment, window) and
        (query subsequence, database subsequence) distance is computed at
        most once per matcher lifetime; Type III's growing-radius
        re-queries and repeated chain verifications are answered from the
        cache, which is what keeps the index's *fresh* computation count
        below the naive scan's even across the whole radius sweep.
    pipeline:
        The :class:`~repro.core.pipeline.QueryPipeline` executing steps 3-5.
    """

    def __init__(
        self,
        database: SequenceDatabase,
        distance: Distance,
        config: MatcherConfig,
        cache: Optional[DistanceCache] = None,
    ) -> None:
        if not distance.is_consistent:
            raise ConfigurationError(
                f"distance {distance.name!r} is not consistent; the framework's "
                "window-based filtering (Lemmas 1-3) requires consistency"
            )
        if config.index != "linear-scan" and not distance.is_metric:
            raise ConfigurationError(
                f"distance {distance.name!r} is not a metric; configure "
                "index='linear-scan' to use it with the framework"
            )
        self.database = database
        self.distance = distance
        self.config = config
        self.last_query_stats = QueryStats()
        self.last_batch_stats: List[QueryStats] = []
        self._owns_cache = cache is None
        self.distance_cache = (
            cache
            if cache is not None
            else DistanceCache(max_entries=config.cache_max_entries)
        )
        self._windows: List[Window] = []
        self._windows_by_key: Dict[tuple, Window] = {}
        self._index: Optional[MetricIndex] = None
        self._pipeline: Optional[QueryPipeline] = None
        self.refresh()

    # ------------------------------------------------------------------ #
    # Steps 1-2: offline preprocessing
    # ------------------------------------------------------------------ #
    def refresh(self) -> None:
        """(Re)run the offline steps: window partitioning and index build."""
        if self._owns_cache:
            self.distance_cache.clear()
        self._windows = partition_database(self.database, self.config)
        self._windows_by_key = {window.key: window for window in self._windows}
        self._index = self._build_index()
        for window in self._windows:
            self._index.add(window.sequence, key=window.key)
        if isinstance(self._index, (ReferenceIndex, VPTree)):
            self._index.build()
        self._pipeline = QueryPipeline(
            database=self.database,
            distance=self.distance,
            config=self.config,
            index=self._index,
            windows_by_key=self._windows_by_key,
            window_count=len(self._windows),
            cache=self.distance_cache,
        )

    def _build_index(self) -> MetricIndex:
        name = self.config.index
        cache = self.distance_cache
        if name == "reference-net":
            return ReferenceNet(
                self.distance,
                eps_prime=self.config.eps_prime,
                nummax=self.config.nummax,
                cache=cache,
            )
        if name == "cover-tree":
            return CoverTree(self.distance, eps_prime=self.config.eps_prime, cache=cache)
        if name == "reference-based":
            return ReferenceIndex(
                self.distance, num_references=self.config.num_references, cache=cache
            )
        if name == "vp-tree":
            return VPTree(self.distance, cache=cache)
        if name == "linear-scan":
            return LinearScanIndex(
                self.distance, cache=cache, prefilter=self.config.prefilter
            )
        raise ConfigurationError(f"unknown index {name!r}")  # pragma: no cover

    @property
    def index(self) -> MetricIndex:
        """The metric index holding the database windows."""
        assert self._index is not None
        return self._index

    @property
    def pipeline(self) -> QueryPipeline:
        """The staged query-execution pipeline running steps 3-5."""
        assert self._pipeline is not None
        return self._pipeline

    @property
    def windows(self) -> List[Window]:
        """The database windows produced by step 1."""
        return list(self._windows)

    # ------------------------------------------------------------------ #
    # Steps 3-4: segment extraction and range search on the index
    # ------------------------------------------------------------------ #
    def segment_matches(self, query: Sequence, radius: float) -> List[SegmentMatch]:
        """Run steps 3-4 and return the (segment, window) pairs.

        Also resets and fills :attr:`last_query_stats` with the step-3/4
        accounting (including the pipeline's stage timings and prefilter
        counts).
        """
        probe = self.pipeline.probe(query, radius)
        self.last_query_stats = probe.stats
        return probe.matches

    # ------------------------------------------------------------------ #
    # Step 5: the three query types
    # ------------------------------------------------------------------ #
    def range_search(
        self, query: Sequence, spec: Union[RangeQuery, float]
    ) -> List[SubsequenceMatch]:
        """Type I: pairs of similar subsequences within the given radius.

        With the default (non-exhaustive) verification, one locally-maximal
        match is reported per candidate chain; pass
        ``RangeQuery(radius, exhaustive=True)`` -- practical on small inputs
        only -- to enumerate every admissible pair in every candidate
        region.
        """
        if not isinstance(spec, RangeQuery):
            spec = RangeQuery(radius=float(spec))
        results, stats = self.pipeline.run_range(query, spec)
        self.last_query_stats = stats
        return results

    def longest_similar(
        self, query: Sequence, spec: Union[LongestSubsequenceQuery, float]
    ) -> Optional[SubsequenceMatch]:
        """Type II: the longest pair of similar subsequences within the radius.

        Following Section 7, candidate chains are examined longest first: a
        chain of ``k`` concatenated windows can support a match of length up
        to ``(k + 2) * lambda / 2``, so once a chain verifies, shorter chains
        that cannot possibly beat the verified length are skipped.
        """
        if not isinstance(spec, LongestSubsequenceQuery):
            spec = LongestSubsequenceQuery(radius=float(spec))
        best, stats = self.pipeline.run_longest(query, spec)
        self.last_query_stats = stats
        return best

    def nearest_subsequence(
        self, query: Sequence, spec: Union[NearestSubsequenceQuery, float]
    ) -> Optional[SubsequenceMatch]:
        """Type III: the pair of subsequences with the smallest distance.

        Implemented as the paper describes: binary-search the smallest
        radius at which step 4 produces at least one segment match, attempt
        verification there, and enlarge the radius by ``radius_increment``
        until a pair verifies.  :attr:`last_query_stats` aggregates the
        whole sweep (work counters summed, shape counters from the final
        pass) and keeps the per-pass history in
        :attr:`~repro.core.queries.QueryStats.passes`.
        """
        if not isinstance(spec, NearestSubsequenceQuery):
            spec = NearestSubsequenceQuery(max_radius=float(spec))
        if not self._windows:
            return None

        pipeline = self.pipeline
        passes: List[QueryStats] = []

        # Binary search for the minimal radius producing segment matches.
        # Its step-3/4 work is part of answering the query, so every pass is
        # recorded; thanks to the distance cache the probes after the first
        # one mostly re-use already-measured pairs.
        low, high = 0.0, spec.max_radius
        probe = pipeline.probe(query, high)
        passes.append(probe.stats)
        if not probe.matches:
            self.last_query_stats = QueryStats.merged(passes)
            raise QueryError(
                f"no segment matches even at max_radius={spec.max_radius}; "
                "increase max_radius"
            )
        while high - low > spec.tolerance:
            mid = (low + high) / 2.0
            probe = pipeline.probe(query, mid)
            passes.append(probe.stats)
            if probe.matches:
                high = mid
            else:
                low = mid

        increment = spec.radius_increment
        if increment is None:
            increment = max(spec.tolerance, 0.05 * spec.max_radius)

        radius = high
        while radius <= spec.max_radius + 1e-12:
            best, stats = pipeline.run_nearest_pass(query, radius)
            passes.append(stats)
            if best is not None:
                self.last_query_stats = QueryStats.merged(passes)
                return best
            radius += increment
        self.last_query_stats = QueryStats.merged(passes)
        return None

    # ------------------------------------------------------------------ #
    # Multi-query entry point
    # ------------------------------------------------------------------ #
    def batch_query(
        self, queries: List[Sequence], spec: QuerySpec
    ) -> List[Union[List[SubsequenceMatch], Optional[SubsequenceMatch]]]:
        """Answer many queries of the same type through one matcher.

        ``spec`` selects the query type exactly as in the single-query
        methods (a bare float is a Type I radius).  All queries share the
        matcher's :attr:`distance_cache`, so segment-window pairs measured
        for one query are free for the next -- the multi-query analogue of
        what the cache already does for Type III's radius sweep.  Per-query
        statistics are collected in :attr:`last_batch_stats`
        (:attr:`last_query_stats` keeps the final query's stats).

        Returns one result per query, of the type the corresponding
        single-query method returns.  A query that raises
        :class:`~repro.exceptions.QueryError` (a Type III query with no
        segment match at ``max_radius``) contributes ``None`` instead of
        aborting the batch; its accounting still lands in
        :attr:`last_batch_stats`.
        """
        if isinstance(spec, (int, float)):
            spec = RangeQuery(radius=float(spec))
        if isinstance(spec, RangeQuery):
            run = self.range_search
        elif isinstance(spec, LongestSubsequenceQuery):
            run = self.longest_similar
        elif isinstance(spec, NearestSubsequenceQuery):
            run = self.nearest_subsequence
        else:
            raise QueryError(f"unsupported query spec: {spec!r}")
        results = []
        batch_stats: List[QueryStats] = []
        for query in queries:
            try:
                results.append(run(query, spec))
            except QueryError:
                results.append(None)
            batch_stats.append(self.last_query_stats)
        self.last_batch_stats = batch_stats
        return results

    # ------------------------------------------------------------------ #
    # Figure-12 style reporting
    # ------------------------------------------------------------------ #
    def matching_window_report(self, query: Sequence, radius: float) -> Dict[str, float]:
        """Unique and consecutive matching windows (the paper's Figure 12).

        Returns the number of distinct database windows matched by at least
        one query segment, the number of those that are part of a run of at
        least two consecutive matched windows, and both as fractions of the
        total window count.
        """
        matches = self.segment_matches(query, radius)
        unique_keys = {match.window.key for match in matches}
        chains = chain_segment_matches(matches, self.config)
        consecutive_keys = set()
        for chain in chains:
            if chain.window_count >= 2:
                for match in chain.matches:
                    consecutive_keys.add(match.window.key)
        total = len(self._windows)
        return {
            "total_windows": total,
            "unique_matching_windows": len(unique_keys),
            "consecutive_matching_windows": len(consecutive_keys),
            "unique_fraction": len(unique_keys) / total if total else 0.0,
            "consecutive_fraction": len(consecutive_keys) / total if total else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"SubsequenceMatcher(windows={len(self._windows)}, "
            f"distance={self.distance.name!r}, index={self.config.index!r}, "
            f"lambda={self.config.min_length}, lambda0={self.config.max_shift})"
        )
