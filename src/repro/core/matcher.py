"""The :class:`SubsequenceMatcher`: the paper's five-step pipeline, assembled.

Typical use::

    from repro import (
        SequenceDatabase, Sequence, SequenceKind, DiscreteFrechet,
        SubsequenceMatcher, MatcherConfig,
    )

    db = SequenceDatabase(SequenceKind.TIME_SERIES)
    db.add(Sequence.from_values([...], seq_id="series-1"))
    matcher = SubsequenceMatcher(db, DiscreteFrechet(), MatcherConfig(min_length=40, max_shift=2))

    best = matcher.longest_similar(query, radius=1.5)          # Type II
    nearest = matcher.nearest_subsequence(query, max_radius=10)  # Type III
    all_pairs = matcher.range_search(query, radius=1.5)          # Type I
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.core.candidates import CandidateChain, chain_segment_matches
from repro.core.config import MatcherConfig
from repro.core.queries import (
    LongestSubsequenceQuery,
    NearestSubsequenceQuery,
    QueryStats,
    RangeQuery,
    SegmentMatch,
    SubsequenceMatch,
)
from repro.core.segmentation import extract_query_segments, partition_database
from repro.core.verification import _VerificationCounter, enumerate_matches, verify_chain
from repro.distances.base import Distance
from repro.distances.cache import DistanceCache
from repro.exceptions import ConfigurationError, QueryError
from repro.indexing.base import MetricIndex
from repro.indexing.cover_tree import CoverTree
from repro.indexing.linear_scan import LinearScanIndex
from repro.indexing.reference_based import ReferenceIndex
from repro.indexing.reference_net import ReferenceNet
from repro.indexing.vp_tree import VPTree
from repro.sequences.database import SequenceDatabase
from repro.sequences.sequence import Sequence
from repro.sequences.windows import Window


class SubsequenceMatcher:
    """Index a sequence database for subsequence similarity queries.

    Parameters
    ----------
    database:
        The sequences to search.  The database is *snapshotted* at
        construction: steps 1-2 (windowing and index construction) run once
        here; sequences added to the database afterwards are not visible
        until :meth:`refresh` is called.
    distance:
        The distance measure.  It must be consistent (the framework's
        filtering relies on Lemma 1-3); it must additionally be a metric
        unless the configured index is the linear scan.
    config:
        The framework parameters (lambda, lambda0, index choice, ...).

    Attributes
    ----------
    last_query_stats:
        :class:`~repro.core.queries.QueryStats` for the most recent query,
        including index and verification distance counts -- the quantities
        the paper's evaluation reports.
    distance_cache:
        The :class:`~repro.distances.cache.DistanceCache` shared between
        the index and the verification step.  Every (segment, window) and
        (query subsequence, database subsequence) distance is computed at
        most once per matcher lifetime; Type III's growing-radius
        re-queries and repeated chain verifications are answered from the
        cache, which is what keeps the index's *fresh* computation count
        below the naive scan's even across the whole radius sweep.
    """

    def __init__(
        self,
        database: SequenceDatabase,
        distance: Distance,
        config: MatcherConfig,
    ) -> None:
        if not distance.is_consistent:
            raise ConfigurationError(
                f"distance {distance.name!r} is not consistent; the framework's "
                "window-based filtering (Lemmas 1-3) requires consistency"
            )
        if config.index != "linear-scan" and not distance.is_metric:
            raise ConfigurationError(
                f"distance {distance.name!r} is not a metric; configure "
                "index='linear-scan' to use it with the framework"
            )
        self.database = database
        self.distance = distance
        self.config = config
        self.last_query_stats = QueryStats()
        self.distance_cache = DistanceCache(max_entries=config.cache_max_entries)
        self._windows: List[Window] = []
        self._windows_by_key: Dict[tuple, Window] = {}
        self._index: Optional[MetricIndex] = None
        self.refresh()

    # ------------------------------------------------------------------ #
    # Steps 1-2: offline preprocessing
    # ------------------------------------------------------------------ #
    def refresh(self) -> None:
        """(Re)run the offline steps: window partitioning and index build."""
        self.distance_cache.clear()
        self._windows = partition_database(self.database, self.config)
        self._windows_by_key = {window.key: window for window in self._windows}
        self._index = self._build_index()
        for window in self._windows:
            self._index.add(window.sequence, key=window.key)
        if isinstance(self._index, (ReferenceIndex, VPTree)):
            self._index.build()

    def _build_index(self) -> MetricIndex:
        name = self.config.index
        cache = self.distance_cache
        if name == "reference-net":
            return ReferenceNet(
                self.distance,
                eps_prime=self.config.eps_prime,
                nummax=self.config.nummax,
                cache=cache,
            )
        if name == "cover-tree":
            return CoverTree(self.distance, eps_prime=self.config.eps_prime, cache=cache)
        if name == "reference-based":
            return ReferenceIndex(
                self.distance, num_references=self.config.num_references, cache=cache
            )
        if name == "vp-tree":
            return VPTree(self.distance, cache=cache)
        if name == "linear-scan":
            return LinearScanIndex(self.distance, cache=cache)
        raise ConfigurationError(f"unknown index {name!r}")  # pragma: no cover

    @property
    def index(self) -> MetricIndex:
        """The metric index holding the database windows."""
        assert self._index is not None
        return self._index

    @property
    def windows(self) -> List[Window]:
        """The database windows produced by step 1."""
        return list(self._windows)

    # ------------------------------------------------------------------ #
    # Steps 3-4: segment extraction and range search on the index
    # ------------------------------------------------------------------ #
    def segment_matches(self, query: Sequence, radius: float) -> List[SegmentMatch]:
        """Run steps 3-4 and return the (segment, window) pairs.

        Also resets and fills :attr:`last_query_stats` with the step-3/4
        accounting; callers that go on to verification (the query methods
        below) keep extending the same stats object.
        """
        stats = QueryStats()
        segments = extract_query_segments(query, self.config)
        stats.segments_extracted = len(segments)
        stats.naive_distance_computations = len(segments) * len(self._windows)

        counter = self.index.counter
        counter.checkpoint()
        matches: List[SegmentMatch] = []
        for segment in segments:
            for hit in self.index.range_query(segment.sequence, radius):
                window = self._windows_by_key[hit.key]
                matches.append(
                    SegmentMatch(
                        query_start=segment.start,
                        query_length=segment.length,
                        window=window,
                        distance=hit.distance,
                    )
                )
        stats.index_distance_computations = counter.since_checkpoint()
        stats.index_cache_hits = counter.cache_hits_since_checkpoint()
        stats.segment_matches = len(matches)
        self.last_query_stats = stats
        return matches

    def _verify_with_fallback(
        self,
        chain: CandidateChain,
        query: Sequence,
        radius: float,
        counter: _VerificationCounter,
    ) -> Optional[SubsequenceMatch]:
        """Verify ``chain``; on failure, retry its halves recursively.

        Maximal chains can over-reach: a long, partly mis-stitched chain may
        span regions whose overall distance exceeds the radius even though a
        sub-chain supports a perfectly good match.  Splitting a failed chain
        in half and retrying costs at most a logarithmic factor in extra
        verifications and guarantees that every single-window match is still
        considered.
        """
        db_sequence = self.database[chain.source_id]
        verified = verify_chain(
            chain,
            query,
            db_sequence,
            self.distance,
            radius,
            self.config,
            counter,
            cache=self.distance_cache,
        )
        if verified is not None or chain.window_count == 1:
            return verified
        middle = chain.window_count // 2
        halves = (
            CandidateChain(chain.source_id, chain.matches[:middle]),
            CandidateChain(chain.source_id, chain.matches[middle:]),
        )
        best: Optional[SubsequenceMatch] = None
        for half in halves:
            candidate = self._verify_with_fallback(half, query, radius, counter)
            if candidate is None:
                continue
            if (
                best is None
                or candidate.length > best.length
                or (candidate.length == best.length and candidate.distance < best.distance)
            ):
                best = candidate
        return best

    # ------------------------------------------------------------------ #
    # Step 5: the three query types
    # ------------------------------------------------------------------ #
    def range_search(
        self, query: Sequence, spec: Union[RangeQuery, float]
    ) -> List[SubsequenceMatch]:
        """Type I: pairs of similar subsequences within the given radius.

        With the default (non-exhaustive) verification, one locally-maximal
        match is reported per candidate chain; pass
        ``RangeQuery(radius, exhaustive=True)`` -- practical on small inputs
        only -- to enumerate every admissible pair in every candidate
        region.
        """
        if not isinstance(spec, RangeQuery):
            spec = RangeQuery(radius=float(spec))
        matches = self.segment_matches(query, spec.radius)
        chains = chain_segment_matches(matches, self.config)
        self.last_query_stats.candidate_chains = len(chains)

        counter = _VerificationCounter()
        results: List[SubsequenceMatch] = []
        seen = set()
        for chain in chains:
            db_sequence = self.database[chain.source_id]
            if spec.exhaustive:
                found = enumerate_matches(
                    chain,
                    query,
                    db_sequence,
                    self.distance,
                    spec.radius,
                    self.config,
                    counter,
                    max_results=spec.max_results,
                    cache=self.distance_cache,
                )
            else:
                verified = self._verify_with_fallback(chain, query, spec.radius, counter)
                found = [verified] if verified is not None else []
            for match in found:
                identity = (
                    match.source_id,
                    match.query_start,
                    match.query_stop,
                    match.db_start,
                    match.db_stop,
                )
                if identity in seen:
                    continue
                seen.add(identity)
                results.append(match)
                if spec.max_results is not None and len(results) >= spec.max_results:
                    self.last_query_stats.verification_distance_computations = counter.count
                    self.last_query_stats.verification_cache_hits = counter.cache_hits
                    return results
        self.last_query_stats.verification_distance_computations = counter.count
        self.last_query_stats.verification_cache_hits = counter.cache_hits
        return results

    def longest_similar(
        self, query: Sequence, spec: Union[LongestSubsequenceQuery, float]
    ) -> Optional[SubsequenceMatch]:
        """Type II: the longest pair of similar subsequences within the radius.

        Following Section 7, candidate chains are examined longest first: a
        chain of ``k`` concatenated windows can support a match of length up
        to ``(k + 2) * lambda / 2``, so once a chain verifies, shorter chains
        that cannot possibly beat the verified length are skipped.
        """
        if not isinstance(spec, LongestSubsequenceQuery):
            spec = LongestSubsequenceQuery(radius=float(spec))
        matches = self.segment_matches(query, spec.radius)
        chains = chain_segment_matches(matches, self.config)
        self.last_query_stats.candidate_chains = len(chains)

        counter = _VerificationCounter()
        best: Optional[SubsequenceMatch] = None
        for chain in chains:
            potential = (chain.window_count + 2) * self.config.window_length
            if best is not None and potential <= best.length:
                break
            verified = self._verify_with_fallback(chain, query, spec.radius, counter)
            if verified is None:
                continue
            if (
                best is None
                or verified.length > best.length
                or (verified.length == best.length and verified.distance < best.distance)
            ):
                best = verified
        self.last_query_stats.verification_distance_computations = counter.count
        self.last_query_stats.verification_cache_hits = counter.cache_hits
        return best

    def nearest_subsequence(
        self, query: Sequence, spec: Union[NearestSubsequenceQuery, float]
    ) -> Optional[SubsequenceMatch]:
        """Type III: the pair of subsequences with the smallest distance.

        Implemented as the paper describes: binary-search the smallest
        radius at which step 4 produces at least one segment match, attempt
        verification there, and enlarge the radius by ``radius_increment``
        until a pair verifies.
        """
        if not isinstance(spec, NearestSubsequenceQuery):
            spec = NearestSubsequenceQuery(max_radius=float(spec))
        if not self._windows:
            return None

        # Binary search for the minimal radius producing segment matches.
        # Its step-3/4 work is part of answering the query, so it is folded
        # into the aggregate stats; thanks to the distance cache the probes
        # after the first one mostly re-use already-measured pairs.
        aggregate_stats = QueryStats()
        low, high = 0.0, spec.max_radius
        found = self.segment_matches(query, high)
        aggregate_stats = self._merge_stats(aggregate_stats, self.last_query_stats)
        if not found:
            self.last_query_stats = aggregate_stats
            raise QueryError(
                f"no segment matches even at max_radius={spec.max_radius}; "
                "increase max_radius"
            )
        while high - low > spec.tolerance:
            mid = (low + high) / 2.0
            if self.segment_matches(query, mid):
                high = mid
            else:
                low = mid
            aggregate_stats = self._merge_stats(aggregate_stats, self.last_query_stats)

        increment = spec.radius_increment
        if increment is None:
            increment = max(spec.tolerance, 0.05 * spec.max_radius)

        radius = high
        while radius <= spec.max_radius + 1e-12:
            best = self._nearest_at_radius(query, radius)
            aggregate_stats = self._merge_stats(aggregate_stats, self.last_query_stats)
            if best is not None:
                self.last_query_stats = aggregate_stats
                return best
            radius += increment
        self.last_query_stats = aggregate_stats
        return None

    def _nearest_at_radius(self, query: Sequence, radius: float) -> Optional[SubsequenceMatch]:
        """Best verified match at a fixed radius (minimum distance wins)."""
        matches = self.segment_matches(query, radius)
        chains = chain_segment_matches(matches, self.config)
        self.last_query_stats.candidate_chains = len(chains)
        counter = _VerificationCounter()
        best: Optional[SubsequenceMatch] = None
        for chain in chains:
            verified = self._verify_with_fallback(chain, query, radius, counter)
            if verified is None:
                continue
            if best is None or verified.distance < best.distance:
                best = verified
        self.last_query_stats.verification_distance_computations = counter.count
        self.last_query_stats.verification_cache_hits = counter.cache_hits
        return best

    @staticmethod
    def _merge_stats(total: QueryStats, step: QueryStats) -> QueryStats:
        """Accumulate the work of repeated step-3/4/5 passes (Type III)."""
        return QueryStats(
            segments_extracted=max(total.segments_extracted, step.segments_extracted),
            index_distance_computations=(
                total.index_distance_computations + step.index_distance_computations
            ),
            verification_distance_computations=(
                total.verification_distance_computations
                + step.verification_distance_computations
            ),
            segment_matches=max(total.segment_matches, step.segment_matches),
            candidate_chains=max(total.candidate_chains, step.candidate_chains),
            naive_distance_computations=max(
                total.naive_distance_computations, step.naive_distance_computations
            ),
            index_cache_hits=total.index_cache_hits + step.index_cache_hits,
            verification_cache_hits=(
                total.verification_cache_hits + step.verification_cache_hits
            ),
        )

    # ------------------------------------------------------------------ #
    # Figure-12 style reporting
    # ------------------------------------------------------------------ #
    def matching_window_report(self, query: Sequence, radius: float) -> Dict[str, float]:
        """Unique and consecutive matching windows (the paper's Figure 12).

        Returns the number of distinct database windows matched by at least
        one query segment, the number of those that are part of a run of at
        least two consecutive matched windows, and both as fractions of the
        total window count.
        """
        matches = self.segment_matches(query, radius)
        unique_keys = {match.window.key for match in matches}
        chains = chain_segment_matches(matches, self.config)
        consecutive_keys = set()
        for chain in chains:
            if chain.window_count >= 2:
                for match in chain.matches:
                    consecutive_keys.add(match.window.key)
        total = len(self._windows)
        return {
            "total_windows": total,
            "unique_matching_windows": len(unique_keys),
            "consecutive_matching_windows": len(consecutive_keys),
            "unique_fraction": len(unique_keys) / total if total else 0.0,
            "consecutive_fraction": len(consecutive_keys) / total if total else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"SubsequenceMatcher(windows={len(self._windows)}, "
            f"distance={self.distance.name!r}, index={self.config.index!r}, "
            f"lambda={self.config.min_length}, lambda0={self.config.max_shift})"
        )
