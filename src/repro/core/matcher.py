"""The :class:`SubsequenceMatcher`: the paper's five-step pipeline, assembled.

Typical use::

    from repro import (
        SequenceDatabase, Sequence, SequenceKind, DiscreteFrechet,
        SubsequenceMatcher, MatcherConfig,
    )

    db = SequenceDatabase(SequenceKind.TIME_SERIES)
    db.add(Sequence.from_values([...], seq_id="series-1"))
    matcher = SubsequenceMatcher(db, DiscreteFrechet(), MatcherConfig(min_length=40, max_shift=2))

    # Declarative style: build a spec, bind the query sequence, execute.
    result = matcher.execute(RangeQuery(radius=1.5).bind(query))       # Type I
    result = matcher.execute(LongestSubsequenceQuery(1.5).bind(query))  # Type II
    result = matcher.execute(TopKQuery(k=5, max_radius=10).bind(query))  # top-k
    result.matches, result.stats, result.query  # the uniform envelope

    # Legacy convenience wrappers (thin shims over execute()):
    best = matcher.longest_similar(query, radius=1.5)
    nearest = matcher.nearest_subsequence(query, max_radius=10)
    all_pairs = matcher.range_search(query, radius=1.5)

The online steps (3-5) are executed by the staged
:class:`~repro.core.pipeline.QueryPipeline`; the matcher owns the offline
steps (1-2), the Type III / top-k radius-sweep orchestration
(:meth:`SubsequenceMatcher._radius_sweep`), and the multi-query
:meth:`execute_many` entry point.
"""

from __future__ import annotations

import dataclasses
from functools import singledispatchmethod
from typing import Dict, List, Optional, Tuple, Union

from repro.core.candidates import chain_segment_matches
from repro.core.config import MatcherConfig
from repro.core.executor import make_executor
from repro.core.pipeline import QueryPipeline
from repro.core.queries import (
    LongestSubsequenceQuery,
    NearestSubsequenceQuery,
    QueryResult,
    QueryStats,
    RangeQuery,
    SegmentMatch,
    SubsequenceMatch,
    TopKCandidates,
    TopKQuery,
)
from repro.core.query_api import QueryInterfaceMixin, QuerySpec
from repro.core.segmentation import partition_database
from repro.distances.base import Distance
from repro.distances.cache import DistanceCache
from repro.exceptions import ConfigurationError, QueryError
from repro.indexing.base import MetricIndex
from repro.indexing.cover_tree import CoverTree
from repro.indexing.linear_scan import LinearScanIndex
from repro.indexing.reference_based import ReferenceIndex
from repro.indexing.reference_net import ReferenceNet
from repro.indexing.vp_tree import VPTree
from repro.sequences.database import SequenceDatabase
from repro.sequences.sequence import Sequence
from repro.sequences.windows import Window, tumbling_windows

def build_index(config: MatcherConfig, distance: Distance, cache: DistanceCache) -> MetricIndex:
    """Instantiate the (empty) metric index ``config.index`` selects.

    Shared by :meth:`SubsequenceMatcher.refresh` and the snapshot loader
    (:func:`repro.storage.persistence.load_matcher`), which restores the
    built structure into the empty index instead of re-adding windows.
    """
    name = config.index
    if name == "reference-net":
        return ReferenceNet(
            distance,
            eps_prime=config.eps_prime,
            nummax=config.nummax,
            cache=cache,
        )
    if name == "cover-tree":
        return CoverTree(distance, eps_prime=config.eps_prime, cache=cache)
    if name == "reference-based":
        return ReferenceIndex(distance, num_references=config.num_references, cache=cache)
    if name == "vp-tree":
        return VPTree(distance, cache=cache)
    if name == "linear-scan":
        return LinearScanIndex(distance, cache=cache, prefilter=config.prefilter)
    raise ConfigurationError(f"unknown index {name!r}")  # pragma: no cover


class SubsequenceMatcher(QueryInterfaceMixin):
    """Index a sequence database for subsequence similarity queries.

    Parameters
    ----------
    database:
        The sequences to search.  The database is *snapshotted* at
        construction: steps 1-2 (windowing and index construction) run once
        here; sequences added directly to the database afterwards are not
        visible until :meth:`refresh` is called.  Prefer the incremental
        :meth:`add_sequence` / :meth:`remove_sequence`, which keep the
        database and the built index in lockstep without a rebuild.
    distance:
        The distance measure.  It must be consistent (the framework's
        filtering relies on Lemma 1-3); it must additionally be a metric
        unless the configured index is the linear scan.
    config:
        The framework parameters (lambda, lambda0, index choice, ...).
    cache:
        Optional externally-owned :class:`~repro.distances.cache.DistanceCache`
        -- typically :func:`repro.distances.cache.shared_cache` -- letting
        several matchers over the *same distance* share measured pairs.  A
        shared cache is never cleared by :meth:`refresh` (other matchers may
        still rely on its entries); when omitted, the matcher owns a private
        cache sized by ``config.cache_max_entries``.

    Attributes
    ----------
    last_query_stats:
        :class:`~repro.core.queries.QueryStats` for the most recent query,
        including index and verification distance counts -- the quantities
        the paper's evaluation reports -- plus the pipeline's per-stage
        timings and prefilter accounting.
    last_batch_stats:
        One :class:`~repro.core.queries.QueryStats` per query of the most
        recent :meth:`batch_query` call.
    distance_cache:
        The :class:`~repro.distances.cache.DistanceCache` shared between
        the index and the verification step.  Every (segment, window) and
        (query subsequence, database subsequence) distance is computed at
        most once per matcher lifetime; Type III's growing-radius
        re-queries and repeated chain verifications are answered from the
        cache, which is what keeps the index's *fresh* computation count
        below the naive scan's even across the whole radius sweep.
    pipeline:
        The :class:`~repro.core.pipeline.QueryPipeline` executing steps 3-5.
    """

    def __init__(
        self,
        database: SequenceDatabase,
        distance: Distance,
        config: MatcherConfig,
        cache: Optional[DistanceCache] = None,
    ) -> None:
        self._init_core(database, distance, config, cache)
        self.refresh()

    def _init_core(
        self,
        database: SequenceDatabase,
        distance: Distance,
        config: MatcherConfig,
        cache: Optional[DistanceCache],
    ) -> None:
        """Validate inputs and set up every field except windows/index/pipeline.

        Split out of ``__init__`` so :meth:`_restore` (the snapshot loader's
        entry point) can construct a matcher whose offline steps come from
        disk instead of :meth:`refresh`.
        """
        if not distance.is_consistent:
            raise ConfigurationError(
                f"distance {distance.name!r} is not consistent; the framework's "
                "window-based filtering (Lemmas 1-3) requires consistency"
            )
        if config.index != "linear-scan" and not distance.is_metric:
            raise ConfigurationError(
                f"distance {distance.name!r} is not a metric; configure "
                "index='linear-scan' to use it with the framework"
            )
        self.database = database
        self.distance = distance
        self.config = config
        self.last_query_stats = QueryStats()
        self.last_batch_stats: List[QueryStats] = []
        self._owns_cache = cache is None
        self.distance_cache = (
            cache
            if cache is not None
            else DistanceCache(max_entries=config.cache_max_entries)
        )
        self._windows: List[Window] = []
        self._windows_by_key: Dict[tuple, Window] = {}
        self._index: Optional[MetricIndex] = None
        self._pipeline: Optional[QueryPipeline] = None

    @classmethod
    def _restore(
        cls,
        database: SequenceDatabase,
        distance: Distance,
        config: MatcherConfig,
        cache: Optional[DistanceCache],
        windows: List[Window],
        index: MetricIndex,
    ) -> "SubsequenceMatcher":
        """Assemble a matcher around an already-built index (snapshot load).

        Performs the same validation as the public constructor but skips
        :meth:`refresh` entirely: ``windows`` and ``index`` come from a
        snapshot, so the restored matcher answers queries immediately with
        zero rebuild work.
        """
        matcher = cls.__new__(cls)
        matcher._init_core(database, distance, config, cache)
        matcher._adopt(windows, index)
        return matcher

    def _adopt(self, windows: List[Window], index: MetricIndex) -> None:
        """Install windows and a built index, then rebuild the pipeline."""
        self._windows = list(windows)
        self._windows_by_key = {window.key: window for window in self._windows}
        self._index = index
        self._pipeline = QueryPipeline(
            database=self.database,
            distance=self.distance,
            config=self.config,
            index=self._index,
            windows_by_key=self._windows_by_key,
            cache=self.distance_cache,
        )

    # ------------------------------------------------------------------ #
    # Steps 1-2: offline preprocessing
    # ------------------------------------------------------------------ #
    def refresh(self) -> None:
        """(Re)run the offline steps: window partitioning and index build.

        This is the batch path; :meth:`add_sequence` / :meth:`remove_sequence`
        apply the same steps incrementally without discarding the built
        index (or, when the matcher owns it, the distance cache).
        """
        if self._owns_cache:
            self.distance_cache.clear()
        windows = partition_database(self.database, self.config)
        index = self._build_index()
        for window in windows:
            index.add(window.sequence, key=window.key)
        if isinstance(index, (ReferenceIndex, VPTree)):
            index.build()
        self._adopt(windows, index)

    def _build_index(self) -> MetricIndex:
        return build_index(self.config, self.distance, self.distance_cache)

    # ------------------------------------------------------------------ #
    # Incremental updates (no full refresh)
    # ------------------------------------------------------------------ #
    def add_sequence(self, sequence: Sequence, seq_id: Optional[str] = None) -> str:
        """Add ``sequence`` to the database *and* the live matcher state.

        The incremental counterpart of adding to the database and calling
        :meth:`refresh`: the new sequence is windowed (step 1) and its
        windows are inserted into the built index through the index's
        incremental :meth:`~repro.indexing.base.MetricIndex.insert` path,
        so the cost is proportional to the new windows, not the database.
        Queries issued afterwards return exactly what a freshly rebuilt
        matcher would return (the pipeline's canonical probe order makes
        this hold for every index class, whatever its staleness policy).

        Returns the id the database assigned to the sequence.
        """
        key = self.database.add(sequence, seq_id)
        added = list(
            tumbling_windows(
                self.database[key], self.config.window_length, source_id=key
            )
        )
        for window in added:
            self._windows.append(window)
            self._windows_by_key[window.key] = window
            self.pipeline.note_window_added(window.key)
            self.index.insert(window.sequence, key=window.key)
        return key

    def remove_sequence(self, seq_id: str) -> Sequence:
        """Remove a sequence from the database and the live matcher state.

        Every window cut from the sequence is deleted from the built index
        through its incremental :meth:`~repro.indexing.base.MetricIndex.delete`
        path.  Cache entries involving the removed windows are left in
        place: the cache is content-keyed, so they stay correct (and useful
        if equal content is ever re-added) and are evicted by capacity like
        any other entry.

        Returns the removed sequence.
        """
        sequence = self.database.remove(seq_id)
        removed = [window for window in self._windows if window.source_id == seq_id]
        self._windows = [window for window in self._windows if window.source_id != seq_id]
        for window in removed:
            del self._windows_by_key[window.key]
            self.pipeline.note_window_removed(window.key)
            self.index.delete(window.key)
        return sequence

    def check_incremental_invariants(
        self, queries: List[Sequence], spec: QuerySpec
    ) -> None:
        """Assert this matcher answers ``queries`` like a fresh rebuild would.

        Builds a throwaway matcher over the same database with the same
        configuration (and a private cache), runs every query through both,
        and raises :class:`~repro.exceptions.QueryError` on the first
        divergence.  This is the executable form of the incremental-update
        contract; the test-suite's property tests drive it across index
        classes and update interleavings.
        """
        def identity(result):
            if result is None:
                return None
            if isinstance(result, SubsequenceMatch):
                return (
                    result.distance,
                    result.source_id,
                    result.query_start,
                    result.query_stop,
                    result.db_start,
                    result.db_stop,
                )
            return [identity(match) for match in result]

        rebuilt = SubsequenceMatcher(self.database, self.distance, self.config)
        mine = [identity(result) for result in self.batch_query(queries, spec)]
        theirs = [identity(result) for result in rebuilt.batch_query(queries, spec)]
        if mine != theirs:
            raise QueryError(
                "incremental matcher diverged from a fresh rebuild: "
                f"{mine!r} != {theirs!r}"
            )

    def set_executor(self, name: str, workers: Optional[int] = None) -> None:
        """Switch the execution engine of the live pipeline.

        Updates the configuration (so a later :meth:`refresh` or snapshot
        keeps the choice) and swaps the pipeline's executor in place --
        results and work counters are executor-independent, so this is
        always safe, including on a matcher loaded from a snapshot that
        was built with a different engine.  ``workers=None`` keeps the
        currently configured worker count (changing only the engine must
        not silently drop an explicit count).
        """
        if workers is None:
            workers = self.config.workers
        self.config = dataclasses.replace(self.config, executor=name, workers=workers)
        self.pipeline.config = self.config
        self.pipeline.executor = make_executor(name, workers)

    def set_kernel(self, name: str) -> None:
        """Switch the distance-kernel tier of the live pipeline.

        Like :meth:`set_executor`: every tier returns identical values, so
        swapping is always safe, including on a snapshot-loaded matcher.
        The pipeline resolves the tier per query, so updating the shared
        configuration is the whole job.  Raises
        :class:`~repro.exceptions.ConfigurationError` on unknown names.
        """
        self.config = dataclasses.replace(self.config, kernel=name)
        self.pipeline.config = self.config

    def close(self) -> None:
        """Release OS-level resources (shared-memory exports); idempotent.

        The matcher stays fully usable afterwards -- the next process-pool
        query simply re-creates whatever was released.  Long-lived callers
        (the HTTP server, tests that build many matchers) call this so
        shared-memory segments are reclaimed as soon as a matcher is
        retired rather than at interpreter exit.
        """
        if self._index is not None:
            self._index.close()

    @property
    def index(self) -> MetricIndex:
        """The metric index holding the database windows."""
        assert self._index is not None
        return self._index

    @property
    def pipeline(self) -> QueryPipeline:
        """The staged query-execution pipeline running steps 3-5."""
        assert self._pipeline is not None
        return self._pipeline

    @property
    def windows(self) -> List[Window]:
        """The database windows produced by step 1."""
        return list(self._windows)

    # ------------------------------------------------------------------ #
    # Steps 3-4: segment extraction and range search on the index
    # ------------------------------------------------------------------ #
    def segment_matches(self, query: Sequence, radius: float) -> List[SegmentMatch]:
        """Run steps 3-4 and return the (segment, window) pairs.

        Also resets and fills :attr:`last_query_stats` with the step-3/4
        accounting (including the pipeline's stage timings and prefilter
        counts).
        """
        probe = self.pipeline.probe(query, radius)
        self.last_query_stats = probe.stats
        return probe.matches

    # ------------------------------------------------------------------ #
    # Step 5: the declarative execute() entry point
    # ------------------------------------------------------------------ #
    @singledispatchmethod
    def execute(self, spec) -> QueryResult:
        """Answer a bound declarative query spec; the one query entry point.

        ``spec`` is one of the :mod:`repro.core.queries` dataclasses with a
        query sequence attached via
        :meth:`~repro.core.queries.BaseQuery.bind`; dispatch over the spec
        type selects the pipeline strategy.  Every query -- including each
        legacy convenience method, which is now a one-line wrapper around
        this -- returns the uniform
        :class:`~repro.core.queries.QueryResult` envelope (paged matches,
        :class:`~repro.core.queries.QueryStats`, spec echo) and installs
        its statistics in :attr:`last_query_stats`.
        """
        raise QueryError(f"unsupported query spec: {spec!r}")

    @execute.register
    def _execute_range(self, spec: RangeQuery) -> QueryResult:
        results, stats = self.pipeline.run_range(spec.bound_query(), spec)
        self.last_query_stats = stats
        return QueryResult.build(spec, results, stats)

    @execute.register
    def _execute_longest(self, spec: LongestSubsequenceQuery) -> QueryResult:
        best, stats = self.pipeline.run_longest(spec.bound_query(), spec)
        self.last_query_stats = stats
        return QueryResult.build(spec, [best] if best is not None else [], stats)

    @execute.register
    def _execute_nearest(self, spec: NearestSubsequenceQuery) -> QueryResult:
        matches, stats = self._radius_sweep(spec, k=1)
        return QueryResult.build(spec, matches, stats)

    @execute.register
    def _execute_topk(self, spec: TopKQuery) -> QueryResult:
        matches, stats = self._radius_sweep(spec, k=spec.k)
        return QueryResult.build(spec, matches, stats)

    def _radius_sweep(
        self, spec: Union[NearestSubsequenceQuery, TopKQuery], k: int
    ) -> Tuple[List[SubsequenceMatch], QueryStats]:
        """The Type III / top-k radius sweep over a k-bounded candidate heap.

        As the paper describes for Type III: binary-search the smallest
        radius at which step 4 produces at least one segment match, then
        verify at that radius and enlarge it by ``radius_increment`` until
        enough pairs verify.  Every verified (locally-maximal) match of
        every pass feeds a :class:`~repro.core.queries.TopKCandidates` heap
        bounded to ``k``; the sweep stops as soon as the heap is full, so
        ``k=1`` performs *exactly* the passes the classic nearest query
        performs -- same radii, same distance work, same statistics.
        :attr:`last_query_stats` aggregates the whole sweep (work counters
        summed, shape counters from the final pass) and keeps the per-pass
        history in :attr:`~repro.core.queries.QueryStats.passes`.
        """
        query = spec.bound_query()
        if not self._windows:
            self.last_query_stats = QueryStats()
            return [], self.last_query_stats

        pipeline = self.pipeline
        passes: List[QueryStats] = []

        # Binary search for the minimal radius producing segment matches.
        # Its step-3/4 work is part of answering the query, so every pass is
        # recorded; thanks to the distance cache the probes after the first
        # one mostly re-use already-measured pairs.
        low, high = 0.0, spec.max_radius
        probe = pipeline.probe(query, high)
        passes.append(probe.stats)
        if not probe.matches:
            self.last_query_stats = QueryStats.merged(passes)
            raise QueryError(
                f"no segment matches even at max_radius={spec.max_radius}; "
                "increase max_radius"
            )
        while high - low > spec.tolerance:
            mid = (low + high) / 2.0
            probe = pipeline.probe(query, mid)
            passes.append(probe.stats)
            if probe.matches:
                high = mid
            else:
                low = mid

        increment = spec.radius_increment
        if increment is None:
            increment = max(spec.tolerance, 0.05 * spec.max_radius)

        candidates = TopKCandidates(k)
        radius = high
        while radius <= spec.max_radius + 1e-12:
            matches, stats = pipeline.run_scored_pass(query, radius)
            passes.append(stats)
            for match in matches:
                candidates.add(match)
            if candidates.full:
                break
            radius += increment
        self.last_query_stats = QueryStats.merged(passes)
        return candidates.ranked(), self.last_query_stats

    # ``execute_many`` and the legacy per-sequence wrappers
    # (``range_search`` / ``longest_similar`` / ``nearest_subsequence`` /
    # ``topk_subsequences`` / ``batch_query``) come from
    # :class:`~repro.core.query_api.QueryInterfaceMixin`, shared with the
    # sharded matcher.

    # ------------------------------------------------------------------ #
    # Figure-12 style reporting
    # ------------------------------------------------------------------ #
    def matching_window_report(self, query: Sequence, radius: float) -> Dict[str, float]:
        """Unique and consecutive matching windows (the paper's Figure 12).

        Returns the number of distinct database windows matched by at least
        one query segment, the number of those that are part of a run of at
        least two consecutive matched windows, and both as fractions of the
        total window count.
        """
        matches = self.segment_matches(query, radius)
        unique_keys = {match.window.key for match in matches}
        chains = chain_segment_matches(matches, self.config)
        consecutive_keys = set()
        for chain in chains:
            if chain.window_count >= 2:
                for match in chain.matches:
                    consecutive_keys.add(match.window.key)
        total = len(self._windows)
        return {
            "total_windows": total,
            "unique_matching_windows": len(unique_keys),
            "consecutive_matching_windows": len(consecutive_keys),
            "unique_fraction": len(unique_keys) / total if total else 0.0,
            "consecutive_fraction": len(consecutive_keys) / total if total else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"SubsequenceMatcher(windows={len(self._windows)}, "
            f"distance={self.distance.name!r}, index={self.config.index!r}, "
            f"lambda={self.config.min_length}, lambda0={self.config.max_shift})"
        )
