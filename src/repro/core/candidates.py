"""Step 5a: turning (segment, window) matches into candidate chains.

A single matched window pins down *where* a similar subsequence pair may
live, but the interesting matches (Type II especially) span several
consecutive windows.  Following Section 7, two matches ``<x_i, q_j>`` and
``<x_{i+1}, q_{j+1}>`` -- a window and its successor matched to query
segments that follow each other -- can be concatenated; a maximal run of
such matches is a :class:`CandidateChain`, and the longest chains are the
most promising candidates for the longest similar subsequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence as TypingSequence, Tuple

from repro.core.config import MatcherConfig
from repro.core.queries import SegmentMatch


@dataclass(frozen=True)
class CandidateChain:
    """A run of consecutive window matches within one database sequence.

    Attributes
    ----------
    source_id:
        The database sequence the windows belong to.
    matches:
        The segment matches in window order; consecutive entries correspond
        to consecutive windows of the source sequence and to query segments
        that (approximately) follow each other.
    """

    source_id: str
    matches: Tuple[SegmentMatch, ...]

    @property
    def window_count(self) -> int:
        """Number of concatenated windows (the paper's ``k``)."""
        return len(self.matches)

    @property
    def db_start(self) -> int:
        """Start offset of the covered database region."""
        return self.matches[0].window.start

    @property
    def db_stop(self) -> int:
        """Exclusive end offset of the covered database region."""
        return self.matches[-1].window.stop

    @property
    def db_length(self) -> int:
        """Length of the covered database region (``k * lambda / 2``)."""
        return self.db_stop - self.db_start

    @property
    def query_start(self) -> int:
        """Start offset of the covered query region."""
        return min(match.query_start for match in self.matches)

    @property
    def query_stop(self) -> int:
        """Exclusive end offset of the covered query region."""
        return max(match.query_stop for match in self.matches)

    def __repr__(self) -> str:
        return (
            f"CandidateChain(source={self.source_id!r}, windows={self.window_count}, "
            f"db=[{self.db_start}:{self.db_stop}], "
            f"query=[{self.query_start}:{self.query_stop}])"
        )


def chain_segment_matches(
    matches: TypingSequence[SegmentMatch],
    config: MatcherConfig,
) -> List[CandidateChain]:
    """Concatenate consecutive window matches into maximal chains.

    Two matches are chainable when their windows are consecutive in the same
    source sequence and the second query segment starts where the first one
    ends, give or take the shift budget ``lambda0``.  The function computes,
    for every match, the longest chain ending at it (a small dynamic
    program over window ordinals) and returns the maximal chains sorted by
    decreasing window count, which is the order Type II verification wants.
    """
    if not matches:
        return []

    # Group matches by source and window ordinal for O(1) predecessor lookup.
    by_ordinal: Dict[Tuple[str, int], List[int]] = {}
    for index, match in enumerate(matches):
        key = (match.window.source_id, match.window.ordinal)
        by_ordinal.setdefault(key, []).append(index)

    tolerance = config.max_shift
    best_length = [1] * len(matches)
    predecessor = [-1] * len(matches)

    order = sorted(range(len(matches)), key=lambda i: matches[i].window.ordinal)
    for index in order:
        match = matches[index]
        previous_key = (match.window.source_id, match.window.ordinal - 1)
        for prev_index in by_ordinal.get(previous_key, ()):
            previous = matches[prev_index]
            gap = abs(match.query_start - previous.query_stop)
            if gap > tolerance:
                continue
            if best_length[prev_index] + 1 > best_length[index]:
                best_length[index] = best_length[prev_index] + 1
                predecessor[index] = prev_index

    # A match is a chain end when no other match extends it.
    extended = set(p for p in predecessor if p >= 0)
    chains: List[CandidateChain] = []
    for index in range(len(matches)):
        if index in extended:
            continue
        links: List[SegmentMatch] = []
        cursor = index
        while cursor >= 0:
            links.append(matches[cursor])
            cursor = predecessor[cursor]
        links.reverse()
        chains.append(CandidateChain(links[0].window.source_id, tuple(links)))
    chains.sort(key=lambda chain: chain.window_count, reverse=True)
    return chains
