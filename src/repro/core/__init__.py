"""The paper's primary contribution: the subsequence-matching framework.

The framework runs in five steps (Section 7):

1. partition every database sequence into windows of length ``lambda/2``
   (:mod:`repro.core.segmentation`);
2. insert the windows into a metric index -- by default the reference net
   (:mod:`repro.indexing`);
3. extract from the query all segments with lengths between
   ``lambda/2 - lambda0`` and ``lambda/2 + lambda0``;
4. run a range query for every query segment, producing (segment, window)
   pairs;
5. generate candidate subsequence pairs from those matches and verify them
   (:mod:`repro.core.candidates`, :mod:`repro.core.verification`), answering
   the user's Type I / II / III query.

:class:`~repro.core.matcher.SubsequenceMatcher` is the public face of the
pipeline.
"""

from repro.core.config import MatcherConfig
from repro.core.queries import (
    QueryResult,
    QueryStats,
    RangeQuery,
    LongestSubsequenceQuery,
    NearestSubsequenceQuery,
    SegmentMatch,
    SubsequenceMatch,
    TopKCandidates,
    TopKQuery,
    as_query_spec,
    match_ranking_key,
)
from repro.core.segmentation import partition_database, extract_query_segments
from repro.core.candidates import CandidateChain, chain_segment_matches
from repro.core.executor import (
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    make_executor,
)
from repro.core.pipeline import ProbeResult, QueryPipeline
from repro.core.matcher import SubsequenceMatcher
from repro.core.sharded import ShardedMatcher
from repro.core.service import SearchService, config_fingerprint
from repro.core.wire import (
    WIRE_SCHEMA_VERSION,
    SearchRequest,
    canonical_json,
    error_envelope,
    parse_search_request,
    parse_spec,
    result_envelope,
    sequence_from_wire,
    sequence_to_wire,
)
from repro.core.bruteforce import brute_force_matches, brute_force_longest, brute_force_nearest

__all__ = [
    "SearchService",
    "config_fingerprint",
    "WIRE_SCHEMA_VERSION",
    "SearchRequest",
    "canonical_json",
    "error_envelope",
    "parse_search_request",
    "parse_spec",
    "result_envelope",
    "sequence_from_wire",
    "sequence_to_wire",
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "make_executor",
    "ShardedMatcher",
    "MatcherConfig",
    "QueryResult",
    "QueryStats",
    "RangeQuery",
    "LongestSubsequenceQuery",
    "NearestSubsequenceQuery",
    "SegmentMatch",
    "SubsequenceMatch",
    "TopKCandidates",
    "TopKQuery",
    "as_query_spec",
    "match_ranking_key",
    "partition_database",
    "extract_query_segments",
    "CandidateChain",
    "chain_segment_matches",
    "ProbeResult",
    "QueryPipeline",
    "SubsequenceMatcher",
    "brute_force_matches",
    "brute_force_longest",
    "brute_force_nearest",
]
