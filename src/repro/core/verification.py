"""Step 5b: verifying candidate chains as actual subsequence matches.

A candidate chain says "the windows ``[db_start, db_stop)`` of sequence ``s``
matched the query region ``[query_start, query_stop)`` segment by segment".
Verification turns that hint into a concrete pair of subsequences whose
distance is actually within the query radius.  Section 7 of the paper bounds
where the endpoints of such subsequences can lie; within those bounds this
module offers two strategies:

* :func:`verify_chain` -- check the chain's own span and then greedily grow
  it while the distance stays within the radius (the practical strategy the
  matcher uses for Type II/III);
* :func:`enumerate_matches` -- exhaustively check every admissible endpoint
  combination (used for Type I on small inputs and by the test-suite as an
  oracle).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.candidates import CandidateChain
from repro.core.config import MatcherConfig
from repro.core.queries import SubsequenceMatch
from repro.distances.base import Distance
from repro.distances.cache import DistanceCache
from repro.sequences.sequence import Sequence


def _clip(value: int, low: int, high: int) -> int:
    return max(low, min(high, value))


def chain_bounds(
    chain: CandidateChain,
    query_length: int,
    db_length: int,
    config: MatcherConfig,
) -> Tuple[range, range, range, range]:
    """Admissible endpoint ranges for subsequences expanded from ``chain``.

    Following Section 7: starting from a matched pair, the query-side
    subsequence may start up to ``lambda/2 + lambda0`` before the matched
    region and end up to ``lambda/2 + lambda0`` after it, while the
    database-side subsequence may extend by up to ``lambda/2`` before its
    first window and after its last one.  Ranges are clipped to the actual
    sequence lengths.
    """
    reach_q = config.window_length + config.max_shift
    reach_x = config.window_length
    q_starts = range(_clip(chain.query_start - reach_q, 0, query_length), chain.query_start + 1)
    q_stops = range(chain.query_stop, _clip(chain.query_stop + reach_q, 0, query_length) + 1)
    x_starts = range(_clip(chain.db_start - reach_x, 0, db_length), chain.db_start + 1)
    x_stops = range(chain.db_stop, _clip(chain.db_stop + reach_x, 0, db_length) + 1)
    return q_starts, q_stops, x_starts, x_stops


def _admissible(
    q_start: int,
    q_stop: int,
    x_start: int,
    x_stop: int,
    config: MatcherConfig,
    equal_only: bool = False,
) -> bool:
    """Length constraints of the paper: both >= lambda, difference <= lambda0.

    ``equal_only`` additionally forces equal lengths, which is required when
    the distance is a lockstep measure (Euclidean, Hamming).
    """
    q_len = q_stop - q_start
    x_len = x_stop - x_start
    if q_len < config.min_length or x_len < config.min_length:
        return False
    if equal_only:
        return q_len == x_len
    return abs(q_len - x_len) <= config.max_shift


class _VerificationCounter:
    """Tiny helper so the matcher can report verification-time distance work.

    ``count`` is fresh kernel executions; ``cache_hits`` is distance
    requests answered by the matcher's :class:`DistanceCache`.
    """

    def __init__(self) -> None:
        self.count = 0
        self.cache_hits = 0


def _measure(
    distance: Distance,
    first: Sequence,
    second: Sequence,
    radius: float,
    counter: _VerificationCounter,
    cache: Optional[DistanceCache],
) -> float:
    """One verification-time distance request, early-abandoned past ``radius``.

    The returned value is exact whenever it is at most ``radius`` (which is
    all verification decisions need); beyond the radius it may be ``inf``.
    Results -- including abandoned lower bounds -- go through the shared
    cache so Type III's repeated re-verification of the same chain at
    growing radii never recomputes a pair.
    """
    if cache is not None:
        cached = cache.lookup(first, second, cutoff=radius)
        if cached is not None:
            counter.cache_hits += 1
            return cached
    value = distance.bounded(first, second, radius)
    counter.count += 1
    if cache is not None:
        cache.store(first, second, value, cutoff=radius)
    return value


def verify_chain(
    chain: CandidateChain,
    query: Sequence,
    db_sequence: Sequence,
    distance: Distance,
    radius: float,
    config: MatcherConfig,
    counter: Optional[_VerificationCounter] = None,
    cache: Optional[DistanceCache] = None,
) -> Optional[SubsequenceMatch]:
    """Verify ``chain`` and greedily extend it into the longest passing match.

    The strategy starts from the smallest admissible pair containing the
    chain's span, checks it, and then repeatedly tries to extend either end
    of either subsequence by one element, keeping any extension that stays
    within ``radius``.  The result is a locally-maximal match; ``None`` means
    not even the minimal admissible pair is within ``radius``.
    """
    counter = counter if counter is not None else _VerificationCounter()
    query_length = len(query)
    db_length = len(db_sequence)
    equal_only = not distance.supports_unequal_lengths
    shift = 0 if equal_only else config.max_shift

    # A single matched window is shorter than lambda, so the chain span has
    # to grow before the first check.  Which direction to grow is not known
    # without computing distances, so three cheap anchorings are tried: grow
    # rightwards, grow leftwards, and grow symmetrically.
    best: Optional[SubsequenceMatch] = None
    seen_spans = set()
    for direction in ("right", "left", "both"):
        q_start, q_stop = _grow_to_length(
            chain.query_start, chain.query_stop, config.min_length, query_length, direction
        )
        x_start, x_stop = _grow_to_length(
            chain.db_start, chain.db_stop, config.min_length, db_length, direction
        )
        if q_stop - q_start < config.min_length or x_stop - x_start < config.min_length:
            continue
        q_start, q_stop, x_start, x_stop = _balance_lengths(
            q_start, q_stop, query_length, x_start, x_stop, db_length, shift
        )
        span = (q_start, q_stop, x_start, x_stop)
        if span in seen_spans:
            continue
        seen_spans.add(span)
        if not _admissible(q_start, q_stop, x_start, x_stop, config, equal_only):
            continue
        value = _measure(
            distance,
            query.subsequence(q_start, q_stop),
            db_sequence.subsequence(x_start, x_stop),
            radius,
            counter,
            cache,
        )
        if value > radius:
            continue
        best = SubsequenceMatch(
            distance=value,
            source_id=chain.source_id,
            query_start=q_start,
            query_stop=q_stop,
            db_start=x_start,
            db_stop=x_stop,
        )
        break
    if best is None:
        return None

    # Greedy bidirectional extension: keep any single-step growth that stays
    # within the radius and the admissibility constraints.
    improved = True
    reach_q = config.window_length + config.max_shift
    reach_x = config.window_length
    min_q_start = max(0, chain.query_start - reach_q)
    max_q_stop = min(query_length, chain.query_stop + reach_q)
    min_x_start = max(0, chain.db_start - reach_x)
    max_x_stop = min(db_length, chain.db_stop + reach_x)
    while improved:
        improved = False
        moves = (
            (best.query_start - 1, best.query_stop, best.db_start, best.db_stop),
            (best.query_start, best.query_stop + 1, best.db_start, best.db_stop),
            (best.query_start, best.query_stop, best.db_start - 1, best.db_stop),
            (best.query_start, best.query_stop, best.db_start, best.db_stop + 1),
            (best.query_start - 1, best.query_stop, best.db_start - 1, best.db_stop),
            (best.query_start, best.query_stop + 1, best.db_start, best.db_stop + 1),
        )
        for q0, q1, x0, x1 in moves:
            if q0 < min_q_start or q1 > max_q_stop or x0 < min_x_start or x1 > max_x_stop:
                continue
            if not _admissible(q0, q1, x0, x1, config, equal_only):
                continue
            if (q1 - q0) + (x1 - x0) <= best.query_length + best.db_length:
                continue
            value = _measure(
                distance,
                query.subsequence(q0, q1),
                db_sequence.subsequence(x0, x1),
                radius,
                counter,
                cache,
            )
            if value <= radius:
                best = SubsequenceMatch(
                    distance=value,
                    source_id=chain.source_id,
                    query_start=q0,
                    query_stop=q1,
                    db_start=x0,
                    db_stop=x1,
                )
                improved = True
                break
    return best


def _grow_to_length(
    start: int, stop: int, target: int, limit: int, direction: str = "both"
) -> Tuple[int, int]:
    """Extend ``[start, stop)`` to at least ``target`` elements within ``[0, limit)``.

    ``direction`` chooses which end grows first: ``"right"`` prefers
    extending the stop, ``"left"`` the start, ``"both"`` alternates.  When
    the preferred end hits the sequence boundary the other end takes over,
    so the result always reaches ``target`` if the sequence allows it.
    """
    while stop - start < target:
        extended = False
        grow_right_first = direction in ("right", "both")
        if grow_right_first and stop < limit:
            stop += 1
            extended = True
        if stop - start < target and direction in ("left", "both") and start > 0:
            start -= 1
            extended = True
        if stop - start < target and not extended:
            # Preferred ends exhausted; fall back to whichever end still has room.
            if stop < limit:
                stop += 1
                extended = True
            elif start > 0:
                start -= 1
                extended = True
        if not extended:
            break
    return start, stop


def _balance_lengths(
    q_start: int,
    q_stop: int,
    query_length: int,
    x_start: int,
    x_stop: int,
    db_length: int,
    max_shift: int,
) -> Tuple[int, int, int, int]:
    """Extend the shorter side until the length difference is within ``max_shift``."""
    while (x_stop - x_start) - (q_stop - q_start) > max_shift:
        if q_stop < query_length:
            q_stop += 1
        elif q_start > 0:
            q_start -= 1
        else:
            break
    while (q_stop - q_start) - (x_stop - x_start) > max_shift:
        if x_stop < db_length:
            x_stop += 1
        elif x_start > 0:
            x_start -= 1
        else:
            break
    return q_start, q_stop, x_start, x_stop


def enumerate_matches(
    chain: CandidateChain,
    query: Sequence,
    db_sequence: Sequence,
    distance: Distance,
    radius: float,
    config: MatcherConfig,
    counter: Optional[_VerificationCounter] = None,
    max_results: Optional[int] = None,
    cache: Optional[DistanceCache] = None,
) -> List[SubsequenceMatch]:
    """Exhaustively verify every admissible endpoint combination for ``chain``.

    This is the faithful (but expensive) realisation of the paper's Type I
    semantics within one candidate region.  The number of combinations grows
    with ``(lambda/2 + lambda0)^2 * (lambda/2)^2``, so the matcher only uses
    it when explicitly asked (``RangeQuery(exhaustive=True)``) or on small
    inputs; the test-suite uses it as an oracle.
    """
    counter = counter if counter is not None else _VerificationCounter()
    equal_only = not distance.supports_unequal_lengths
    q_starts, q_stops, x_starts, x_stops = chain_bounds(
        chain, len(query), len(db_sequence), config
    )
    results: List[SubsequenceMatch] = []
    for q_start in q_starts:
        for q_stop in q_stops:
            for x_start in x_starts:
                for x_stop in x_stops:
                    if not _admissible(q_start, q_stop, x_start, x_stop, config, equal_only):
                        continue
                    value = _measure(
                        distance,
                        query.subsequence(q_start, q_stop),
                        db_sequence.subsequence(x_start, x_stop),
                        radius,
                        counter,
                        cache,
                    )
                    if value <= radius:
                        results.append(
                            SubsequenceMatch(
                                distance=value,
                                source_id=chain.source_id,
                                query_start=q_start,
                                query_stop=q_stop,
                                db_start=x_start,
                                db_stop=x_stop,
                            )
                        )
                        if max_results is not None and len(results) >= max_results:
                            return results
    return results
