"""The backend-agnostic search facade: one API over every matcher backend.

The declarative query layer deliberately keeps *what* a query means (the
spec dataclasses of :mod:`repro.core.queries`) separate from *how* it is
executed.  :class:`SearchService` is the deployment-facing half of that
split: it wraps any backend --

* a plain :class:`~repro.core.matcher.SubsequenceMatcher`,
* a :class:`~repro.core.sharded.ShardedMatcher`,
* or a *snapshot path*, loaded lazily through
  :func:`repro.storage.persistence.load_matcher` on first use

-- behind the identical ``execute`` / ``execute_many`` surface, with
per-call executor/worker overrides.  Because every backend routes through
the same spec-in / :class:`~repro.core.queries.QueryResult`-out discipline,
a service answers a given spec with byte-identical matches and work
counters whichever backend serves it (for top-k and Type III the sharded
sweep merges to exactly the unsharded answer; Type I/II keep their
documented ordering/tie-break differences).

The service also exposes a stable :func:`config_fingerprint` so callers
(e.g. the CLI's ``--json`` envelope) can tell results produced under
different configurations apart without diffing configs field by field.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import asdict
from pathlib import Path
from typing import List, Optional

from repro.core.queries import QueryResult, QueryStats
from repro.exceptions import StorageError

from repro.sequences.sequence import Sequence


def config_fingerprint(backend) -> str:
    """A short stable digest of everything that shapes a backend's answers.

    Covers the full :class:`~repro.core.config.MatcherConfig`, the distance
    name, the backend class, the shard count, and the identity of the data
    being searched (sequence ids and total element count).  Two backends
    with equal fingerprints answer every spec with identical matches and
    work counters (executor/workers are part of the config but never change
    results; they are included so the fingerprint also identifies the
    *performance* configuration a measurement was taken under).  Because
    the data block is covered, any ``add_sequence`` / ``remove_sequence``
    mutation invalidates the fingerprint -- a cached envelope can always be
    tied to the exact corpus that produced it.
    """
    database = getattr(backend, "database", None)
    payload = {
        "backend": type(backend).__name__,
        "config": asdict(backend.config),
        "distance": backend.distance.name,
        "shards": getattr(backend, "shard_count", 1),
        "data": None
        if database is None
        else {"sequences": database.ids(), "total_length": database.total_length},
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    )
    return digest.hexdigest()[:16]


class SearchService:
    """One ``execute()`` surface over a matcher, sharded matcher, or snapshot.

    Parameters
    ----------
    backend:
        A ready :class:`~repro.core.matcher.SubsequenceMatcher` or
        :class:`~repro.core.sharded.ShardedMatcher`, **or** a filesystem
        path to a matcher snapshot written by
        :func:`repro.storage.persistence.save_matcher`.  A path is loaded
        lazily -- construction is free, the snapshot is read on the first
        query (or on the first :attr:`backend` access).
    distance / cache:
        Forwarded to :func:`~repro.storage.persistence.load_matcher` for
        path backends (ignored for in-memory backends): an explicitly
        configured distance instance and an externally-owned cache.

    Examples
    --------
    ::

        service = SearchService(matcher)                 # in-memory backend
        service = SearchService("matcher-snapshot.npz")  # lazy snapshot
        result = service.execute(TopKQuery(k=5, max_radius=10).bind(query))
        result.matches, result.stats, result.query
    """

    def __init__(
        self,
        backend,
        distance=None,
        cache=None,
    ) -> None:
        self._backend = None
        self._snapshot_path: Optional[Path] = None
        self._load_distance = distance
        self._load_cache = cache
        # Serialises every execute/mutation: the matcher pipeline keeps
        # per-query scratch state (segment memo, index-counter checkpoints)
        # and _with_executor temporarily rewrites the backend config, so one
        # shared service instance must never run two queries concurrently.
        # Callers (e.g. the HTTP server) may hold many requests in flight;
        # this lock is what makes that safe.
        self._lock = threading.RLock()
        if isinstance(backend, (str, Path)):
            self._snapshot_path = Path(backend)
        else:
            self._backend = backend

    @property
    def backend(self):
        """The wrapped matcher, loading the snapshot on first access."""
        if self._backend is None:
            with self._lock:
                if self._backend is None:
                    # Imported here: the service must stay importable
                    # without storage.
                    from repro.storage.persistence import load_matcher

                    self._backend = load_matcher(
                        self._snapshot_path,
                        distance=self._load_distance,
                        cache=self._load_cache,
                    )
        return self._backend

    @property
    def snapshot_path(self) -> Optional[Path]:
        """The snapshot path this service loads from, if path-backed."""
        return self._snapshot_path

    @property
    def loaded(self) -> bool:
        """Whether a backend is in memory (``False``: snapshot not yet read).

        Observing this never triggers the lazy load -- health checks can
        report on an unloaded service without paying for the snapshot read.
        """
        return self._backend is not None

    @property
    def last_query_stats(self) -> QueryStats:
        """The wrapped backend's most recent query statistics."""
        return self.backend.last_query_stats

    @property
    def last_batch_stats(self) -> List[QueryStats]:
        """The wrapped backend's most recent ``execute_many`` statistics."""
        return self.backend.last_batch_stats

    def fingerprint(self) -> str:
        """The backend's :func:`config_fingerprint`."""
        return config_fingerprint(self.backend)

    def close(self) -> None:
        """Release the backend's OS-level resources; idempotent.

        Never triggers the lazy snapshot load: a service that was never
        queried has nothing to release.  The service remains usable after
        closing (resources are re-created on demand).
        """
        with self._lock:
            backend = self._backend
            if backend is not None:
                backend.close()

    def _with_executor(self, executor: Optional[str], workers: Optional[int], run):
        """Run ``run(backend)`` under a per-call executor/worker override.

        The override is applied through the backend's ``set_executor`` and
        restored afterwards, so a service shared by many callers never
        leaks one caller's engine choice into the next call.  Results and
        work counters are executor-independent, so overrides are always
        safe -- they change wall-clock, not answers.
        """
        with self._lock:
            backend = self.backend
            if executor is None and workers is None:
                return run(backend)
            # Restore the exact prior objects rather than calling set_executor
            # again: set_executor(workers=None) deliberately *keeps* the
            # current worker count, which would leak the override into the
            # backend.
            holder = backend.pipeline if hasattr(backend, "pipeline") else backend
            previous_config = backend.config
            previous_engine = holder.executor
            backend.set_executor(
                executor if executor is not None else previous_config.executor, workers
            )
            try:
                return run(backend)
            finally:
                backend.config = previous_config
                if holder is not backend:
                    holder.config = previous_config
                holder.executor = previous_engine

    def execute(
        self,
        spec,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> QueryResult:
        """Execute one bound spec; see
        :meth:`~repro.core.matcher.SubsequenceMatcher.execute`.

        ``executor`` / ``workers`` override the execution engine for this
        call only.
        """
        return self._with_executor(executor, workers, lambda backend: backend.execute(spec))

    def execute_many(
        self,
        specs: List,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> List[QueryResult]:
        """Execute many bound specs (heterogeneous types allowed); see
        :meth:`~repro.core.matcher.SubsequenceMatcher.execute_many`."""
        return self._with_executor(
            executor, workers, lambda backend: backend.execute_many(specs)
        )

    # ------------------------------------------------------------------ #
    # Mutations: first-class, backend-agnostic
    # ------------------------------------------------------------------ #
    def add_sequence(self, sequence: Sequence, seq_id: Optional[str] = None) -> str:
        """Incrementally add a sequence through the wrapped backend.

        Works identically over a plain matcher, a sharded matcher (which
        continues its round-robin shard assignment), and a lazily-loaded
        snapshot backend.  The service's :meth:`fingerprint` covers the
        database contents, so it changes after every successful add.
        """
        with self._lock:
            return self.backend.add_sequence(sequence, seq_id=seq_id)

    def remove_sequence(self, seq_id: str) -> Sequence:
        """Remove a sequence (and its index windows) through the backend."""
        with self._lock:
            return self.backend.remove_sequence(seq_id)

    def save_snapshot(self, path=None) -> Path:
        """Persist the backend's built state with ``save_matcher``.

        ``path`` defaults to the snapshot path the service was constructed
        from; a service wrapping an in-memory backend must pass one
        explicitly.
        """
        with self._lock:
            target = Path(path) if path is not None else self._snapshot_path
            if target is None:
                raise StorageError(
                    "save_snapshot() needs a path: this service wraps an "
                    "in-memory backend and was not constructed from a snapshot"
                )
            # Imported here: the service must stay importable without storage.
            from repro.storage.persistence import save_matcher

            save_matcher(self.backend, target)
            return target

    def __repr__(self) -> str:
        if self._backend is None:
            return f"SearchService(snapshot={str(self._snapshot_path)!r}, unloaded)"
        return f"SearchService(backend={self._backend!r})"


__all__ = ["SearchService", "config_fingerprint"]
