"""The shared declarative query surface of every matcher backend.

:class:`QueryInterfaceMixin` holds everything the plain
:class:`~repro.core.matcher.SubsequenceMatcher` and the
:class:`~repro.core.sharded.ShardedMatcher` expose identically on top of
their per-class ``execute(spec)`` dispatch: the heterogeneous
:meth:`~QueryInterfaceMixin.execute_many` batch entry point and the legacy
per-sequence convenience wrappers.  Keeping them here -- written once --
is what guarantees the two backends' public query APIs cannot drift.

The host class only needs to provide ``execute(spec) -> QueryResult`` and
the ``last_query_stats`` / ``last_batch_stats`` attributes.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Union

from repro.core.queries import (
    BaseQuery,
    LongestSubsequenceQuery,
    NearestSubsequenceQuery,
    QueryResult,
    QueryStats,
    RangeQuery,
    SubsequenceMatch,
    TopKQuery,
    as_query_spec,
)
from repro.exceptions import QueryError
from repro.sequences.sequence import Sequence

#: A query specification accepted by :meth:`QueryInterfaceMixin.batch_query`.
QuerySpec = Union[
    RangeQuery, LongestSubsequenceQuery, NearestSubsequenceQuery, TopKQuery, float
]


class QueryInterfaceMixin:
    """``execute_many`` and the legacy wrappers, shared by every backend."""

    def execute_many(self, specs: List) -> List[QueryResult]:
        """Answer many bound specs -- of any mix of query types -- in order.

        The heterogeneous successor of the legacy :meth:`batch_query`: each
        spec carries its own query sequence and parameters, so one batch
        can mix range, longest, nearest, and top-k queries.  A query that
        raises :class:`~repro.exceptions.QueryError` (a Type III/top-k
        query with no segment match at ``max_radius``, or an unbound spec)
        contributes an envelope with
        :attr:`~repro.core.queries.QueryResult.error` set instead of
        aborting the batch; an entry that is not a query spec at all is a
        programming error and propagates.  The error envelope carries the
        failed query's own statistics (the sweep that found no segment
        matches) or empty statistics when the query failed before doing any
        work -- never another query's accounting.  Per-query statistics
        land in :attr:`last_batch_stats` (:attr:`last_query_stats` keeps
        the final query's stats).
        """
        results: List[QueryResult] = []
        batch_stats: List[QueryStats] = []
        for spec in specs:
            previous_stats = self.last_query_stats
            try:
                result = self.execute(spec)
            except QueryError as error:
                if not isinstance(spec, BaseQuery):
                    raise
                stats = self.last_query_stats
                if stats is previous_stats:
                    # The query failed before installing its own stats
                    # (e.g. an unbound spec): report zero work, not the
                    # previous query's accounting.
                    stats = QueryStats()
                result = QueryResult.build(spec, [], stats, error=str(error))
            results.append(result)
            batch_stats.append(result.stats)
        self.last_batch_stats = batch_stats
        return results

    # ------------------------------------------------------------------ #
    # Legacy convenience methods: thin wrappers over execute()
    # ------------------------------------------------------------------ #
    @staticmethod
    def _warn_legacy(method: str, spec_class: str) -> None:
        warnings.warn(
            f"{method}() is deprecated; build a {spec_class} spec and call "
            "execute(spec.bind(query)) instead",
            DeprecationWarning,
            stacklevel=3,
        )

    def range_search(
        self, query: Sequence, spec: Union[RangeQuery, float]
    ) -> List[SubsequenceMatch]:
        """Type I: pairs of similar subsequences within the given radius.

        Thin wrapper over ``execute``; prefer building a
        :class:`~repro.core.queries.RangeQuery` and executing it.  With the
        default (non-exhaustive) verification, one locally-maximal match is
        reported per candidate chain; pass ``RangeQuery(radius,
        exhaustive=True)`` -- practical on small inputs only -- to
        enumerate every admissible pair in every candidate region.
        """
        self._warn_legacy("range_search", "RangeQuery")
        if not isinstance(spec, RangeQuery):
            spec = RangeQuery(radius=float(spec))
        return list(self.execute(spec.bind(query)).matches)

    def longest_similar(
        self, query: Sequence, spec: Union[LongestSubsequenceQuery, float]
    ) -> Optional[SubsequenceMatch]:
        """Type II: the longest pair of similar subsequences within the radius.

        Thin wrapper over ``execute``.  Following Section 7, candidate
        chains are examined longest first: a chain of ``k`` concatenated
        windows can support a match of length up to ``(k + 2) * lambda /
        2``, so once a chain verifies, shorter chains that cannot possibly
        beat the verified length are skipped.
        """
        self._warn_legacy("longest_similar", "LongestSubsequenceQuery")
        if not isinstance(spec, LongestSubsequenceQuery):
            spec = LongestSubsequenceQuery(radius=float(spec))
        return self.execute(spec.bind(query)).best

    def nearest_subsequence(
        self, query: Sequence, spec: Union[NearestSubsequenceQuery, float]
    ) -> Optional[SubsequenceMatch]:
        """Type III: the pair of subsequences with the smallest distance.

        Thin wrapper over ``execute``; equivalent to a
        :class:`~repro.core.queries.TopKQuery` with ``k=1`` (both run the
        backend's ``_radius_sweep``).
        """
        self._warn_legacy("nearest_subsequence", "NearestSubsequenceQuery")
        if not isinstance(spec, NearestSubsequenceQuery):
            spec = NearestSubsequenceQuery(max_radius=float(spec))
        return self.execute(spec.bind(query)).best

    def topk_subsequences(
        self, query: Sequence, spec: Union[TopKQuery, int], max_radius: Optional[float] = None
    ) -> List[SubsequenceMatch]:
        """The ``k`` nearest subsequence pairs, best first.

        Thin wrapper over ``execute``; ``topk_subsequences(q, k,
        max_radius)`` builds the :class:`~repro.core.queries.TopKQuery`
        for you.
        """
        if not isinstance(spec, TopKQuery):
            if max_radius is None:
                raise QueryError("topk_subsequences needs max_radius when spec is a bare k")
            spec = TopKQuery(k=int(spec), max_radius=float(max_radius))
        return list(self.execute(spec.bind(query)).matches)

    def batch_query(
        self, queries: List[Sequence], spec: QuerySpec
    ) -> List[Union[List[SubsequenceMatch], Optional[SubsequenceMatch]]]:
        """Answer many queries of the same type through one backend.

        Legacy wrapper over :meth:`execute_many`: ``spec`` selects the
        query type exactly as in the single-query methods (a bare float is
        a Type I radius) and is bound to each query sequence in turn.
        Returns one result per query, of the type the corresponding
        single-query method returns; a query that fails with
        :class:`~repro.exceptions.QueryError` contributes ``None``.
        """
        spec = as_query_spec(spec)
        outcomes = self.execute_many([spec.bind(query) for query in queries])
        if isinstance(spec, (RangeQuery, TopKQuery)):
            return [
                list(outcome.matches) if outcome.error is None else None
                for outcome in outcomes
            ]
        return [outcome.best for outcome in outcomes]
