"""Steps 1 and 3 of the framework: database and query segmentation.

Lemma 2 of the paper is the reason windows of length ``lambda/2`` suffice:
any subsequence of length at least ``lambda`` fully contains at least one
such window, so a match of the whole subsequence implies a match of that
window against *some* segment of the query (by consistency).  Lemma 3 turns
this into a pruning rule: windows with no matching query segment can be
ruled out entirely.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.core.config import MatcherConfig
from repro.exceptions import ConfigurationError
from repro.sequences.database import SequenceDatabase
from repro.sequences.sequence import Sequence
from repro.sequences.windows import Window, sliding_windows


def partition_database(database: SequenceDatabase, config: MatcherConfig) -> List[Window]:
    """Step 1: cut every database sequence into ``lambda/2``-length windows.

    Sequences shorter than one window contribute nothing (they can never
    contain a subsequence of length ``lambda``), matching the paper's
    analysis.
    """
    return database.windows(config.window_length)


def extract_query_segments(query: Sequence, config: MatcherConfig) -> List[Window]:
    """Step 3: extract query segments of every admissible length.

    Lengths range over ``lambda/2 - lambda0 .. lambda/2 + lambda0``
    (:attr:`MatcherConfig.segment_lengths`); start positions advance by
    :attr:`MatcherConfig.query_segment_step`.  The paper's bound of at most
    ``(2 * lambda0 + 1) * |Q|`` segments corresponds to a step of 1.
    """
    if len(query) < config.segment_lengths.start:
        raise ConfigurationError(
            f"query of length {len(query)} is shorter than the smallest segment "
            f"length {config.segment_lengths.start}"
        )
    segments: List[Window] = []
    for length in config.segment_lengths:
        if length > len(query):
            continue
        segments.extend(
            sliding_windows(
                query,
                window_length=length,
                step=config.query_segment_step,
                source_id=query.seq_id or "query",
            )
        )
    return segments


def iter_query_segments(query: Sequence, config: MatcherConfig) -> Iterator[Window]:
    """Lazy variant of :func:`extract_query_segments` (same order)."""
    if len(query) < config.segment_lengths.start:
        raise ConfigurationError(
            f"query of length {len(query)} is shorter than the smallest segment "
            f"length {config.segment_lengths.start}"
        )
    for length in config.segment_lengths:
        if length > len(query):
            continue
        yield from sliding_windows(
            query,
            window_length=length,
            step=config.query_segment_step,
            source_id=query.seq_id or "query",
        )


def count_segment_pairs(query: Sequence, database: SequenceDatabase, config: MatcherConfig) -> dict:
    """Work bound of Section 5: segment pairs vs brute-force subsequence pairs.

    Returns a dictionary with the number of database windows, query
    segments, their product (the framework's worst case, ``O(|Q||X|)``), and
    the brute-force count ``O(|Q|^2 |X|^2)`` of subsequence pairs, which the
    complexity benchmark tabulates.
    """
    windows = database.window_count(config.window_length)
    segments = 0
    for length in config.segment_lengths:
        if length <= len(query):
            segments += (len(query) - length) // config.query_segment_step + 1
    total_db = database.total_length
    brute_force = (len(query) * (len(query) + 1) // 2) * (total_db * (total_db + 1) // 2)
    return {
        "windows": windows,
        "segments": segments,
        "segment_pairs": windows * segments,
        "brute_force_pairs": brute_force,
    }
