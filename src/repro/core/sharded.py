"""A sharded matcher: one logical matcher over N independent partitions.

Scaling the framework past one index means partitioning the window set.
Candidate chains never span database sequences (a chain is a run of
consecutive windows of *one* sequence), so partitioning **by sequence** is
lossless: every chain the single-matcher pipeline would build lives wholly
inside one shard, and the union of the shards' verified matches is exactly
the single matcher's match set.  :class:`ShardedMatcher` exploits that:

* sequences are assigned to ``N`` shards round-robin in database order
  (deterministic, and kept deterministic by :meth:`add_sequence`, which
  continues the round-robin);
* each shard is a full :class:`~repro.core.matcher.SubsequenceMatcher`
  with its own index, its own distance cache, and a serial pipeline --
  shards share *nothing*, which is what makes the fan-out's statistics
  order-independent;
* queries fan out through the configured executor (thread pool for
  ``thread``/``process`` configs -- matcher shards are in-process objects,
  so process fan-out would only add pickling for nothing -- serial
  otherwise) and merge deterministically.

Per query type:

* **Type I** returns the union of the shard results, sorted canonically
  (by source id and span); the *set* of matches is identical to the
  single matcher's, whose own order follows its global chain order.
* **Type II** takes the best shard result by ``(length desc, distance
  asc)``, shard order breaking exact ties.
* **Type III and top-k** replicate the single matcher's radius sweep
  *globally*: the binary search asks every shard for segment matches per
  probe, and each verification pass runs on every shard at the same
  radius, feeding one global k-bounded candidate heap ordered by the
  deterministic :func:`~repro.core.queries.match_ranking_key` -- so the
  sweep visits the same radii as a single matcher and the ranked result,
  ties included, is *identical* to the unsharded one (a per-shard sweep
  would not be: a shard whose segment matches appear only at larger radii
  could return a closer match the global sweep never reaches).

Statistics merge with
:meth:`~repro.core.queries.QueryStats.across_shards`: work counters and
timings sum, ``segments_extracted`` stays per-query, and the naive
denominator sums to exactly the single matcher's ``segments x windows``.
"""

from __future__ import annotations

from dataclasses import replace
from functools import singledispatchmethod
from typing import Dict, List, Optional, Tuple, Union

from repro.core.config import MatcherConfig
from repro.core.executor import Executor, WorkTask, make_executor
from repro.core.matcher import SubsequenceMatcher
from repro.core.queries import (
    LongestSubsequenceQuery,
    NearestSubsequenceQuery,
    QueryResult,
    QueryStats,
    RangeQuery,
    SubsequenceMatch,
    TopKCandidates,
    TopKQuery,
)
from repro.core.query_api import QueryInterfaceMixin
from repro.distances.base import Distance
from repro.exceptions import ConfigurationError, QueryError
from repro.sequences.database import SequenceDatabase
from repro.sequences.sequence import Sequence
from repro.sequences.windows import Window


def _match_sort_key(match: SubsequenceMatch) -> tuple:
    return (
        match.source_id,
        match.db_start,
        match.query_start,
        match.db_stop,
        match.query_stop,
        match.distance,
    )


def _better_longest(
    candidate: Optional[SubsequenceMatch], best: Optional[SubsequenceMatch]
) -> bool:
    """Type II comparison: longer wins, ties go to the smaller distance."""
    if candidate is None:
        return False
    if best is None:
        return True
    return candidate.length > best.length or (
        candidate.length == best.length and candidate.distance < best.distance
    )


class ShardedMatcher(QueryInterfaceMixin):
    """Partition a sequence database across N independent matcher shards.

    Parameters
    ----------
    database:
        The sequences to search; snapshotted at construction exactly like
        the single matcher (use :meth:`add_sequence` /
        :meth:`remove_sequence` afterwards).
    distance / config:
        As for :class:`~repro.core.matcher.SubsequenceMatcher`.
        ``config.shards`` fixes the shard count (a ``shards`` argument
        overrides it); ``config.executor`` / ``config.workers`` choose the
        fan-out engine.  Shard-internal pipelines always run serially --
        the parallelism budget is spent across shards, not nested inside
        them.

    Attributes
    ----------
    shards:
        The per-partition :class:`SubsequenceMatcher` instances, in shard
        order.
    last_query_stats / last_batch_stats:
        Merged accounting, as for the single matcher; the per-shard records
        ride along in ``last_query_stats.passes``.
    """

    def __init__(
        self,
        database: SequenceDatabase,
        distance: Distance,
        config: MatcherConfig,
        shards: Optional[int] = None,
    ) -> None:
        count = config.shards if shards is None else shards
        if count < 1:
            raise ConfigurationError(f"shards must be >= 1, got {count}")
        self.database = database
        self.distance = distance
        self.config = config
        self._shard_config = replace(config, executor="serial", shards=1)
        self._assignment: Dict[str, int] = {}
        shard_databases = [
            SequenceDatabase(database.kind, name=f"{database.name}/shard{i}")
            for i in range(count)
        ]
        for position, sequence in enumerate(database):
            shard = position % count
            shard_databases[shard].add(sequence)
            self._assignment[sequence.seq_id] = shard
        self._assigned = len(self._assignment)
        self.shards: List[SubsequenceMatcher] = [
            SubsequenceMatcher(shard_db, distance, self._shard_config)
            for shard_db in shard_databases
        ]
        self.executor = self._make_fan_out_executor(config)
        self.last_query_stats = QueryStats()
        self.last_batch_stats: List[QueryStats] = []

    @staticmethod
    def _make_fan_out_executor(config: MatcherConfig) -> Executor:
        # Shards are in-process matcher objects: a process pool could not
        # ship them without pickling whole indexes, so "process" degrades
        # gracefully to thread fan-out (the shard pipelines themselves are
        # serial either way).
        if config.executor == "serial":
            return make_executor("serial")
        return make_executor("thread", config.workers)

    # ------------------------------------------------------------------ #
    # Shard plumbing
    # ------------------------------------------------------------------ #
    @property
    def shard_count(self) -> int:
        """Number of partitions."""
        return len(self.shards)

    def set_executor(self, name: str, workers: Optional[int] = None) -> None:
        """Switch the fan-out engine (see the single matcher's method)."""
        if workers is None:
            workers = self.config.workers
        self.config = replace(self.config, executor=name, workers=workers)
        self.executor = self._make_fan_out_executor(self.config)

    def set_kernel(self, name: str) -> None:
        """Switch the distance-kernel tier on every shard."""
        self.config = replace(self.config, kernel=name)
        self._shard_config = replace(self._shard_config, kernel=name)
        for shard in self.shards:
            shard.set_kernel(name)

    def close(self) -> None:
        """Release OS-level resources on every shard; idempotent."""
        for shard in self.shards:
            shard.close()

    @property
    def windows(self) -> List[Window]:
        """All database windows, shard by shard."""
        collected: List[Window] = []
        for shard in self.shards:
            collected.extend(shard.windows)
        return collected

    def shard_of(self, seq_id: str) -> int:
        """The shard a sequence is assigned to."""
        try:
            return self._assignment[seq_id]
        except KeyError:
            raise QueryError(f"no sequence with id {seq_id!r} in this matcher") from None

    def _fan_out(self, fn) -> List[object]:
        """Run ``fn(shard)`` for every shard; results in shard order."""
        tasks = [WorkTask(lambda shard=shard: fn(shard)) for shard in self.shards]
        return [result.value for result in self.executor.run(tasks)]

    def _merge_stats(self) -> QueryStats:
        return self._finalize_stats(
            QueryStats.across_shards([shard.last_query_stats for shard in self.shards])
        )

    def _finalize_stats(self, stats: QueryStats) -> QueryStats:
        """Stamp the fan-out engine onto merged statistics and install them."""
        stats.executor = self.executor.name
        stats.workers = self.executor.workers
        stats.shards = self.shard_count
        self.last_query_stats = stats
        return stats

    # ------------------------------------------------------------------ #
    # Incremental updates
    # ------------------------------------------------------------------ #
    def add_sequence(self, sequence: Sequence, seq_id: Optional[str] = None) -> str:
        """Add ``sequence``, continuing the round-robin shard assignment.

        The outer database is the id authority: it admits (and, when
        ``seq_id`` is omitted, names) the sequence *first*, so a duplicate
        id is rejected atomically -- exactly like the single matcher --
        before any shard state is touched.
        """
        shard = self._assigned % self.shard_count
        key = self.database.add(sequence, seq_id)
        try:
            self.shards[shard].add_sequence(self.database[key], seq_id=key)
        except Exception:
            self.database.remove(key)
            raise
        self._assignment[key] = shard
        self._assigned += 1
        return key

    def remove_sequence(self, seq_id: str) -> Sequence:
        """Remove a sequence from its shard (and the outer database)."""
        shard = self.shard_of(seq_id)
        removed = self.shards[shard].remove_sequence(seq_id)
        self.database.remove(seq_id)
        del self._assignment[seq_id]
        return removed

    # ------------------------------------------------------------------ #
    # The declarative execute() entry point
    # ------------------------------------------------------------------ #
    @singledispatchmethod
    def execute(self, spec) -> QueryResult:
        """Answer a bound declarative query spec across every shard.

        The sharded twin of
        :meth:`~repro.core.matcher.SubsequenceMatcher.execute`: the same
        spec objects in, the same
        :class:`~repro.core.queries.QueryResult` envelope out.  Result
        paging (``limit``/``offset``) is applied *after* the shard merge,
        never inside a shard, so a paged sharded query pages over exactly
        the globally merged match list.
        """
        raise QueryError(f"unsupported query spec: {spec!r}")

    @execute.register
    def _execute_range(self, spec: RangeQuery) -> QueryResult:
        """Type I over every shard; the union of the shard result sets.

        The merged list is sorted canonically (source id, then span) -- the
        single matcher emits the same *set* in its chain-processing order
        instead.  ``max_results`` is enforced after the merge, so a capped
        sharded query may verify more than a capped single matcher (each
        shard caps independently) but never returns more matches.
        """
        query = spec.bound_query()
        inner = replace(spec, limit=None, offset=0)
        per_shard = self._fan_out(lambda shard: shard.execute(inner.bind(query)).matches)
        merged: List[SubsequenceMatch] = []
        for matches in per_shard:
            merged.extend(matches)
        merged.sort(key=_match_sort_key)
        if spec.max_results is not None:
            merged = merged[: spec.max_results]
        return QueryResult.build(spec, merged, self._merge_stats())

    @execute.register
    def _execute_longest(self, spec: LongestSubsequenceQuery) -> QueryResult:
        """Type II over every shard; the longest match across shards.

        Exact ``(length, distance)`` ties between shards resolve in shard
        order (a single matcher resolves them in its global chain order,
        so a tie may name a different -- equally long, equally distant --
        subsequence pair).
        """
        query = spec.bound_query()
        inner = replace(spec, limit=None, offset=0)
        per_shard = self._fan_out(lambda shard: shard.execute(inner.bind(query)).best)
        best: Optional[SubsequenceMatch] = None
        for candidate in per_shard:
            if _better_longest(candidate, best):
                best = candidate
        return QueryResult.build(
            spec, [best] if best is not None else [], self._merge_stats()
        )

    @execute.register
    def _execute_nearest(self, spec: NearestSubsequenceQuery) -> QueryResult:
        matches, stats = self._radius_sweep(spec, k=1)
        return QueryResult.build(spec, matches, stats)

    @execute.register
    def _execute_topk(self, spec: TopKQuery) -> QueryResult:
        matches, stats = self._radius_sweep(spec, k=spec.k)
        return QueryResult.build(spec, matches, stats)

    def _radius_sweep(
        self, spec: Union[NearestSubsequenceQuery, TopKQuery], k: int
    ) -> Tuple[List[SubsequenceMatch], QueryStats]:
        """Type III / top-k with the single matcher's *global* radius sweep.

        The binary search over the minimal radius producing segment matches
        and the subsequent increment sweep both treat the shard set as one
        database: a probe succeeds when *any* shard has a segment match,
        and each verification pass runs on *every* shard at the same
        radius.  Every shard's verified matches feed one *global* k-bounded
        candidate heap ordered by the deterministic
        :func:`~repro.core.queries.match_ranking_key`; candidate chains
        never span shards, so each pass contributes exactly the match set
        an unsharded pass would, the sweep stops at the same radius, and
        the ranked result -- ties included -- is identical to the
        unsharded matcher's.
        """
        query = spec.bound_query()
        if not any(shard.windows for shard in self.shards):
            self.last_query_stats = QueryStats()
            return [], self.last_query_stats

        passes: List[QueryStats] = []

        def probe_all(radius: float) -> bool:
            probes = self._fan_out(lambda shard: shard.pipeline.probe(query, radius))
            passes.append(QueryStats.across_shards([probe.stats for probe in probes]))
            return any(probe.matches for probe in probes)

        low, high = 0.0, spec.max_radius
        if not probe_all(high):
            self._finalize_stats(QueryStats.merged(passes))
            raise QueryError(
                f"no segment matches even at max_radius={spec.max_radius}; "
                "increase max_radius"
            )
        while high - low > spec.tolerance:
            mid = (low + high) / 2.0
            if probe_all(mid):
                high = mid
            else:
                low = mid

        increment = spec.radius_increment
        if increment is None:
            increment = max(spec.tolerance, 0.05 * spec.max_radius)

        candidates = TopKCandidates(k)
        radius = high
        while radius <= spec.max_radius + 1e-12:
            outcomes: List[Tuple[List[SubsequenceMatch], QueryStats]] = self._fan_out(
                lambda shard: shard.pipeline.run_scored_pass(query, radius)
            )
            passes.append(QueryStats.across_shards([stats for _, stats in outcomes]))
            for matches, _stats in outcomes:
                for match in matches:
                    candidates.add(match)
            if candidates.full:
                break
            radius += increment
        stats = self._finalize_stats(QueryStats.merged(passes))
        return candidates.ranked(), stats

    # ``execute_many`` and the legacy per-sequence wrappers come from
    # :class:`~repro.core.query_api.QueryInterfaceMixin`, shared with the
    # plain matcher.

    # ------------------------------------------------------------------ #
    # Snapshot support
    # ------------------------------------------------------------------ #
    @classmethod
    def _restore(
        cls,
        database: SequenceDatabase,
        distance: Distance,
        config: MatcherConfig,
        shards: List[SubsequenceMatcher],
        assignment: Dict[str, int],
        assigned: int,
    ) -> "ShardedMatcher":
        """Assemble a sharded matcher around already-restored shards."""
        matcher = cls.__new__(cls)
        matcher.database = database
        matcher.distance = distance
        matcher.config = config
        matcher._shard_config = replace(config, executor="serial", shards=1)
        matcher.shards = list(shards)
        matcher._assignment = dict(assignment)
        matcher._assigned = int(assigned)
        matcher.executor = cls._make_fan_out_executor(config)
        matcher.last_query_stats = QueryStats()
        matcher.last_batch_stats = []
        return matcher

    def __repr__(self) -> str:
        return (
            f"ShardedMatcher(shards={self.shard_count}, "
            f"windows={sum(len(s.windows) for s in self.shards)}, "
            f"distance={self.distance.name!r}, index={self.config.index!r}, "
            f"executor={self.executor.name!r})"
        )
