"""Configuration of the subsequence-matching framework."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.distances.backend import KNOWN_KERNELS as _KNOWN_KERNELS
from repro.exceptions import ConfigurationError


def _default_executor() -> str:
    """The configured default executor (the ``REPRO_EXECUTOR`` env var).

    Reading the environment here is what lets the CI matrix run the whole
    tier-1 suite under the thread executor without touching any test: the
    parallel paths promise byte-identical results and work counters, and
    that promise is only worth something if the entire suite can actually
    run on top of them.
    """
    return os.environ.get("REPRO_EXECUTOR", "serial")


def _default_kernel() -> str:
    """The configured default kernel backend (the ``REPRO_KERNEL`` env var).

    Same pattern (and same rationale) as :func:`_default_executor`: the CI
    compiled-kernel leg exports ``REPRO_KERNEL=compiled`` and reruns the
    whole suite, relying on every backend returning identical values.
    """
    return os.environ.get("REPRO_KERNEL", "auto")


def _default_transport() -> str:
    """The configured payload transport (the ``REPRO_TRANSPORT`` env var)."""
    return os.environ.get("REPRO_TRANSPORT", "auto")


def _default_log_format() -> str:
    """The configured recording log format (``REPRO_LOG_FORMAT`` env var)."""
    return os.environ.get("REPRO_LOG_FORMAT", "columnar")


@dataclass(frozen=True)
class MatcherConfig:
    """Parameters of the paper's framework.

    Attributes
    ----------
    min_length:
        The paper's ``lambda``: minimum length of a reported subsequence.
        Must be at least 2 so that the window length ``lambda / 2`` is at
        least 1.  The paper treats it as a per-application constant fixed at
        index-build time.
    max_shift:
        The paper's ``lambda0``: maximum allowed difference between the
        lengths of a matched query subsequence and database subsequence,
        and the slack used when extracting query segments.  Must be smaller
        than half the window length for the segment-count analysis of
        Section 5 to apply, but any non-negative value is accepted.
    eps_prime:
        Base radius of the reference net levels (the paper's default is 1).
    nummax:
        Optional cap on the number of parents per reference-net node.
    index:
        Which index backs the segment range queries: ``"reference-net"``,
        ``"cover-tree"``, ``"reference-based"``, ``"vp-tree"``, or
        ``"linear-scan"``.
    num_references:
        Number of references for the ``"reference-based"`` index.
    query_segment_step:
        Step between consecutive query segment start positions (1 = every
        position, exactly as in the paper; larger values trade recall for
        speed and are used by some ablation benchmarks).
    prefilter:
        Whether the matcher's step-4 distance evaluations may run the
        registered lower bounds of :mod:`repro.distances.lower_bounds` in
        front of the DP kernels.  Only effective with the ``"linear-scan"``
        index (the tree indexes need exact values for their routing);
        admissible bounds never change results, so this is on by default.
    cache_max_entries:
        Capacity of the matcher's distance cache.  Any single query (and
        in particular Type III's whole radius sweep) needs at most
        ``segments x windows`` index entries plus its verification pairs,
        so the default comfortably covers full reuse within and across
        nearby queries while bounding the memory of a long-lived matcher
        serving a stream of distinct queries (oldest entries are evicted
        first).  ``None`` disables the bound.
    executor:
        Which execution engine runs the pipeline's probe and verify work
        units: ``"serial"`` (the default; also the reference semantics),
        ``"thread"``, or ``"process"`` -- see :mod:`repro.core.executor`.
        Whatever the choice, queries return byte-identical results and
        identical work counters.  The default honours the
        ``REPRO_EXECUTOR`` environment variable, which is how the CI
        matrix runs the whole test-suite on the thread executor.
    workers:
        Worker count for the parallel executors; ``None`` (default) means
        one per CPU.  Ignored by the serial executor.
    kernel:
        Which distance-kernel tier serves the pipeline's DP sweeps:
        ``"auto"`` (the default; first working compiled provider, else the
        NumPy sweeps), ``"numpy"``, ``"compiled"`` (like auto but warns
        when it has to fall back), or a concrete provider --
        ``"numba"``/``"cc"``/``"pyloop"`` -- see
        :mod:`repro.distances.backend`.  Every tier is value-exact against
        the NumPy oracle, so results and work counters never depend on
        this knob.  The default honours the ``REPRO_KERNEL`` environment
        variable.
    shards:
        Number of :class:`~repro.core.sharded.ShardedMatcher` partitions.
        A plain :class:`~repro.core.matcher.SubsequenceMatcher` ignores
        this; the CLI and the sharded constructor read it.
    transport:
        How the process executor ships window tensors to its workers:
        ``"auto"`` (the default; a shared-memory segment when the index's
        packed store can export one, pickled arrays otherwise),
        ``"pickle"`` (always pickle), or ``"shared"`` (require shared
        memory; queries raise if no export is available).  Ignored by the
        serial and thread executors, which never serialize payloads.
        Results and counters never depend on this knob.  The default
        honours the ``REPRO_TRANSPORT`` environment variable.
    log_format:
        Storage format for the parallel executors' record/replay logs:
        ``"columnar"`` (the default; preallocated numpy columns, replayed
        by a vectorized classifier) or ``"object"`` (the original
        per-request tuple log, kept as the reference implementation).
        Both formats replay to byte-identical results and counters.  The
        default honours the ``REPRO_LOG_FORMAT`` environment variable.
    """

    min_length: int
    max_shift: int = 0
    eps_prime: float = 1.0
    nummax: Optional[int] = None
    index: str = "reference-net"
    num_references: int = 5
    query_segment_step: int = 1
    prefilter: bool = True
    cache_max_entries: Optional[int] = 262_144
    executor: str = field(default_factory=_default_executor)
    workers: Optional[int] = None
    kernel: str = field(default_factory=_default_kernel)
    shards: int = 1
    transport: str = field(default_factory=_default_transport)
    log_format: str = field(default_factory=_default_log_format)

    _KNOWN_INDEXES = (
        "reference-net",
        "cover-tree",
        "reference-based",
        "vp-tree",
        "linear-scan",
    )

    _KNOWN_EXECUTORS = ("serial", "thread", "process")

    _KNOWN_TRANSPORTS = ("auto", "pickle", "shared")

    def __post_init__(self) -> None:
        if self.min_length < 2:
            raise ConfigurationError(
                f"min_length (lambda) must be >= 2, got {self.min_length}"
            )
        if self.max_shift < 0:
            raise ConfigurationError(
                f"max_shift (lambda0) must be non-negative, got {self.max_shift}"
            )
        if self.eps_prime <= 0:
            raise ConfigurationError(
                f"eps_prime must be positive, got {self.eps_prime}"
            )
        if self.nummax is not None and self.nummax < 1:
            raise ConfigurationError(f"nummax must be >= 1, got {self.nummax}")
        if self.index not in self._KNOWN_INDEXES:
            raise ConfigurationError(
                f"unknown index {self.index!r}; expected one of {self._KNOWN_INDEXES}"
            )
        if self.num_references < 1:
            raise ConfigurationError(
                f"num_references must be >= 1, got {self.num_references}"
            )
        if self.query_segment_step < 1:
            raise ConfigurationError(
                f"query_segment_step must be >= 1, got {self.query_segment_step}"
            )
        if self.cache_max_entries is not None and self.cache_max_entries < 1:
            raise ConfigurationError(
                f"cache_max_entries must be >= 1 or None, got {self.cache_max_entries}"
            )
        if self.executor not in self._KNOWN_EXECUTORS:
            raise ConfigurationError(
                f"unknown executor {self.executor!r}; expected one of {self._KNOWN_EXECUTORS}"
            )
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1 or None, got {self.workers}"
            )
        if self.kernel not in _KNOWN_KERNELS:
            raise ConfigurationError(
                f"unknown kernel backend {self.kernel!r}; "
                f"expected one of {_KNOWN_KERNELS}"
            )
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.transport not in self._KNOWN_TRANSPORTS:
            raise ConfigurationError(
                f"unknown transport {self.transport!r}; "
                f"expected one of {self._KNOWN_TRANSPORTS}"
            )
        from repro.distances.recording import LOG_FORMATS as _LOG_FORMATS

        if self.log_format not in _LOG_FORMATS:
            raise ConfigurationError(
                f"unknown log format {self.log_format!r}; "
                f"expected one of {_LOG_FORMATS}"
            )
        if self.window_length < 1:
            raise ConfigurationError(
                f"min_length={self.min_length} yields an empty window; use a larger lambda"
            )

    @property
    def window_length(self) -> int:
        """The database window length ``lambda / 2`` (integer division)."""
        return self.min_length // 2

    @property
    def segment_lengths(self) -> range:
        """Query segment lengths ``lambda/2 - lambda0 .. lambda/2 + lambda0``."""
        shortest = max(1, self.window_length - self.max_shift)
        return range(shortest, self.window_length + self.max_shift + 1)
