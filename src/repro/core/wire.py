"""The wire format shared by ``repro search --json`` and the HTTP service.

PR 5 made the declarative specs and :class:`~repro.core.queries.QueryResult`
the single source of truth for what a query means; this module is the single
source of truth for how those objects travel as JSON.  Both the CLI's
``--json`` flag and every ``repro.server`` endpoint build their payloads
here, so the two surfaces cannot drift: the same bound spec produces the
byte-identical envelope whichever door it enters through.

Schema
------
``schema_version`` 2 (current) extends version 1 with a top-level
``request_id`` (client-suppliable, echoed verbatim; ``None`` when the caller
does not care) and a ``server`` block identifying the software that produced
the envelope.  Version 1 is still *accepted on input* -- a request carrying
``"schema_version": 1`` parses fine; responses are always version 2.

Envelope keys: ``schema_version``, ``request_id``, ``server``, ``query``
(the spec's :meth:`~repro.core.queries.BaseQuery.describe` echo),
``query_origin`` (provenance of the query sequence; ``None`` unless the
caller supplies one), ``matches``, ``total_matches``, ``error``, ``stats``,
and ``config`` (backend fingerprint + full matcher configuration).

Requests (``parse_search_request``) carry the spec under ``query``, the
query sequence under ``sequence`` (see :func:`sequence_from_wire`), and the
optional knobs ``request_id``, ``query_origin``, ``executor``, ``workers``,
``timeout``, and ``include_timings`` (set it ``false`` to zero out the
wall-clock blocks and make two identical requests byte-identical).
Unknown fields anywhere are rejected -- a misspelled parameter must never
silently fall back to a default.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional

import numpy as np

from repro.core.queries import (
    BaseQuery,
    LongestSubsequenceQuery,
    NearestSubsequenceQuery,
    QueryResult,
    QueryStats,
    RangeQuery,
    SubsequenceMatch,
    TopKQuery,
)
from repro.exceptions import QueryError, SequenceError
from repro.sequences.alphabet import Alphabet
from repro.sequences.sequence import Sequence, SequenceKind

#: The schema version every envelope built here reports.
WIRE_SCHEMA_VERSION = 2

#: Schema versions accepted on *input* (responses are always the current one).
ACCEPTED_SCHEMA_VERSIONS = (1, 2)

#: The ``server`` block of every version-2 envelope.  Static by design: the
#: CLI and the HTTP service must emit byte-identical envelopes for the same
#: spec, so nothing host- or process-specific may appear here.
SERVER_NAME = "repro-search"

#: ``type`` discriminator -> spec class, the inverse of ``BaseQuery.kind``.
SPEC_TYPES = {
    RangeQuery.kind: RangeQuery,
    LongestSubsequenceQuery.kind: LongestSubsequenceQuery,
    NearestSubsequenceQuery.kind: NearestSubsequenceQuery,
    TopKQuery.kind: TopKQuery,
}

#: Wire coercions per spec field: JSON gives us loose numbers ("3" vs 3 vs
#: 3.0); these normalise them before the dataclass validation runs so a bad
#: type surfaces as a QueryError, not a TypeError deep in the sweep.
_OPTIONAL_SPEC_FIELDS = frozenset({"max_results", "radius_increment", "limit"})
_SPEC_FIELD_COERCERS = {
    "radius": float,
    "max_radius": float,
    "tolerance": float,
    "radius_increment": float,
    "k": int,
    "max_results": int,
    "limit": int,
    "offset": int,
    "exhaustive": bool,
}


def _server_block() -> Dict[str, str]:
    # Imported lazily: repro/__init__ imports repro.core, which imports this
    # module, so a top-level ``from repro import __version__`` would cycle.
    from repro import __version__

    return {"name": SERVER_NAME, "version": __version__}


# --------------------------------------------------------------------- #
# Spec codec
# --------------------------------------------------------------------- #
def spec_to_wire(spec: BaseQuery) -> Dict[str, object]:
    """The JSON-safe echo of a spec -- its ``describe()`` dictionary."""
    return spec.describe()


def parse_spec(payload) -> BaseQuery:
    """Build an (unbound) query spec from its wire dictionary.

    The payload is exactly what :meth:`~repro.core.queries.BaseQuery.describe`
    emits: a ``type`` discriminator plus the spec's scalar fields.  Unknown
    types and unknown fields raise :class:`~repro.exceptions.QueryError`;
    so do out-of-range values, via the spec's own validation.
    """
    if not isinstance(payload, dict):
        raise QueryError(f"query must be a JSON object, got {type(payload).__name__}")
    if "type" not in payload:
        raise QueryError("query is missing the 'type' discriminator")
    kind = payload["type"]
    spec_class = SPEC_TYPES.get(kind)
    if spec_class is None:
        raise QueryError(
            f"unknown query type {kind!r}; expected one of {sorted(SPEC_TYPES)}"
        )
    allowed = {f.name for f in fields(spec_class)} - {"query"}
    unknown = set(payload) - allowed - {"type"}
    if unknown:
        raise QueryError(
            f"unknown field(s) for {kind!r} query: {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )
    kwargs = {}
    for name, value in payload.items():
        if name == "type":
            continue
        kwargs[name] = _coerce_spec_field(kind, name, value)
    return spec_class(**kwargs)


def _coerce_spec_field(kind: str, name: str, value):
    if value is None:
        if name in _OPTIONAL_SPEC_FIELDS:
            return None
        raise QueryError(f"field {name!r} of a {kind!r} query must not be null")
    coerce = _SPEC_FIELD_COERCERS.get(name)
    if coerce is None:
        return value
    if coerce is bool:
        if not isinstance(value, bool):
            raise QueryError(f"field {name!r} of a {kind!r} query must be a boolean")
        return value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise QueryError(
            f"field {name!r} of a {kind!r} query must be a number, got {value!r}"
        )
    if coerce is int and value != int(value):
        raise QueryError(f"field {name!r} of a {kind!r} query must be an integer")
    return coerce(value)


# --------------------------------------------------------------------- #
# Sequence codec
# --------------------------------------------------------------------- #
def sequence_to_wire(sequence: Sequence) -> Dict[str, object]:
    """A JSON-safe dictionary that :func:`sequence_from_wire` round-trips."""
    payload: Dict[str, object] = {
        "kind": sequence.kind.value,
        "values": sequence.to_list(),
    }
    if sequence.seq_id is not None:
        payload["seq_id"] = sequence.seq_id
    if sequence.alphabet is not None:
        payload["alphabet"] = "".join(sequence.alphabet.symbols)
        payload["alphabet_name"] = sequence.alphabet.name
    return payload


_SEQUENCE_FIELDS = frozenset(
    {"kind", "values", "text", "seq_id", "alphabet", "alphabet_name"}
)


def sequence_from_wire(payload) -> Sequence:
    """Build a :class:`~repro.sequences.sequence.Sequence` from its wire form.

    ``kind`` selects the family; the elements arrive either as ``values``
    (a flat list for strings/series, a list of points for trajectories) or
    -- for strings only -- as ``text`` decoded through the mandatory
    ``alphabet`` (its symbols in code order, e.g. ``"ACGT"``).
    """
    if not isinstance(payload, dict):
        raise QueryError(f"sequence must be a JSON object, got {type(payload).__name__}")
    unknown = set(payload) - _SEQUENCE_FIELDS
    if unknown:
        raise QueryError(
            f"unknown sequence field(s): {sorted(unknown)}; "
            f"allowed: {sorted(_SEQUENCE_FIELDS)}"
        )
    try:
        kind = SequenceKind(payload.get("kind"))
    except ValueError:
        raise QueryError(
            f"unknown sequence kind {payload.get('kind')!r}; expected one of "
            f"{sorted(k.value for k in SequenceKind)}"
        ) from None
    seq_id = payload.get("seq_id")
    if seq_id is not None and not isinstance(seq_id, str):
        raise QueryError("sequence 'seq_id' must be a string")
    alphabet = None
    if payload.get("alphabet") is not None:
        symbols = payload["alphabet"]
        if not isinstance(symbols, str):
            raise QueryError("sequence 'alphabet' must be a string of symbols")
        try:
            alphabet = Alphabet(symbols, name=payload.get("alphabet_name") or "wire")
        except Exception as error:
            raise QueryError(f"invalid sequence alphabet: {error}") from None
    if "text" in payload and "values" in payload:
        raise QueryError("sequence carries both 'text' and 'values'; send exactly one")
    try:
        if "text" in payload:
            if kind is not SequenceKind.STRING:
                raise QueryError("'text' is only valid for string sequences")
            if alphabet is None:
                raise QueryError("a textual string sequence needs an 'alphabet'")
            return Sequence.from_string(payload["text"], alphabet, seq_id=seq_id)
        if "values" not in payload:
            raise QueryError("sequence is missing its 'values' (or 'text')")
        values = np.asarray(payload["values"])
        if values.dtype == object:
            raise QueryError("sequence 'values' must be a homogeneous numeric array")
        return Sequence(values, kind, seq_id=seq_id, alphabet=alphabet)
    except QueryError:
        raise
    except (SequenceError, TypeError, ValueError) as error:
        raise QueryError(f"malformed sequence: {error}") from None


# --------------------------------------------------------------------- #
# Result envelopes
# --------------------------------------------------------------------- #
def match_to_wire(match: SubsequenceMatch) -> Dict[str, object]:
    """One verified match as its stable wire dictionary."""
    return {
        "source_id": match.source_id,
        "query_start": match.query_start,
        "query_stop": match.query_stop,
        "db_start": match.db_start,
        "db_stop": match.db_stop,
        "distance": match.distance,
        "length": match.length,
    }


def stats_to_wire(stats: QueryStats, include_timings: bool = True) -> Dict[str, object]:
    """The work-accounting block of the envelope.

    With ``include_timings=False`` the wall-clock dictionaries are emptied
    (they are the only run-to-run varying part of the envelope), which is
    what makes byte-for-byte CLI-vs-HTTP parity testable.
    """
    return {
        "segments_extracted": stats.segments_extracted,
        "segment_matches": stats.segment_matches,
        "candidate_chains": stats.candidate_chains,
        "index_distance_computations": stats.index_distance_computations,
        "verification_distance_computations": stats.verification_distance_computations,
        "index_cache_hits": stats.index_cache_hits,
        "verification_cache_hits": stats.verification_cache_hits,
        "prefilter_evaluations": stats.prefilter_evaluations,
        "prefilter_pruned": stats.prefilter_pruned,
        "naive_distance_computations": stats.naive_distance_computations,
        "pruning_ratio": stats.pruning_ratio,
        "passes": len(stats.passes),
        "executor": stats.executor,
        "workers": stats.workers,
        "kernel_backend": stats.kernel_backend,
        "transport": stats.transport,
        "shards": stats.shards,
        "stage_seconds": dict(stats.stage_timings) if include_timings else {},
        "cpu_stage_seconds": dict(stats.cpu_stage_timings) if include_timings else {},
    }


def config_block(service) -> Dict[str, object]:
    """The backend-identity block: fingerprint plus the full configuration."""
    backend = service.backend
    return {
        "fingerprint": service.fingerprint(),
        "backend": type(backend).__name__,
        "distance": backend.distance.name,
        **asdict(backend.config),
    }


def result_envelope(
    result: QueryResult,
    service,
    *,
    request_id: Optional[str] = None,
    query_origin: Optional[Dict[str, object]] = None,
    include_timings: bool = True,
) -> Dict[str, object]:
    """The versioned envelope for one :class:`QueryResult`.

    This is the promoted ``repro search --json`` builder: the CLI and every
    HTTP endpoint call exactly this function, so their envelopes cannot
    diverge.  ``request_id`` and ``query_origin`` are echoed verbatim
    (``None`` when the caller supplies neither).
    """
    return {
        "schema_version": WIRE_SCHEMA_VERSION,
        "request_id": request_id,
        "server": _server_block(),
        "query": result.query.describe(),
        "query_origin": query_origin,
        "matches": [match_to_wire(match) for match in result.matches],
        "total_matches": result.total_matches,
        "error": result.error,
        "stats": stats_to_wire(result.stats, include_timings=include_timings),
        "config": config_block(service),
    }


def error_envelope(
    message: str,
    *,
    request_id: Optional[str] = None,
    query: Optional[Dict[str, object]] = None,
    query_origin: Optional[Dict[str, object]] = None,
    stats: Optional[QueryStats] = None,
    service=None,
    include_timings: bool = True,
) -> Dict[str, object]:
    """The envelope for a request that never produced a :class:`QueryResult`.

    Same keys as :func:`result_envelope` -- clients parse one shape -- with
    ``matches`` empty, ``error`` set, zeroed statistics unless the failing
    query did real work, and ``config: None`` when the failure happened
    before a backend was even involved.
    """
    return {
        "schema_version": WIRE_SCHEMA_VERSION,
        "request_id": request_id,
        "server": _server_block(),
        "query": query,
        "query_origin": query_origin,
        "matches": [],
        "total_matches": 0,
        "error": str(message),
        "stats": stats_to_wire(stats or QueryStats(), include_timings=include_timings),
        "config": config_block(service) if service is not None else None,
    }


# --------------------------------------------------------------------- #
# Search requests
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SearchRequest:
    """One parsed ``POST /search`` body: a bound spec plus per-request knobs."""

    #: The spec, bound to the request's query sequence.
    spec: BaseQuery
    request_id: Optional[str] = None
    #: Echoed verbatim into the response envelope.
    query_origin: Optional[Dict[str, object]] = None
    #: Per-request execution-engine override (see ``SearchService.execute``).
    executor: Optional[str] = None
    workers: Optional[int] = None
    #: Per-request deadline in seconds (server-enforced; None = server default).
    timeout: Optional[float] = None
    include_timings: bool = True


_REQUEST_FIELDS = frozenset(
    {
        "schema_version",
        "query",
        "sequence",
        "request_id",
        "query_origin",
        "executor",
        "workers",
        "timeout",
        "include_timings",
    }
)


def parse_search_request(payload) -> SearchRequest:
    """Validate and parse one search-request body into a :class:`SearchRequest`.

    Accepts ``schema_version`` 1 or 2 (defaulting to the current version
    when absent); every other version, any unknown field, a malformed spec,
    or a malformed sequence raises :class:`~repro.exceptions.QueryError`.
    """
    if not isinstance(payload, dict):
        raise QueryError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    unknown = set(payload) - _REQUEST_FIELDS
    if unknown:
        raise QueryError(
            f"unknown request field(s): {sorted(unknown)}; "
            f"allowed: {sorted(_REQUEST_FIELDS)}"
        )
    version = payload.get("schema_version", WIRE_SCHEMA_VERSION)
    if version not in ACCEPTED_SCHEMA_VERSIONS:
        raise QueryError(
            f"unsupported schema_version {version!r}; "
            f"accepted: {list(ACCEPTED_SCHEMA_VERSIONS)}"
        )
    if "query" not in payload:
        raise QueryError("request is missing its 'query' spec")
    if "sequence" not in payload:
        raise QueryError("request is missing its 'sequence'")
    spec = parse_spec(payload["query"])
    sequence = sequence_from_wire(payload["sequence"])

    request_id = payload.get("request_id")
    if request_id is not None and not isinstance(request_id, str):
        raise QueryError("'request_id' must be a string")
    query_origin = payload.get("query_origin")
    if query_origin is not None and not isinstance(query_origin, dict):
        raise QueryError("'query_origin' must be a JSON object")

    executor = payload.get("executor")
    if executor is not None:
        # Imported lazily to keep the wire module importable on its own.
        from repro.core.executor import EXECUTOR_NAMES

        if executor not in EXECUTOR_NAMES:
            raise QueryError(
                f"unknown executor {executor!r}; expected one of {sorted(EXECUTOR_NAMES)}"
            )
    workers = payload.get("workers")
    if workers is not None:
        if isinstance(workers, bool) or not isinstance(workers, int) or workers < 1:
            raise QueryError(f"'workers' must be a positive integer, got {workers!r}")
    timeout = payload.get("timeout")
    if timeout is not None:
        if isinstance(timeout, bool) or not isinstance(timeout, (int, float)) or timeout <= 0:
            raise QueryError(f"'timeout' must be a positive number, got {timeout!r}")
        timeout = float(timeout)
    include_timings = payload.get("include_timings", True)
    if not isinstance(include_timings, bool):
        raise QueryError("'include_timings' must be a boolean")

    return SearchRequest(
        spec=spec.bind(sequence),
        request_id=request_id,
        query_origin=query_origin,
        executor=executor,
        workers=workers,
        timeout=timeout,
        include_timings=include_timings,
    )


def canonical_json(payload) -> str:
    """Deterministic JSON: sorted keys, no whitespace -- the byte form the
    parity tests (CLI vs HTTP, serial vs concurrent) compare."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


__all__ = [
    "WIRE_SCHEMA_VERSION",
    "ACCEPTED_SCHEMA_VERSIONS",
    "SERVER_NAME",
    "SPEC_TYPES",
    "SearchRequest",
    "spec_to_wire",
    "parse_spec",
    "sequence_to_wire",
    "sequence_from_wire",
    "match_to_wire",
    "stats_to_wire",
    "config_block",
    "result_envelope",
    "error_envelope",
    "parse_search_request",
    "canonical_json",
]
