"""The framework-free ASGI application over a :class:`SearchService`.

:class:`SearchApp` is a plain ASGI 3 callable -- no web framework -- so it
runs identically under the stdlib server (:mod:`repro.server.stdlib_http`),
uvicorn, or any other ASGI host.  Every response body is built by
:mod:`repro.core.wire`, the same module behind ``repro search --json``, so
the HTTP surface and the CLI cannot drift.

Routes
------
======  ======================  ==============================================
Method  Path                    Meaning
======  ======================  ==============================================
POST    ``/search``             Execute one bound spec; version-2 envelope.
POST    ``/search/batch``       Execute many specs in order; ``results`` list.
POST    ``/sequences``          Incrementally add a sequence to the corpus.
DELETE  ``/sequences/{seq_id}`` Incrementally remove a sequence.
POST    ``/snapshots``          Persist the built matcher state to disk.
GET     ``/health``             Liveness (never forces the snapshot load).
GET     ``/metrics``            Operational counters, p50/p99, cache rates.
======  ======================  ==============================================

Status codes: ``200`` success, ``400`` malformed request, ``404`` unknown
route / unknown sequence, ``405`` wrong method, ``409`` duplicate sequence
id, ``422`` a well-formed query that failed (e.g. a Type III sweep with no
segment match -- the body is the standard envelope with ``error`` set and
the sweep's own work counters), ``503`` admission control rejected the
request (too many queries in flight), ``504`` the per-request timeout
elapsed.

Concurrency model
-----------------
Query execution is synchronous CPU work, so each request runs on a worker
thread (``loop.run_in_executor``) while the event loop keeps accepting
connections.  The shared :class:`~repro.core.service.SearchService`
serialises actual matcher work behind its internal lock (the pipeline keeps
per-query scratch state); *admission* is what is concurrent -- up to
``max_in_flight`` requests may be queued on the service at once, and the
admission counter is only released when a worker actually finishes, so a
timed-out request keeps holding its slot until the matcher lets go of it.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.parse
from typing import Dict, List, Optional, Tuple

from repro.core.service import SearchService
from repro.core.wire import (
    ACCEPTED_SCHEMA_VERSIONS,
    WIRE_SCHEMA_VERSION,
    SearchRequest,
    error_envelope,
    parse_search_request,
    result_envelope,
    sequence_from_wire,
)
from repro.exceptions import (
    ItemNotFoundError,
    QueryError,
    ReproError,
    SequenceError,
    StorageError,
)
from repro.server.metrics import ServerMetrics

#: Default bound on concurrently admitted queries (the acceptance criterion
#: demands at least 8 in flight; leave headroom).
DEFAULT_MAX_IN_FLIGHT = 16

#: Default per-request deadline, seconds.
DEFAULT_TIMEOUT = 30.0

#: Default cap on ``POST /search/batch`` size.
DEFAULT_MAX_BATCH = 64


class SearchApp:
    """ASGI 3 application exposing one :class:`SearchService` over HTTP."""

    def __init__(
        self,
        service: SearchService,
        *,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        default_timeout: float = DEFAULT_TIMEOUT,
        max_batch: int = DEFAULT_MAX_BATCH,
        metrics: Optional[ServerMetrics] = None,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        if default_timeout <= 0:
            raise ValueError(f"default_timeout must be positive, got {default_timeout}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.service = service
        self.max_in_flight = max_in_flight
        self.default_timeout = default_timeout
        self.max_batch = max_batch
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self._in_flight = 0
        self._admission_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # ASGI entry point
    # ------------------------------------------------------------------ #
    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - ws etc.
            raise RuntimeError(f"unsupported ASGI scope type {scope['type']!r}")
        method = scope["method"].upper()
        path = scope.get("path", "/")
        try:
            await self._dispatch(method, path, receive, send)
        except ReproError as error:
            await _send_json(send, 500, {"error": str(error)})

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await send({"type": "lifespan.shutdown.complete"})
                return

    async def _dispatch(self, method: str, path: str, receive, send) -> None:
        if path == "/health":
            if await self._require(method, "GET", send):
                await self._health(send)
            return
        if path == "/metrics":
            if await self._require(method, "GET", send):
                await self._metrics(send)
            return
        if path == "/search":
            if await self._require(method, "POST", send):
                await self._search(receive, send)
            return
        if path == "/search/batch":
            if await self._require(method, "POST", send):
                await self._search_batch(receive, send)
            return
        if path == "/sequences":
            if await self._require(method, "POST", send):
                await self._add_sequence(receive, send)
            return
        if path.startswith("/sequences/"):
            if await self._require(method, "DELETE", send):
                seq_id = urllib.parse.unquote(path[len("/sequences/"):])
                await self._remove_sequence(seq_id, send)
            return
        if path == "/snapshots":
            if await self._require(method, "POST", send):
                await self._save_snapshot(receive, send)
            return
        await _send_json(send, 404, {"error": f"unknown route {path!r}"})

    async def _require(self, method: str, expected: str, send) -> bool:
        if method == expected:
            return True
        await _send_json(
            send, 405, {"error": f"method {method} not allowed; use {expected}"}
        )
        return False

    # ------------------------------------------------------------------ #
    # Operational endpoints
    # ------------------------------------------------------------------ #
    async def _health(self, send) -> None:
        service = self.service
        await _send_json(
            send,
            200,
            {
                "status": "ok",
                "schema_version": WIRE_SCHEMA_VERSION,
                "accepted_schema_versions": list(ACCEPTED_SCHEMA_VERSIONS),
                "loaded": service.loaded,
                "snapshot": (
                    str(service.snapshot_path)
                    if service.snapshot_path is not None
                    else None
                ),
                "in_flight": self._in_flight,
                "max_in_flight": self.max_in_flight,
            },
        )

    async def _metrics(self, send) -> None:
        payload = self.metrics.snapshot()
        payload["in_flight"] = self._in_flight
        await _send_json(send, 200, payload)

    # ------------------------------------------------------------------ #
    # Search endpoints
    # ------------------------------------------------------------------ #
    async def _search(self, receive, send) -> None:
        body, parse_failure = await _read_json(receive)
        if parse_failure is not None:
            self.metrics.record_parse_error()
            await _send_json(send, 400, error_envelope(parse_failure))
            return
        try:
            request = parse_search_request(body)
        except QueryError as error:
            self.metrics.record_parse_error()
            await _send_json(
                send,
                400,
                error_envelope(
                    str(error),
                    request_id=_safe_request_id(body),
                ),
            )
            return
        if not self._admit():
            self.metrics.record_rejected()
            await _send_json(
                send,
                503,
                error_envelope(
                    f"server at capacity ({self.max_in_flight} queries in flight); "
                    "retry shortly",
                    request_id=request.request_id,
                    query=request.spec.describe(),
                    query_origin=request.query_origin,
                ),
            )
            return
        status, envelope = await self._run_admitted(request)
        await _send_json(send, status, envelope)

    async def _run_admitted(self, request: SearchRequest) -> Tuple[int, Dict]:
        """Execute one admitted request on a worker thread, with deadline."""
        loop = asyncio.get_event_loop()
        timeout = request.timeout if request.timeout is not None else self.default_timeout
        started = time.perf_counter()

        def work():
            # The admission slot is held until the matcher actually finishes,
            # even if the awaiting side already timed out.
            try:
                return self.service.execute_many(
                    [request.spec], executor=request.executor, workers=request.workers
                )[0]
            finally:
                self._release()

        try:
            result = await asyncio.wait_for(loop.run_in_executor(None, work), timeout)
        except asyncio.TimeoutError:
            self.metrics.record_timeout()
            return 504, error_envelope(
                f"query exceeded its {timeout:g}s deadline",
                request_id=request.request_id,
                query=request.spec.describe(),
                query_origin=request.query_origin,
                include_timings=request.include_timings,
            )
        elapsed = time.perf_counter() - started
        self.metrics.record_query(elapsed, result.stats)
        envelope = result_envelope(
            result,
            self.service,
            request_id=request.request_id,
            query_origin=request.query_origin,
            include_timings=request.include_timings,
        )
        if result.error is not None:
            self.metrics.record_query_error()
            return 422, envelope
        return 200, envelope

    async def _search_batch(self, receive, send) -> None:
        body, parse_failure = await _read_json(receive)
        if parse_failure is not None:
            self.metrics.record_parse_error()
            await _send_json(send, 400, {"error": parse_failure})
            return
        try:
            requests, timeout = self._parse_batch(body)
        except QueryError as error:
            self.metrics.record_parse_error()
            await _send_json(send, 400, {"error": str(error)})
            return
        if not self._admit():
            self.metrics.record_rejected()
            await _send_json(
                send,
                503,
                {
                    "error": f"server at capacity ({self.max_in_flight} queries "
                    "in flight); retry shortly"
                },
            )
            return
        loop = asyncio.get_event_loop()

        def work():
            try:
                envelopes = []
                for request in requests:
                    started = time.perf_counter()
                    result = self.service.execute_many(
                        [request.spec],
                        executor=request.executor,
                        workers=request.workers,
                    )[0]
                    self.metrics.record_query(
                        time.perf_counter() - started, result.stats
                    )
                    if result.error is not None:
                        self.metrics.record_query_error()
                    envelopes.append(
                        result_envelope(
                            result,
                            self.service,
                            request_id=request.request_id,
                            query_origin=request.query_origin,
                            include_timings=request.include_timings,
                        )
                    )
                return envelopes
            finally:
                self._release()

        try:
            envelopes = await asyncio.wait_for(
                loop.run_in_executor(None, work), timeout
            )
        except asyncio.TimeoutError:
            self.metrics.record_timeout()
            await _send_json(
                send, 504, {"error": f"batch exceeded its {timeout:g}s deadline"}
            )
            return
        self.metrics.record_batch()
        await _send_json(
            send,
            200,
            {"schema_version": WIRE_SCHEMA_VERSION, "results": envelopes},
        )

    def _parse_batch(self, body) -> Tuple[List[SearchRequest], float]:
        if not isinstance(body, dict):
            raise QueryError(
                f"batch body must be a JSON object, got {type(body).__name__}"
            )
        unknown = set(body) - {"schema_version", "requests", "timeout"}
        if unknown:
            raise QueryError(f"unknown batch field(s): {sorted(unknown)}")
        version = body.get("schema_version", WIRE_SCHEMA_VERSION)
        if version not in ACCEPTED_SCHEMA_VERSIONS:
            raise QueryError(
                f"unsupported schema_version {version!r}; "
                f"accepted: {list(ACCEPTED_SCHEMA_VERSIONS)}"
            )
        entries = body.get("requests")
        if not isinstance(entries, list) or not entries:
            raise QueryError("batch 'requests' must be a non-empty list")
        if len(entries) > self.max_batch:
            raise QueryError(
                f"batch of {len(entries)} exceeds the server cap of {self.max_batch}"
            )
        requests = []
        for position, entry in enumerate(entries):
            try:
                requests.append(parse_search_request(entry))
            except QueryError as error:
                raise QueryError(f"batch entry {position}: {error}") from None
        timeout = body.get("timeout")
        if timeout is None:
            timeout = self.default_timeout
        elif isinstance(timeout, bool) or not isinstance(timeout, (int, float)) or timeout <= 0:
            raise QueryError(f"'timeout' must be a positive number, got {timeout!r}")
        return requests, float(timeout)

    # ------------------------------------------------------------------ #
    # Mutation endpoints
    # ------------------------------------------------------------------ #
    async def _add_sequence(self, receive, send) -> None:
        body, parse_failure = await _read_json(receive)
        if parse_failure is not None:
            await _send_json(send, 400, {"error": parse_failure})
            return
        if not isinstance(body, dict) or set(body) - {"sequence"}:
            await _send_json(
                send, 400, {"error": "body must be {'sequence': {...}}"}
            )
            return
        try:
            sequence = sequence_from_wire(body.get("sequence"))
        except QueryError as error:
            await _send_json(send, 400, {"error": str(error)})
            return
        loop = asyncio.get_event_loop()
        try:
            seq_id = await loop.run_in_executor(
                None, lambda: self.service.add_sequence(sequence)
            )
        except SequenceError as error:
            await _send_json(send, 409, {"error": str(error)})
            return
        self.metrics.record_mutation()
        await _send_json(
            send,
            200,
            {
                "seq_id": seq_id,
                "sequences": len(self.service.backend.database),
                "fingerprint": self.service.fingerprint(),
            },
        )

    async def _remove_sequence(self, seq_id: str, send) -> None:
        loop = asyncio.get_event_loop()
        try:
            removed = await loop.run_in_executor(
                None, lambda: self.service.remove_sequence(seq_id)
            )
        except (ItemNotFoundError, SequenceError, KeyError) as error:
            await _send_json(send, 404, {"error": str(error)})
            return
        self.metrics.record_mutation()
        await _send_json(
            send,
            200,
            {
                "seq_id": seq_id,
                "removed_length": len(removed),
                "sequences": len(self.service.backend.database),
                "fingerprint": self.service.fingerprint(),
            },
        )

    async def _save_snapshot(self, receive, send) -> None:
        body, parse_failure = await _read_json(receive, allow_empty=True)
        if parse_failure is not None:
            await _send_json(send, 400, {"error": parse_failure})
            return
        body = body or {}
        if not isinstance(body, dict) or set(body) - {"path"}:
            await _send_json(send, 400, {"error": "body must be {} or {'path': ...}"})
            return
        path = body.get("path")
        loop = asyncio.get_event_loop()
        try:
            target = await loop.run_in_executor(
                None, lambda: self.service.save_snapshot(path)
            )
        except StorageError as error:
            await _send_json(send, 400, {"error": str(error)})
            return
        await _send_json(
            send,
            200,
            {"path": str(target), "fingerprint": self.service.fingerprint()},
        )

    # ------------------------------------------------------------------ #
    # Admission control
    # ------------------------------------------------------------------ #
    def _admit(self) -> bool:
        with self._admission_lock:
            if self._in_flight >= self.max_in_flight:
                return False
            self._in_flight += 1
            return True

    def _release(self) -> None:
        with self._admission_lock:
            self._in_flight -= 1

    @property
    def in_flight(self) -> int:
        """Queries currently admitted (queued or executing)."""
        return self._in_flight


def _safe_request_id(body) -> Optional[str]:
    if isinstance(body, dict):
        request_id = body.get("request_id")
        if isinstance(request_id, str):
            return request_id
    return None


async def _read_json(receive, allow_empty: bool = False):
    """Drain the request body; returns ``(payload, error_message)``."""
    chunks = []
    while True:
        message = await receive()
        if message["type"] == "http.request":
            chunks.append(message.get("body", b""))
            if not message.get("more_body"):
                break
        elif message["type"] == "http.disconnect":
            break
    raw = b"".join(chunks)
    if not raw:
        if allow_empty:
            return None, None
        return None, "request body is empty; expected a JSON object"
    try:
        return json.loads(raw.decode("utf-8")), None
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        return None, f"request body is not valid JSON: {error}"


async def _send_json(send, status: int, payload) -> None:
    body = json.dumps(payload).encode("utf-8")
    await send(
        {
            "type": "http.response.start",
            "status": status,
            "headers": [
                (b"content-type", b"application/json"),
                (b"content-length", str(len(body)).encode("ascii")),
            ],
        }
    )
    await send({"type": "http.response.body", "body": body})


__all__ = [
    "SearchApp",
    "DEFAULT_MAX_IN_FLIGHT",
    "DEFAULT_TIMEOUT",
    "DEFAULT_MAX_BATCH",
]
