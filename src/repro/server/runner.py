"""Run the search service: runtime detection, signals, background serving.

:func:`serve` is the blocking entry point behind ``repro serve``.  Like the
execution engine's executor auto-detection, the HTTP runtime is picked at
startup: uvicorn when importable (the optional extra), the stdlib
``asyncio`` server otherwise -- the identical
:class:`~repro.server.app.SearchApp` runs on either.

Shutdown is snapshot-safe: ``SIGTERM`` is converted into the same clean
exit as ``Ctrl-C``, and when the service is snapshot-backed (or an explicit
snapshot path is given) the built matcher state is written back on the way
out, so a restarted server resumes from everything that was added over
``POST /sequences``.

:class:`BackgroundServer` runs the stdlib server on a daemon thread with
its own event loop -- the harness the tests and the HTTP benchmark use to
exercise a real socket without shelling out.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import signal
import threading
from typing import Optional, Tuple

from repro.core.service import SearchService
from repro.exceptions import ConfigurationError
from repro.server.app import SearchApp
from repro.server.stdlib_http import StdlibAsgiServer

#: Runtime names accepted by :func:`serve`.
SERVER_BACKENDS = ("auto", "uvicorn", "stdlib")


def _uvicorn_module():
    try:
        import uvicorn
    except ImportError:
        return None
    return uvicorn


def available_server_backends() -> Tuple[str, ...]:
    """The concrete runtimes importable right now (always includes stdlib)."""
    names = ["stdlib"]
    if _uvicorn_module() is not None:
        names.insert(0, "uvicorn")
    return tuple(names)


def _install_sigterm_handler() -> None:
    """Make SIGTERM exit like Ctrl-C so the snapshot-on-exit path runs.

    Only possible (and only meaningful) from the main thread; background
    servers rely on their own shutdown path instead.
    """
    if threading.current_thread() is not threading.main_thread():
        return

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)


def serve(
    service: SearchService,
    host: str = "127.0.0.1",
    port: int = 8000,
    *,
    backend: str = "auto",
    app: Optional[SearchApp] = None,
    snapshot_on_exit: bool = True,
    quiet: bool = False,
    **app_options,
) -> None:
    """Serve ``service`` over HTTP until interrupted (blocking).

    Parameters
    ----------
    backend:
        ``"auto"`` (uvicorn when installed, else the stdlib server),
        ``"uvicorn"`` (hard requirement), or ``"stdlib"``.
    app:
        A pre-built :class:`SearchApp`; built from ``service`` and
        ``app_options`` (``max_in_flight``, ``default_timeout``,
        ``max_batch``, ``metrics``) when omitted.
    snapshot_on_exit:
        When the service has a snapshot path, write the built matcher state
        back on shutdown (Ctrl-C or SIGTERM) -- mutations made over HTTP
        survive a restart.
    """
    if backend not in SERVER_BACKENDS:
        raise ConfigurationError(
            f"unknown server backend {backend!r}; expected one of {SERVER_BACKENDS}"
        )
    application = app if app is not None else SearchApp(service, **app_options)
    uvicorn = _uvicorn_module() if backend in ("auto", "uvicorn") else None
    if backend == "uvicorn" and uvicorn is None:
        raise ConfigurationError(
            "server backend 'uvicorn' requested but uvicorn is not installed; "
            "install the optional extra or use --server-backend stdlib"
        )
    runtime = "uvicorn" if uvicorn is not None else "stdlib"
    if not quiet:
        print(f"serving on http://{host}:{port} ({runtime} runtime)")
    _install_sigterm_handler()
    try:
        if uvicorn is not None:
            uvicorn.run(application, host=host, port=port, log_level="warning")
        else:
            asyncio.run(StdlibAsgiServer(application, host, port).serve_forever())
    except KeyboardInterrupt:
        pass
    finally:
        if (
            snapshot_on_exit
            and service.snapshot_path is not None
            and service.loaded
        ):
            service.save_snapshot()
            if not quiet:
                print(f"wrote snapshot back to {service.snapshot_path}")
        # Tear down shared-memory window exports before the process exits:
        # the SIGTERM path must not rely on interpreter-exit hooks firing
        # in a particular order to avoid /dev/shm leaks.
        service.close()


class BackgroundServer:
    """The stdlib server on a daemon thread, for tests and benchmarks.

    ::

        with BackgroundServer(SearchApp(service)) as server:
            status, payload = server.request_json("GET", "/health")

    ``port=0`` (the default) binds an ephemeral port; :attr:`url` reports
    the actual address once the context is entered.
    """

    def __init__(self, app, host: str = "127.0.0.1", port: int = 0) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("background server did not start within 10s")
        if self._startup_error is not None:
            raise RuntimeError(
                f"background server failed to start: {self._startup_error}"
            )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10)

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            loop.close()

    async def _main(self) -> None:
        self._stop = asyncio.Event()
        server = StdlibAsgiServer(self.app, self.host, self.port)
        try:
            _, self.port = await server.start()
        except BaseException as error:
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await server.close()

    # ------------------------------------------------------------------ #
    # Tiny synchronous client
    # ------------------------------------------------------------------ #
    def request_json(
        self, method: str, path: str, payload=None, timeout: float = 30.0
    ) -> Tuple[int, object]:
        """One JSON request/response round trip against the live server."""
        connection = http.client.HTTPConnection(self.host, self.port, timeout=timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            decoded = json.loads(raw.decode("utf-8")) if raw else None
            return response.status, decoded
        finally:
            connection.close()


__all__ = [
    "serve",
    "available_server_backends",
    "BackgroundServer",
    "SERVER_BACKENDS",
]
