"""Thread-safe service metrics behind ``GET /metrics``.

The server records one observation per query: its wall-clock latency plus
the cache counters of the :class:`~repro.core.queries.QueryStats` it
produced.  The snapshot exposes the operational numbers ROADMAP item 1 asks
for -- queries served, p50/p99 latency, and the index/verification cache
hit rates -- without keeping unbounded history: latencies live in a
fixed-size ring (the most recent :data:`LATENCY_WINDOW` observations), the
counters are plain monotonic sums.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Optional

from repro.core.queries import QueryStats

#: How many recent latency observations the percentile window keeps.
LATENCY_WINDOW = 4096


def _percentile(ordered, fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (fraction in [0, 1])."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1))))
    return float(ordered[rank])


class ServerMetrics:
    """Counters + latency window, safe to update from many request threads."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.queries_served = 0
        self.batches_served = 0
        self.mutations = 0
        self.query_errors = 0
        self.parse_errors = 0
        self.timeouts = 0
        self.rejected = 0
        self._latencies: deque = deque(maxlen=LATENCY_WINDOW)
        self._kernel_backends: Dict[str, int] = {}
        self._index_cache_hits = 0
        self._index_distance_computations = 0
        self._verification_cache_hits = 0
        self._verification_distance_computations = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_query(self, seconds: float, stats: Optional[QueryStats] = None) -> None:
        """One executed query: its latency and (optionally) its work stats."""
        with self._lock:
            self.queries_served += 1
            self._latencies.append(float(seconds))
            if stats is not None:
                self._kernel_backends[stats.kernel_backend] = (
                    self._kernel_backends.get(stats.kernel_backend, 0) + 1
                )
                self._index_cache_hits += stats.index_cache_hits
                self._index_distance_computations += stats.index_distance_computations
                self._verification_cache_hits += stats.verification_cache_hits
                self._verification_distance_computations += (
                    stats.verification_distance_computations
                )

    def record_batch(self) -> None:
        with self._lock:
            self.batches_served += 1

    def record_mutation(self) -> None:
        with self._lock:
            self.mutations += 1

    def record_query_error(self) -> None:
        with self._lock:
            self.query_errors += 1

    def record_parse_error(self) -> None:
        with self._lock:
            self.parse_errors += 1

    def record_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    @staticmethod
    def _hit_rate(hits: int, computations: int) -> Optional[float]:
        total = hits + computations
        if total == 0:
            return None
        return hits / total

    def snapshot(self) -> Dict[str, object]:
        """A JSON-safe snapshot of every counter, percentile, and rate."""
        with self._lock:
            ordered = sorted(self._latencies)
            return {
                "queries_served": self.queries_served,
                "batches_served": self.batches_served,
                "mutations": self.mutations,
                "query_errors": self.query_errors,
                "parse_errors": self.parse_errors,
                "timeouts": self.timeouts,
                "rejected": self.rejected,
                "latency": {
                    "window": len(ordered),
                    "p50_seconds": _percentile(ordered, 0.50),
                    "p99_seconds": _percentile(ordered, 0.99),
                    "mean_seconds": (sum(ordered) / len(ordered)) if ordered else 0.0,
                    "max_seconds": ordered[-1] if ordered else 0.0,
                },
                "kernel_backends": dict(sorted(self._kernel_backends.items())),
                "cache": {
                    "index_hit_rate": self._hit_rate(
                        self._index_cache_hits, self._index_distance_computations
                    ),
                    "index_cache_hits": self._index_cache_hits,
                    "verification_hit_rate": self._hit_rate(
                        self._verification_cache_hits,
                        self._verification_distance_computations,
                    ),
                    "verification_cache_hits": self._verification_cache_hits,
                },
            }


__all__ = ["ServerMetrics", "LATENCY_WINDOW"]
