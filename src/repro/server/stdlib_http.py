"""A dependency-free ``asyncio`` HTTP/1.1 server that hosts an ASGI app.

The container this framework targets ships no web server, so -- exactly like
the executor backends fall back to ``serial`` when no pool is available --
the service layer falls back to this minimal server when uvicorn is not
installed.  It implements just enough of HTTP/1.1 for the JSON API:

* one request per connection (``Connection: close`` on every response);
* request bodies sized by ``Content-Length`` (no chunked uploads);
* no TLS, no keep-alive, no pipelining.

That is deliberate: correctness and zero dependencies over throughput.  The
ASGI contract it offers the app is the standard one (scope ``type: http``,
``http.request`` / ``http.response.start`` / ``http.response.body``
messages), so the identical :class:`~repro.server.app.SearchApp` runs under
uvicorn unchanged when more is needed.
"""

from __future__ import annotations

import asyncio
import urllib.parse
from typing import Optional, Tuple

#: Refuse request heads larger than this (a trivial slow-loris guard).
MAX_HEADER_BYTES = 64 * 1024

#: Refuse request bodies larger than this (64 MiB -- far above any sane
#: sequence payload, small enough to bound one connection's memory).
MAX_BODY_BYTES = 64 * 1024 * 1024


class StdlibAsgiServer:
    """Serve an ASGI 3 application with ``asyncio.start_server``."""

    def __init__(self, app, host: str = "127.0.0.1", port: int = 8000) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the actual (host, port).

        ``port=0`` binds an ephemeral port -- the return value reports the
        one the kernel picked.
        """
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.port = sockname[1]
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                await self._plain_response(writer, 400, b"malformed HTTP request")
                return
            method, target, headers, body = parsed
            await self._run_app(writer, method, target, headers, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass

    async def _read_request(self, reader):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            return None
        except asyncio.IncompleteReadError:
            return None
        if len(head) > MAX_HEADER_BYTES:
            return None
        try:
            request_line, *header_lines = head.decode("latin-1").split("\r\n")
            method, target, version = request_line.split(" ", 2)
        except ValueError:
            return None
        if not version.startswith("HTTP/1."):
            return None
        headers = []
        content_length = 0
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            if not _:
                return None
            name = name.strip().lower()
            value = value.strip()
            headers.append((name.encode("latin-1"), value.encode("latin-1")))
            if name == "content-length":
                try:
                    content_length = int(value)
                except ValueError:
                    return None
        if content_length < 0 or content_length > MAX_BODY_BYTES:
            return None
        body = b""
        if content_length:
            body = await reader.readexactly(content_length)
        return method.upper(), target, headers, body

    async def _run_app(self, writer, method, target, headers, body) -> None:
        parsed = urllib.parse.urlsplit(target)
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.1"},
            "http_version": "1.1",
            "method": method,
            "scheme": "http",
            "path": urllib.parse.unquote(parsed.path),
            "raw_path": parsed.path.encode("latin-1"),
            "query_string": parsed.query.encode("latin-1"),
            "root_path": "",
            "headers": headers,
            "server": (self.host, self.port),
            "client": writer.get_extra_info("peername"),
        }
        request_messages = [
            {"type": "http.request", "body": body, "more_body": False},
            {"type": "http.disconnect"},
        ]
        position = 0

        async def receive():
            nonlocal position
            message = request_messages[min(position, len(request_messages) - 1)]
            position += 1
            return message

        state = {"started": False}

        async def send(message) -> None:
            if message["type"] == "http.response.start":
                state["started"] = True
                status = message["status"]
                lines = [f"HTTP/1.1 {status} {_reason(status)}".encode("latin-1")]
                has_length = False
                for name, value in message.get("headers", []):
                    if name.lower() == b"content-length":
                        has_length = True
                    lines.append(name + b": " + value)
                lines.append(b"connection: close")
                state["needs_length"] = not has_length
                state["head"] = lines
                state["body_parts"] = []
            elif message["type"] == "http.response.body":
                state.setdefault("body_parts", []).append(message.get("body", b""))
                if not message.get("more_body"):
                    await self._flush(writer, state)

        try:
            await self.app(scope, receive, send)
            if not state["started"]:
                await self._plain_response(writer, 500, b"app produced no response")
        except Exception as error:  # noqa: BLE001 - last-resort 500
            if not state["started"]:
                await self._plain_response(
                    writer, 500, f"internal server error: {error}".encode("utf-8")
                )
            else:
                raise

    async def _flush(self, writer, state) -> None:
        payload = b"".join(state.get("body_parts", []))
        lines = state["head"]
        if state.get("needs_length"):
            lines.append(b"content-length: " + str(len(payload)).encode("ascii"))
        writer.write(b"\r\n".join(lines) + b"\r\n\r\n" + payload)
        await writer.drain()

    async def _plain_response(self, writer, status: int, body: bytes) -> None:
        writer.write(
            f"HTTP/1.1 {status} {_reason(status)}\r\n"
            f"content-type: text/plain\r\n"
            f"content-length: {len(body)}\r\n"
            f"connection: close\r\n\r\n".encode("latin-1")
            + body
        )
        await writer.drain()


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _reason(status: int) -> str:
    return _REASONS.get(status, "Unknown")


__all__ = ["StdlibAsgiServer", "MAX_HEADER_BYTES", "MAX_BODY_BYTES"]
