"""The network service layer: the declarative query API over HTTP.

``repro.server`` puts the :class:`~repro.core.service.SearchService` facade
on the wire.  The layering mirrors the execution engine's pluggable
backends:

* :mod:`repro.server.app` -- :class:`SearchApp`, a framework-free ASGI 3
  application: routing, admission control, per-request timeouts, and the
  shared :mod:`repro.core.wire` envelopes;
* :mod:`repro.server.stdlib_http` -- a dependency-free ``asyncio`` HTTP/1.1
  server that speaks ASGI, so the service runs on a bare Python install;
* :mod:`repro.server.runner` -- :func:`serve` (blocking; picks uvicorn when
  installed, the stdlib server otherwise, exactly like the executor
  auto-detection) and :class:`BackgroundServer` (a context manager running
  the stdlib server on a daemon thread, for tests and benchmarks);
* :mod:`repro.server.metrics` -- :class:`ServerMetrics`, the thread-safe
  counters behind ``GET /metrics``.

Endpoints (see the README's "HTTP service" section for the full table):
``POST /search``, ``POST /search/batch``, ``POST /sequences``,
``DELETE /sequences/{seq_id}``, ``POST /snapshots``, ``GET /health``,
``GET /metrics``.
"""

from repro.server.app import SearchApp
from repro.server.metrics import ServerMetrics
from repro.server.runner import BackgroundServer, available_server_backends, serve
from repro.server.stdlib_http import StdlibAsgiServer

__all__ = [
    "SearchApp",
    "ServerMetrics",
    "StdlibAsgiServer",
    "BackgroundServer",
    "available_server_backends",
    "serve",
]
