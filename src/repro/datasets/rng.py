"""Shared random-number helpers for the dataset generators."""

from __future__ import annotations

from typing import Union

import numpy as np

RandomState = Union[int, np.random.Generator, None]


def make_rng(seed: RandomState = None) -> np.random.Generator:
    """Normalise a seed / generator argument into a :class:`numpy.random.Generator`.

    Passing ``None`` yields a fixed default seed (0) rather than entropy from
    the OS: every dataset in this library is synthetic, and reproducible
    figures matter more than variety.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = 0
    return np.random.default_rng(seed)


def smooth(values: np.ndarray, window: int) -> np.ndarray:
    """Simple moving-average smoothing along the first axis."""
    if window <= 1:
        return values
    kernel = np.ones(window) / window
    if values.ndim == 1:
        return np.convolve(values, kernel, mode="same")
    smoothed = np.empty_like(values)
    for column in range(values.shape[1]):
        smoothed[:, column] = np.convolve(values[:, column], kernel, mode="same")
    return smoothed
