"""Synthetic 2-D trajectories (the TRAJ dataset substitute).

The paper's TRAJ dataset contains trajectories extracted from parking-lot
surveillance video.  Such trajectories follow a modest number of lane-like
routes with per-track jitter and speed variation.  The generator here mimics
that structure: a handful of anchor routes (piecewise-linear paths across a
square scene) are sampled, each trajectory follows one route with Gaussian
jitter, random speed, and smoothing.  The result is a wide, continuous
distance distribution under both ERP and DFD -- the property Figures 7, 10
and 11 rely on.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.datasets.rng import RandomState, make_rng, smooth
from repro.sequences.database import SequenceDatabase
from repro.sequences.sequence import Sequence, SequenceKind


def _anchor_routes(rng: np.random.Generator, num_routes: int, scene_size: float) -> List[np.ndarray]:
    """Random piecewise-linear routes crossing the scene."""
    routes = []
    for _ in range(num_routes):
        num_anchors = int(rng.integers(3, 6))
        anchors = rng.uniform(0.0, scene_size, size=(num_anchors, 2))
        routes.append(anchors)
    return routes


def _sample_route(
    rng: np.random.Generator,
    anchors: np.ndarray,
    length: int,
    jitter: float,
) -> np.ndarray:
    """Walk along a route at roughly constant speed with Gaussian jitter."""
    # Arc-length parametrisation of the anchor polyline.
    deltas = np.diff(anchors, axis=0)
    segment_lengths = np.sqrt(np.sum(deltas * deltas, axis=1))
    total = float(np.sum(segment_lengths))
    cumulative = np.concatenate([[0.0], np.cumsum(segment_lengths)])
    speed_jitter = rng.uniform(0.8, 1.2)
    positions = np.linspace(0.0, total, length) * speed_jitter
    positions = np.clip(positions, 0.0, total)
    points = np.empty((length, 2), dtype=np.float64)
    for index, s in enumerate(positions):
        segment = int(np.searchsorted(cumulative, s, side="right") - 1)
        segment = min(segment, len(segment_lengths) - 1)
        if segment_lengths[segment] > 0:
            fraction = (s - cumulative[segment]) / segment_lengths[segment]
        else:
            fraction = 0.0
        points[index] = anchors[segment] + fraction * deltas[segment]
    points += rng.normal(scale=jitter, size=points.shape)
    return smooth(points, window=3)


def generate_trajectory_database(
    num_sequences: int = 40,
    sequence_length: int = 200,
    num_routes: int = 6,
    scene_size: float = 50.0,
    jitter: float = 1.0,
    seed: RandomState = None,
) -> SequenceDatabase:
    """Generate a database of lane-following 2-D trajectories."""
    rng = make_rng(seed)
    routes = _anchor_routes(rng, num_routes, scene_size)
    database = SequenceDatabase(SequenceKind.TRAJECTORY, name="traj")
    for index in range(num_sequences):
        anchors = routes[int(rng.integers(num_routes))]
        points = _sample_route(rng, anchors, sequence_length, jitter)
        database.add(Sequence(points, SequenceKind.TRAJECTORY, seq_id=f"traj-{index}"))
    return database


def generate_trajectory_query(
    database: SequenceDatabase,
    length: int = 60,
    jitter: float = 0.5,
    seed: RandomState = None,
) -> Tuple[Sequence, str, int]:
    """Cut a query trajectory from the database and add extra jitter.

    Returns the query, the source sequence id, and the cut offset.
    """
    rng = make_rng(seed)
    ids = database.ids()
    source_id = ids[int(rng.integers(len(ids)))]
    source = database[source_id]
    start = int(rng.integers(0, len(source) - length + 1))
    points = np.array(source.values[start:start + length], dtype=np.float64)
    points += rng.normal(scale=jitter, size=points.shape)
    query = Sequence(points, SequenceKind.TRAJECTORY, seq_id="traj-query")
    return query, source_id, start
