"""Synthetic pitch-class melodies (the SONGS dataset substitute).

The paper's SONGS dataset takes pitch sequences from the Million Song
Dataset: time series whose values are pitch classes in ``{0..11}``.  The
crucial property the paper calls out (Figure 4 and Section 8.1) is that the
discrete Fréchet distance over such data is heavily skewed -- most window
pairs end up at DFD between 2 and 5 -- which inflates the reference net's
parent lists unless ``nummax`` caps them, whereas ERP spreads the distances
out.

That skew arises because real melodies are built on scales: every window
contains pitch classes spread across most of the octave, so the *bottleneck*
coupling cost between any two windows is small, while the *sum* of coupling
costs (ERP) still varies a lot.  The generator therefore gives every song a
diatonic scale (seven pitch classes covering the octave) and walks over
scale degrees with small Markov steps, which reproduces exactly that pair of
distributions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.datasets.rng import RandomState, make_rng
from repro.sequences.database import SequenceDatabase
from repro.sequences.sequence import Sequence, SequenceKind

#: Number of pitch classes (values 0..11).
PITCH_CLASSES = 12

#: Semitone offsets of the major (diatonic) scale.
_MAJOR_SCALE = np.array([0, 2, 4, 5, 7, 9, 11])


def _degree_step_distribution() -> Tuple[np.ndarray, np.ndarray]:
    """Melodic motion in scale degrees: steps dominate but leaps are common.

    The leaps matter: they make every 20-note window cover most of the
    octave, which is what concentrates the discrete Fréchet distance between
    windows in the narrow 2-5 band the paper reports.
    """
    steps = np.array([-4, -3, -2, -1, 1, 2, 3, 4])
    weights = np.array([2.0, 4.0, 6.0, 10.0, 10.0, 6.0, 4.0, 2.0])
    return steps, weights / weights.sum()


def _riff(rng: np.random.Generator, length: int, scale: np.ndarray) -> np.ndarray:
    """One short riff: a degree walk over ``scale``, as pitch classes."""
    steps, probabilities = _degree_step_distribution()
    degree = int(rng.integers(len(scale)))
    pitches = np.empty(length, dtype=np.float64)
    for position in range(length):
        pitches[position] = scale[degree]
        step = int(rng.choice(steps, p=probabilities))
        degree = int((degree + step) % len(scale))
    return pitches


def _melody(
    rng: np.random.Generator,
    length: int,
    tonic: int,
    num_riffs: int = 3,
    perturbation: float = 0.05,
) -> np.ndarray:
    """A song: sections that each loop a short riff, lightly perturbed.

    Pitch tracks of real songs are dominated by short repeating figures
    (riffs, arpeggios, chord loops).  Because the discrete Fréchet distance
    warps time, any two windows covering the same looped riff -- at *any*
    phase -- are within a semitone or two of each other, while windows from
    different riffs or keys sit a few semitones apart.  That is precisely the
    narrow, skewed DFD distribution (most mass between 2 and 5) the paper
    reports for SONGS, with ERP remaining much more spread out because it
    sums coupling costs instead of taking their maximum.
    """
    scale = (tonic + _MAJOR_SCALE) % PITCH_CLASSES
    riffs = [
        _riff(rng, int(rng.integers(4, 9)), scale) for _ in range(num_riffs)
    ]
    parts = []
    produced = 0
    while produced < length:
        riff = riffs[int(rng.integers(num_riffs))]
        repeats = int(rng.integers(4, 9))
        section = np.tile(riff, repeats)
        flips = rng.random(section.shape[0]) < perturbation
        section[flips] = scale[rng.integers(0, len(scale), size=int(flips.sum()))]
        parts.append(section)
        produced += len(section)
    return np.concatenate(parts)[:length]


def generate_song_database(
    num_sequences: int = 40,
    sequence_length: int = 300,
    num_tonics: int = 12,
    seed: RandomState = None,
) -> SequenceDatabase:
    """Generate a database of scale-based pitch-class melodies.

    The defaults yield 600 windows of length 20; the space-overhead
    benchmarks scale ``num_sequences`` up to reproduce the paper's 1K-20K
    window range.  ``num_tonics`` controls how many distinct keys appear in
    the database (all twelve by default).
    """
    rng = make_rng(seed)
    database = SequenceDatabase(SequenceKind.TIME_SERIES, name="songs")
    for index in range(num_sequences):
        tonic = int(rng.integers(num_tonics)) % PITCH_CLASSES
        database.add(
            Sequence(
                _melody(rng, sequence_length, tonic),
                SequenceKind.TIME_SERIES,
                seq_id=f"song-{index}",
            )
        )
    return database


def generate_song_query(
    database: SequenceDatabase,
    length: int = 60,
    noise: float = 0.5,
    seed: RandomState = None,
) -> Tuple[Sequence, str, int]:
    """Cut a query melody from the database and perturb some of its pitches.

    ``noise`` is the probability of nudging each pitch by one semitone.
    Returns the query, the source sequence id, and the cut offset.
    """
    rng = make_rng(seed)
    ids = database.ids()
    source_id = ids[int(rng.integers(len(ids)))]
    source = database[source_id]
    start = int(rng.integers(0, len(source) - length + 1))
    pitches = np.array(source.values[start:start + length], dtype=np.float64)
    nudges = rng.random(length) < noise
    directions = rng.choice([-1.0, 1.0], size=length)
    pitches[nudges] = np.clip(pitches[nudges] + directions[nudges], 0, PITCH_CLASSES - 1)
    query = Sequence(pitches, SequenceKind.TIME_SERIES, seq_id="song-query")
    return query, source_id, start
