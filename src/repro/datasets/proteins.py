"""Synthetic protein-like strings (the PROTEINS dataset substitute).

The paper's PROTEINS dataset is drawn from UniProt: strings over the
20-letter amino-acid alphabet, partitioned into 100K windows of length 20,
compared under the Levenshtein distance.  Two properties of real protein
data matter to the framework and the index structures:

* **domain structure** -- real proteins are largely concatenations of
  recurring domains, so many windows are small edit-distance variants of a
  shared archetype.  This clustering is what gives a metric index something
  to prune on; uniformly random strings of length 20 concentrate at edit
  distance 15-17 from each other and defeat *any* metric index.
* **realistic residue composition** -- background residues follow the
  Swiss-Prot amino-acid frequencies rather than a uniform distribution.

The generator therefore builds a library of domain archetypes and emits each
sequence as a concatenation of mutated domain copies, optionally separated
by short random linkers.  Queries are cut from the generated database and
mutated, so planted matches genuinely exist.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.datasets.rng import RandomState, make_rng
from repro.sequences.alphabet import PROTEIN_ALPHABET
from repro.sequences.database import SequenceDatabase
from repro.sequences.sequence import Sequence, SequenceKind

#: Approximate background frequencies of the 20 amino acids (Swiss-Prot order
#: matched to :data:`PROTEIN_ALPHABET`'s symbol order ACDEFGHIKLMNPQRSTVWY).
_AMINO_ACID_FREQUENCIES = np.array(
    [
        0.083,  # A
        0.014,  # C
        0.055,  # D
        0.067,  # E
        0.039,  # F
        0.071,  # G
        0.023,  # H
        0.059,  # I
        0.058,  # K
        0.097,  # L
        0.024,  # M
        0.040,  # N
        0.047,  # P
        0.039,  # Q
        0.055,  # R
        0.066,  # S
        0.053,  # T
        0.069,  # V
        0.011,  # W
        0.030,  # Y
    ]
)
_AMINO_ACID_FREQUENCIES = _AMINO_ACID_FREQUENCIES / _AMINO_ACID_FREQUENCIES.sum()


def _random_codes(rng: np.random.Generator, length: int) -> np.ndarray:
    return rng.choice(len(PROTEIN_ALPHABET), size=length, p=_AMINO_ACID_FREQUENCIES)


def _mutate(rng: np.random.Generator, codes: np.ndarray, rate: float) -> np.ndarray:
    """Substitute a fraction ``rate`` of the positions with random residues."""
    mutated = codes.copy()
    flips = rng.random(codes.shape[0]) < rate
    mutated[flips] = rng.integers(0, len(PROTEIN_ALPHABET), size=int(flips.sum()))
    return mutated


def generate_protein_database(
    num_sequences: int = 50,
    sequence_length: int = 400,
    num_domains: int = 25,
    domain_length: int = 60,
    mutation_rate: float = 0.08,
    linker_rate: float = 0.15,
    seed: RandomState = None,
) -> SequenceDatabase:
    """Generate a database of domain-structured protein-like strings.

    Each sequence is a concatenation of mutated copies drawn from a shared
    library of ``num_domains`` domain archetypes; with probability
    ``linker_rate`` a block is instead a fresh random "linker" stretch.

    Parameters
    ----------
    num_sequences, sequence_length:
        Shape of the database; the defaults yield 1000 windows of length 20.
    num_domains, domain_length:
        Size of the shared domain library.
    mutation_rate:
        Per-residue substitution probability applied to every domain copy,
        controlling how tight the window clusters are.
    linker_rate:
        Fraction of blocks that are unstructured background instead of a
        domain copy.
    seed:
        Seed or generator for reproducibility.
    """
    rng = make_rng(seed)
    domains = [_random_codes(rng, domain_length) for _ in range(num_domains)]
    database = SequenceDatabase(SequenceKind.STRING, name="proteins")
    for index in range(num_sequences):
        blocks: List[np.ndarray] = []
        produced = 0
        while produced < sequence_length:
            if num_domains and rng.random() >= linker_rate:
                archetype = domains[int(rng.integers(num_domains))]
                block = _mutate(rng, archetype, mutation_rate)
            else:
                block = _random_codes(rng, domain_length)
            blocks.append(block)
            produced += len(block)
        codes = np.concatenate(blocks)[:sequence_length]
        sequence = Sequence(
            codes, SequenceKind.STRING, seq_id=f"protein-{index}", alphabet=PROTEIN_ALPHABET
        )
        database.add(sequence)
    return database


def generate_protein_query(
    database: SequenceDatabase,
    length: int = 60,
    mutation_rate: float = 0.15,
    seed: RandomState = None,
) -> Tuple[Sequence, str, int]:
    """Cut a query out of the database and mutate it.

    Returns the query sequence together with the source sequence id and the
    start offset it was cut from, so tests and examples can check that the
    matcher finds the planted region.
    """
    rng = make_rng(seed)
    ids = database.ids()
    source_id = ids[int(rng.integers(len(ids)))]
    source = database[source_id]
    start = int(rng.integers(0, len(source) - length + 1))
    codes = np.asarray(source.values[start:start + length], dtype=np.int64)
    codes = _mutate(rng, codes, mutation_rate)
    query = Sequence(codes, SequenceKind.STRING, seq_id="protein-query", alphabet=PROTEIN_ALPHABET)
    return query, source_id, start


def random_protein_windows(
    count: int, window_length: int = 20, seed: RandomState = None
) -> List[Sequence]:
    """Independent random windows (used by distance-distribution figures)."""
    rng = make_rng(seed)
    return [
        Sequence(
            _random_codes(rng, window_length),
            SequenceKind.STRING,
            seq_id=f"protein-window-{index}",
            alphabet=PROTEIN_ALPHABET,
        )
        for index in range(count)
    ]
