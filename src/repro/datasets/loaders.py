"""Uniform access to the three synthetic datasets and their windows.

The benchmark harness wants "give me N windows of dataset D and the distance
the paper pairs it with" as a single call; these helpers provide that,
including the canonical dataset/distance pairings of the evaluation
(PROTEINS + Levenshtein, SONGS + {DFD, ERP}, TRAJ + {DFD, ERP}).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.datasets.proteins import generate_protein_database
from repro.datasets.rng import RandomState
from repro.datasets.songs import generate_song_database
from repro.datasets.trajectories import generate_trajectory_database
from repro.distances.base import Distance
from repro.distances.erp import ERP
from repro.distances.frechet import DiscreteFrechet
from repro.distances.levenshtein import Levenshtein
from repro.exceptions import ConfigurationError
from repro.sequences.database import SequenceDatabase
from repro.sequences.windows import Window

#: Window length used throughout the paper's experiments.
PAPER_WINDOW_LENGTH = 20

#: The dataset / distance pairings evaluated in the paper.
PAPER_PAIRINGS: Dict[str, List[str]] = {
    "proteins": ["levenshtein"],
    "songs": ["frechet", "erp"],
    "traj": ["frechet", "erp"],
}


def load_dataset(
    name: str,
    num_windows: int,
    window_length: int = PAPER_WINDOW_LENGTH,
    seed: RandomState = 0,
) -> SequenceDatabase:
    """Generate dataset ``name`` sized to produce about ``num_windows`` windows.

    ``name`` is one of ``"proteins"``, ``"songs"``, ``"traj"``.
    """
    if num_windows < 1:
        raise ConfigurationError(f"num_windows must be >= 1, got {num_windows}")
    windows_per_sequence = 10
    sequence_length = windows_per_sequence * window_length
    num_sequences = max(1, (num_windows + windows_per_sequence - 1) // windows_per_sequence)
    key = name.lower()
    if key == "proteins":
        return generate_protein_database(
            num_sequences=num_sequences,
            sequence_length=sequence_length,
            domain_length=3 * window_length,
            seed=seed,
        )
    if key == "songs":
        return generate_song_database(
            num_sequences=num_sequences, sequence_length=sequence_length, seed=seed
        )
    if key == "traj":
        return generate_trajectory_database(
            num_sequences=num_sequences, sequence_length=sequence_length, seed=seed
        )
    raise ConfigurationError(
        f"unknown dataset {name!r}; expected one of 'proteins', 'songs', 'traj'"
    )


def dataset_windows(
    name: str,
    num_windows: int,
    window_length: int = PAPER_WINDOW_LENGTH,
    seed: RandomState = 0,
) -> List[Window]:
    """Exactly ``num_windows`` windows of the named dataset."""
    database = load_dataset(name, num_windows, window_length, seed)
    windows = database.windows(window_length)
    return windows[:num_windows]


def dataset_distance(dataset: str, distance: str) -> Distance:
    """Instantiate the distance the paper pairs with ``dataset``.

    Raises when the pairing is not one the paper evaluates, preventing the
    benchmarks from silently measuring an unintended combination.
    """
    pairings = PAPER_PAIRINGS.get(dataset.lower())
    if pairings is None or distance.lower() not in pairings:
        raise ConfigurationError(
            f"the paper does not evaluate {distance!r} on {dataset!r}; "
            f"evaluated pairings: {PAPER_PAIRINGS}"
        )
    key = distance.lower()
    if key == "levenshtein":
        return Levenshtein()
    if key == "erp":
        return ERP()
    return DiscreteFrechet()


def paper_configurations() -> List[Tuple[str, str]]:
    """Every (dataset, distance) combination the paper evaluates."""
    combinations: List[Tuple[str, str]] = []
    for dataset, distances in PAPER_PAIRINGS.items():
        for distance in distances:
            combinations.append((dataset, distance))
    return combinations
