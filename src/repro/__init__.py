"""repro: a generic framework for efficient and effective subsequence retrieval.

This library reproduces Zhu, Kollios & Athitsos, *"A Generic Framework for
Efficient and Effective Subsequence Retrieval"* (PVLDB 5(11), 2012):

* a family of sequence distances with explicit *metricity* and *consistency*
  flags (:mod:`repro.distances`);
* the **reference net**, a linear-space, multi-parent metric index optimised
  for range queries, plus cover-tree / reference-based / vp-tree baselines
  (:mod:`repro.indexing`);
* the window-segmentation subsequence-matching framework with the paper's
  three query types (:mod:`repro.core`);
* synthetic stand-ins for the paper's PROTEINS / SONGS / TRAJ datasets
  (:mod:`repro.datasets`) and the analysis helpers behind every figure
  (:mod:`repro.analysis`).

Quickstart::

    from repro import (
        Sequence, SequenceDatabase, SequenceKind, DiscreteFrechet,
        SubsequenceMatcher, MatcherConfig, LongestSubsequenceQuery,
    )

    db = SequenceDatabase(SequenceKind.TIME_SERIES)
    db.add(Sequence.from_values(range(100), seq_id="ramp"))
    matcher = SubsequenceMatcher(db, DiscreteFrechet(),
                                 MatcherConfig(min_length=20, max_shift=2))
    query = Sequence.from_values(range(30, 70), seq_id="q")
    spec = LongestSubsequenceQuery(radius=0.5).bind(query)
    print(matcher.execute(spec).best)
"""

from repro.exceptions import (
    ReproError,
    SequenceError,
    AlphabetError,
    DistanceError,
    IncompatibleSequencesError,
    IndexError_,
    ItemNotFoundError,
    InvariantViolationError,
    ConfigurationError,
    QueryError,
    StorageError,
)
from repro.sequences import (
    Alphabet,
    DNA_ALPHABET,
    PROTEIN_ALPHABET,
    PITCH_ALPHABET,
    Sequence,
    SequenceKind,
    Window,
    sliding_windows,
    tumbling_windows,
    SequenceDatabase,
)
from repro.distances import (
    Distance,
    DistanceCache,
    shared_cache,
    ElementMetric,
    Euclidean,
    Hamming,
    Levenshtein,
    WeightedLevenshtein,
    DTW,
    ERP,
    DiscreteFrechet,
    EDR,
    LCSS,
    check_consistency,
    ConsistencyReport,
    get_distance,
    register_distance,
    available_distances,
)
from repro.indexing import (
    MetricIndex,
    RangeMatch,
    DistanceCounter,
    CountingDistance,
    IndexStats,
    LinearScanIndex,
    ReferenceNet,
    CoverTree,
    ReferenceIndex,
    VPTree,
)
from repro.storage import (
    save_database,
    load_database,
    save_windows,
    load_windows,
    save_matcher,
    load_matcher,
)
from repro.core import (
    WIRE_SCHEMA_VERSION,
    MatcherConfig,
    QueryResult,
    QueryStats,
    RangeQuery,
    LongestSubsequenceQuery,
    NearestSubsequenceQuery,
    SearchService,
    SegmentMatch,
    SubsequenceMatch,
    SubsequenceMatcher,
    ShardedMatcher,
    TopKQuery,
    QueryPipeline,
    SearchRequest,
    canonical_json,
    config_fingerprint,
    error_envelope,
    make_executor,
    parse_search_request,
    parse_spec,
    result_envelope,
    sequence_from_wire,
    sequence_to_wire,
    partition_database,
    extract_query_segments,
    chain_segment_matches,
    brute_force_matches,
    brute_force_longest,
    brute_force_nearest,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "SequenceError",
    "AlphabetError",
    "DistanceError",
    "IncompatibleSequencesError",
    "IndexError_",
    "ItemNotFoundError",
    "InvariantViolationError",
    "ConfigurationError",
    "QueryError",
    "StorageError",
    # sequences
    "Alphabet",
    "DNA_ALPHABET",
    "PROTEIN_ALPHABET",
    "PITCH_ALPHABET",
    "Sequence",
    "SequenceKind",
    "Window",
    "sliding_windows",
    "tumbling_windows",
    "SequenceDatabase",
    # distances
    "Distance",
    "DistanceCache",
    "shared_cache",
    "ElementMetric",
    "Euclidean",
    "Hamming",
    "Levenshtein",
    "WeightedLevenshtein",
    "DTW",
    "ERP",
    "DiscreteFrechet",
    "EDR",
    "LCSS",
    "check_consistency",
    "ConsistencyReport",
    "get_distance",
    "register_distance",
    "available_distances",
    # indexing
    "MetricIndex",
    "RangeMatch",
    "DistanceCounter",
    "CountingDistance",
    "IndexStats",
    "LinearScanIndex",
    "ReferenceNet",
    "CoverTree",
    "ReferenceIndex",
    "VPTree",
    # core framework
    "MatcherConfig",
    "QueryResult",
    "QueryStats",
    "RangeQuery",
    "LongestSubsequenceQuery",
    "NearestSubsequenceQuery",
    "SearchService",
    "SegmentMatch",
    "SubsequenceMatch",
    "SubsequenceMatcher",
    "ShardedMatcher",
    "TopKQuery",
    "config_fingerprint",
    "make_executor",
    "QueryPipeline",
    # wire format (CLI --json + HTTP service)
    "WIRE_SCHEMA_VERSION",
    "SearchRequest",
    "canonical_json",
    "error_envelope",
    "parse_search_request",
    "parse_spec",
    "result_envelope",
    "sequence_from_wire",
    "sequence_to_wire",
    "partition_database",
    "extract_query_segments",
    "chain_segment_matches",
    "brute_force_matches",
    "brute_force_longest",
    "brute_force_nearest",
    # storage
    "save_database",
    "load_database",
    "save_windows",
    "load_windows",
    "save_matcher",
    "load_matcher",
]
