"""Trajectory subsequence search: which past track contains a path like this one?

The paper's TRAJ dataset comes from surveillance video of a parking lot; the
corresponding task is "given a fragment of a trajectory, find the stored
tracks that contain a similar fragment".  This example generates lane-like
synthetic trajectories, indexes them under the discrete Fréchet distance and
under ERP, and compares what the two metrics retrieve for the same query.

Run with::

    python examples/trajectory_search.py
"""

from __future__ import annotations

import os

from repro import (
    DiscreteFrechet,
    ERP,
    LongestSubsequenceQuery,
    MatcherConfig,
    SubsequenceMatcher,
)
from repro.datasets import generate_trajectory_database, generate_trajectory_query

#: CI's smoke job shrinks the generated tracks via REPRO_EXAMPLE_SCALE.
_SCALE = max(0.05, float(os.environ.get("REPRO_EXAMPLE_SCALE", "1")))


def _scaled(value: int, minimum: int) -> int:
    return max(minimum, int(value * _SCALE))


def main() -> None:
    database = generate_trajectory_database(
        num_sequences=_scaled(30, 8),
        sequence_length=_scaled(200, 100),
        num_routes=5,
        jitter=0.8,
        seed=3,
    )
    print(f"database: {database}")

    query, source_id, offset = generate_trajectory_query(database, length=70, jitter=0.4, seed=8)
    print(f"query: 70 points re-observed (with extra noise) from {source_id!r} at offset {offset}")

    config = MatcherConfig(min_length=40, max_shift=2)

    # The discrete Fréchet distance bounds the *worst* deviation between the
    # two fragments; ERP accumulates deviations (and pays for gaps), so the
    # two rank candidates differently.
    for name, distance, radius in (
        ("discrete Fréchet", DiscreteFrechet(), 3.0),
        ("ERP", ERP(), 150.0),
    ):
        matcher = SubsequenceMatcher(database, distance, config)
        result = matcher.execute(LongestSubsequenceQuery(radius=radius).bind(query))
        best = result.best
        stats = result.stats
        print(f"\n{name} (radius {radius}):")
        if best is None:
            print("  no similar sub-trajectory found")
            continue
        print(f"  best match: {best}")
        print(
            f"  step-4 work: {stats.index_distance_computations} distance computations "
            f"vs {stats.naive_distance_computations} for a naive scan "
            f"(pruning ratio {stats.pruning_ratio:.0%})"
        )
        print(f"  correct source found: {best.source_id == source_id}")


if __name__ == "__main__":
    main()
