"""Protein motif search: subsequence retrieval on strings with the edit distance.

The scenario the paper motivates with biological sequences: two proteins can
be globally dissimilar while sharing a highly significant local motif.  This
example generates a synthetic protein database with shared (mutated) domain
blocks, takes a query cut from one of the proteins, and uses the framework
to locate where (and how well) that query region recurs across the database.

Run with::

    python examples/protein_motif_search.py
"""

from __future__ import annotations

import os

from repro import (
    Levenshtein,
    LongestSubsequenceQuery,
    MatcherConfig,
    NearestSubsequenceQuery,
    SubsequenceMatcher,
)
from repro.datasets import generate_protein_database, generate_protein_query

#: CI's smoke job shrinks the generated dataset via REPRO_EXAMPLE_SCALE.
_SCALE = max(0.05, float(os.environ.get("REPRO_EXAMPLE_SCALE", "1")))


def _scaled(value: int, minimum: int) -> int:
    return max(minimum, int(value * _SCALE))


def main() -> None:
    # About 1000 windows of length 20 -- the paper's PROTEINS setting scaled
    # down so this example runs in seconds.
    database = generate_protein_database(
        num_sequences=_scaled(40, 10),
        sequence_length=_scaled(300, 120),
        num_domains=15,
        mutation_rate=0.08,
        seed=7,
    )
    print(f"database: {database}")

    # Cut a 60-residue query out of a database protein and mutate 15% of it,
    # so the true answer is known.
    query, source_id, offset = generate_protein_query(
        database, length=60, mutation_rate=0.15, seed=11
    )
    print(f"query of {len(query)} residues cut from {source_id!r} at offset {offset}")
    print(f"query text: {query.to_string()}")

    # lambda = 40: a reported match must span at least 40 residues.
    config = MatcherConfig(min_length=40, max_shift=2)
    matcher = SubsequenceMatcher(database, Levenshtein(), config)

    print("\nType II -- longest region of the query with an edit-similar region in the database")
    for radius in (4.0, 8.0, 12.0):
        result = matcher.execute(LongestSubsequenceQuery(radius=radius).bind(query))
        best = result.best
        stats = result.stats
        if best is None:
            print(f"  radius {radius:>4}: no match")
            continue
        print(
            f"  radius {radius:>4}: {best.source_id} [{best.db_start}:{best.db_stop}] "
            f"matches query [{best.query_start}:{best.query_stop}] "
            f"at edit distance {best.distance:.0f} "
            f"({stats.index_distance_computations} index distance computations, "
            f"pruning {stats.pruning_ratio:.0%})"
        )

    print("\nType III -- closest database region regardless of radius")
    nearest = matcher.execute(
        NearestSubsequenceQuery(max_radius=25.0).bind(query)
    ).best
    if nearest is not None:
        matched = database[nearest.source_id].subsequence(nearest.db_start, nearest.db_stop)
        print(f"  {nearest}")
        print(f"  matched region: {matched.to_string()}")
        if nearest.source_id == source_id:
            print("  -> found the protein the query was cut from")


if __name__ == "__main__":
    main()
