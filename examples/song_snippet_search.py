"""Song snippet search: locate a hummed/remembered melody fragment in a catalogue.

A fragment of a melody (here: a pitch-class sequence, as in the Million Song
Dataset) is matched against a catalogue of songs.  The example also shows
the paper's observation that the discrete Fréchet distance is extremely
forgiving on pitch data (most windows are within a few semitones of each
other), so the minimum-length parameter lambda and the choice of radius do
the heavy lifting in making results meaningful.

Run with::

    python examples/song_snippet_search.py
"""

from __future__ import annotations

import os

from repro import (
    DiscreteFrechet,
    LongestSubsequenceQuery,
    MatcherConfig,
    RangeQuery,
    SubsequenceMatcher,
)
from repro.datasets import generate_song_database, generate_song_query
from repro.analysis import distance_distribution
from repro.analysis.reporting import format_histogram

#: CI's smoke job shrinks the generated catalogue via REPRO_EXAMPLE_SCALE.
_SCALE = max(0.05, float(os.environ.get("REPRO_EXAMPLE_SCALE", "1")))


def _scaled(value: int, minimum: int) -> int:
    return max(minimum, int(value * _SCALE))


def main() -> None:
    database = generate_song_database(
        num_sequences=_scaled(25, 8), sequence_length=_scaled(240, 120), seed=5
    )
    print(f"catalogue: {database}")

    query, source_id, offset = generate_song_query(database, length=60, noise=0.2, seed=9)
    print(f"query: 60 notes remembered (with mistakes) from {source_id!r} at offset {offset}")

    config = MatcherConfig(min_length=40, max_shift=2)
    matcher = SubsequenceMatcher(database, DiscreteFrechet(), config)

    # Show why the radius must be small for pitch data: the bulk of window
    # pairs already sit at DFD 2-6 (the paper's Figure 4 observation).
    windows = [window.sequence for window in matcher.windows][:80]
    sample = distance_distribution(windows, DiscreteFrechet(), max_pairs=500)
    print("\npairwise DFD between catalogue windows (Figure 4 style):")
    print(format_histogram(sample.bin_edges, sample.counts, width=30))

    print("\nType II -- longest matching passage per radius:")
    for radius in (1.0, 2.0, 3.0):
        best = matcher.execute(
            LongestSubsequenceQuery(radius=radius).bind(query)
        ).best
        if best is None:
            print(f"  radius {radius}: nothing at least {config.min_length} notes long")
        else:
            marker = "<-- source song" if best.source_id == source_id else ""
            print(
                f"  radius {radius}: {best.source_id} "
                f"[{best.db_start}:{best.db_stop}] distance {best.distance:.2f} "
                f"length {best.length} {marker}"
            )

    print("\nType I -- every catalogue passage within DFD 1.5 of a query passage:")
    matches = list(
        matcher.execute(RangeQuery(radius=1.5, max_results=10).bind(query)).matches
    )
    for match in matches:
        print(f"  {match}")
    if not matches:
        print("  (none)")


if __name__ == "__main__":
    main()
