"""Quickstart: find a shared pattern between two noisy time series.

This example builds a tiny time-series database in which two sequences share
a planted sine-burst pattern, indexes it with the reference net, and runs
the paper's three query types against a noisy copy of the pattern.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DiscreteFrechet,
    LongestSubsequenceQuery,
    MatcherConfig,
    NearestSubsequenceQuery,
    RangeQuery,
    SearchService,
    Sequence,
    SequenceDatabase,
    SequenceKind,
    SubsequenceMatcher,
    TopKQuery,
)


def build_database(rng: np.random.Generator) -> SequenceDatabase:
    """Three sequences; the first two contain the same 30-point pattern."""
    pattern = 3.0 * np.sin(np.linspace(0.0, 4.0 * np.pi, 30))
    database = SequenceDatabase(SequenceKind.TIME_SERIES, name="quickstart")
    database.add(
        Sequence.from_values(
            np.concatenate([rng.uniform(8, 12, 20), pattern, rng.uniform(8, 12, 20)]),
            seq_id="sensor-a",
        )
    )
    database.add(
        Sequence.from_values(
            np.concatenate([rng.uniform(-12, -8, 35), pattern + 0.05, rng.uniform(-12, -8, 5)]),
            seq_id="sensor-b",
        )
    )
    database.add(
        Sequence.from_values(rng.uniform(20, 30, 70), seq_id="background"),
    )
    return database


def main() -> None:
    rng = np.random.default_rng(42)
    database = build_database(rng)

    # lambda = 20: report only matches of at least 20 elements.
    # lambda0 = 2: allow the two sides of a match to differ by up to 2 elements.
    config = MatcherConfig(min_length=20, max_shift=2)
    matcher = SubsequenceMatcher(database, DiscreteFrechet(), config)
    print(matcher)

    # The query: the shared pattern with a little noise on top.
    pattern = 3.0 * np.sin(np.linspace(0.0, 4.0 * np.pi, 30))
    query = Sequence.from_values(pattern + rng.normal(scale=0.05, size=30), seq_id="query")

    # Every query type is a declarative spec: build it, bind the query
    # sequence, execute -- one envelope shape whatever the type.
    print("\nType II -- longest similar subsequence (radius 0.5):")
    longest = matcher.execute(LongestSubsequenceQuery(radius=0.5).bind(query))
    print(f"  {longest.best}")
    stats = longest.stats
    print(
        f"  index distance computations: {stats.index_distance_computations} "
        f"(a naive scan of step 4 would need {stats.naive_distance_computations})"
    )

    print("\nType III -- nearest subsequence:")
    nearest = matcher.execute(NearestSubsequenceQuery(max_radius=5.0).bind(query))
    print(f"  {nearest.best}")

    print("\nType I -- all similar subsequence pairs (radius 0.5):")
    for match in matcher.execute(RangeQuery(radius=0.5).bind(query)).matches:
        print(f"  {match}")

    # The same specs execute through the backend-agnostic service facade,
    # which is also what the HTTP server wraps (see `repro serve`).
    print("\nTop-k -- the 3 nearest subsequence pairs, declaratively:")
    service = SearchService(matcher)
    result = service.execute(TopKQuery(k=3, max_radius=5.0).bind(query))
    for match in result.matches:
        print(f"  {match}")
    print(
        f"  ({result.total_matches} candidates before paging; "
        f"{len(result.stats.passes)} sweep passes; "
        f"config fingerprint {service.fingerprint()})"
    )


if __name__ == "__main__":
    main()
