"""Tests for dynamic time warping."""

import numpy as np
import pytest

from repro import DTW, DistanceError, Sequence


class TestDTWValues:
    def test_identical_sequences(self):
        assert DTW()([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_time_shift_absorbed(self):
        # The paper's example: 111222333 has DTW distance 0 to 123.
        long = [1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0]
        short = [1.0, 2.0, 3.0]
        assert DTW()(long, short) == 0.0

    def test_known_small_case(self):
        # Align [0, 1] with [0, 2]: couple 0-0 and 1-2 -> cost 1.
        assert DTW()([0.0, 1.0], [0.0, 2.0]) == pytest.approx(1.0)

    def test_unequal_lengths_supported(self):
        assert DTW()([0.0, 1.0, 2.0], [0.0, 2.0]) >= 0.0

    def test_trajectories(self):
        a = Sequence.from_points([[0, 0], [1, 1], [2, 2]])
        b = Sequence.from_points([[0, 0], [2, 2]])
        assert DTW()(a, b) == pytest.approx(np.sqrt(2.0))

    def test_triangle_inequality_violated_example(self):
        # A counterexample showing DTW is not a metric: the "stretchy"
        # middle sequence absorbs both ends cheaply.
        distance = DTW()
        a = [1.0, 1.0, 1.0]
        b = [1.0, 2.0]
        c = [2.0, 2.0, 2.0]
        assert distance(a, c) > distance(a, b) + distance(b, c)

    def test_flags(self):
        distance = DTW()
        assert not distance.is_metric
        assert distance.is_consistent


class TestDTWBand:
    def test_band_zero_on_equal_lengths(self):
        # A zero-width band forces the diagonal alignment.
        assert DTW(band=0)([1.0, 2.0, 3.0], [2.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_band_too_narrow_raises(self):
        with pytest.raises(DistanceError):
            DTW(band=0)([1.0, 2.0, 3.0, 4.0], [1.0, 2.0])

    def test_wide_band_equals_unconstrained(self):
        a = [0.0, 1.0, 3.0, 2.0, 1.0]
        b = [0.0, 2.0, 3.0, 1.0]
        assert DTW(band=10)(a, b) == pytest.approx(DTW()(a, b))

    def test_band_is_upper_bounded_by_unconstrained(self):
        a = [0.0, 1.0, 3.0, 2.0, 1.0, 0.5]
        b = [0.0, 2.0, 3.0, 1.0, 0.0, 0.0]
        assert DTW()(a, b) <= DTW(band=1)(a, b) + 1e-12

    def test_negative_band_rejected(self):
        with pytest.raises(DistanceError):
            DTW(band=-1)


class TestDTWAlignment:
    def test_alignment_cost_matches_distance(self):
        distance = DTW()
        a = [0.0, 1.0, 2.0, 1.0]
        b = [0.0, 2.0, 1.0]
        alignment = distance.alignment(a, b)
        assert alignment.cost == pytest.approx(distance(a, b))

    def test_alignment_covers_all_indices(self):
        alignment = DTW().alignment([0.0, 1.0, 2.0], [0.0, 2.0])
        assert alignment.covers_all_indices(3, 2)

    def test_alignment_boundary_conditions(self):
        alignment = DTW().alignment([0.0, 1.0, 2.0], [0.0, 2.0])
        assert alignment.couplings[0] == (0, 0)
        assert alignment.couplings[-1] == (2, 1)

    def test_lower_bound_valid(self):
        distance = DTW()
        a = [0.0, 5.0, 1.0]
        b = [1.0, 2.0, 4.0]
        assert distance.lower_bound(a, b) <= distance(a, b) + 1e-12

    def test_repr(self):
        assert "band" in repr(DTW(band=3))
