"""Unit tests for the pluggable execution engines.

The functional guarantees (parallel == serial results and counters) are
covered by the equivalence suites; these tests pin down the executor layer
itself: task ordering, CPU accounting, the process pool's three-phase
remote protocol and its local fallback, pool sharing, and the
configuration plumbing.
"""

import os
import threading
import time

import pytest

from repro.core.executor import (
    EXECUTOR_NAMES,
    ProcessPoolExecutor,
    SerialExecutor,
    TaskResult,
    ThreadPoolExecutor,
    WorkTask,
    _shared_pool,
    default_workers,
    make_executor,
)
from repro.exceptions import ConfigurationError


def _double_payload(payload):
    return payload * 2


class TestSerialExecutor:
    def test_runs_in_order(self):
        seen = []
        tasks = [WorkTask(local=lambda i=i: seen.append(i) or i) for i in range(8)]
        results = SerialExecutor().run(tasks)
        assert [result.value for result in results] == list(range(8))
        assert seen == list(range(8))

    def test_is_not_parallel(self):
        executor = SerialExecutor()
        assert not executor.is_parallel
        assert executor.workers == 1

    def test_cpu_seconds_recorded(self):
        def spin():
            deadline = time.thread_time() + 0.01
            while time.thread_time() < deadline:
                pass
            return "done"

        [result] = SerialExecutor().run([WorkTask(local=spin)])
        assert isinstance(result, TaskResult)
        assert result.value == "done"
        assert result.cpu_seconds >= 0.01


class TestThreadPoolExecutor:
    def test_results_keep_task_order(self):
        def task(i):
            time.sleep(0.002 * (8 - i))
            return i

        tasks = [WorkTask(local=lambda i=i: task(i)) for i in range(8)]
        results = ThreadPoolExecutor(4).run(tasks)
        assert [result.value for result in results] == list(range(8))

    def test_actually_uses_worker_threads(self):
        names = set()
        barrier = threading.Barrier(2, timeout=5)

        def task():
            barrier.wait()
            names.add(threading.current_thread().name)
            return True

        ThreadPoolExecutor(2).run([WorkTask(local=task) for _ in range(2)])
        assert len(names) == 2
        assert all(name.startswith("repro-worker") for name in names)

    def test_single_task_runs_inline(self):
        [result] = ThreadPoolExecutor(4).run(
            [WorkTask(local=lambda: threading.current_thread().name)]
        )
        assert result.value == threading.current_thread().name

    def test_exceptions_propagate(self):
        def boom():
            raise ValueError("unit failed")

        with pytest.raises(ValueError, match="unit failed"):
            ThreadPoolExecutor(2).run([WorkTask(local=boom), WorkTask(local=boom)])

    def test_pool_is_shared(self):
        assert _shared_pool("thread", 3) is _shared_pool("thread", 3)
        assert _shared_pool("thread", 3) is not _shared_pool("thread", 4)


class TestProcessPoolExecutor:
    def test_remote_tasks_round_trip(self):
        tasks = [
            WorkTask(
                local=lambda i=i: _double_payload(i),
                prepare=lambda i=i: i,
                remote=_double_payload,
                finish=lambda out: out + 1,
            )
            for i in range(5)
        ]
        results = ProcessPoolExecutor(2).run(tasks)
        assert [result.value for result in results] == [2 * i + 1 for i in range(5)]

    def test_tasks_without_remote_run_locally(self):
        pid_box = []

        def local():
            pid_box.append(os.getpid())
            return "local"

        [result] = ProcessPoolExecutor(2).run([WorkTask(local=local)])
        assert result.value == "local"
        assert pid_box == [os.getpid()]

    def test_mixed_remote_and_local_preserve_order(self):
        tasks = []
        for i in range(6):
            if i % 2 == 0:
                tasks.append(
                    WorkTask(
                        local=lambda i=i: _double_payload(i),
                        prepare=lambda i=i: i,
                        remote=_double_payload,
                        finish=lambda out: out,
                    )
                )
            else:
                tasks.append(WorkTask(local=lambda i=i: i * 2))
        results = ProcessPoolExecutor(2).run(tasks)
        assert [result.value for result in results] == [2 * i for i in range(6)]


class TestMakeExecutor:
    def test_names(self):
        assert make_executor("serial").name == "serial"
        assert make_executor("thread", 2).name == "thread"
        assert make_executor("process", 2).name == "process"

    def test_default_worker_count(self):
        executor = make_executor("thread")
        assert executor.workers == default_workers()
        assert default_workers() >= 1

    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown executor"):
            make_executor("gpu")
        assert "serial" in EXECUTOR_NAMES

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ConfigurationError, match="workers"):
            ThreadPoolExecutor(0)


class TestCostAwareChunking:
    """Cost-weighted chunk cuts: legacy-compatible, heavy-task-aware."""

    def _flat(self, chunks):
        return [position for chunk in chunks for position in chunk]

    def test_uniform_costs_match_sizebased_boundaries(self):
        from repro.indexing.base import chunk_positions

        for count in (1, 7, 16, 100):
            for workers in (1, 2, 4):
                uniform = chunk_positions(count, workers, costs=[1.0] * count)
                legacy = chunk_positions(count, workers)
                assert uniform == legacy

    def test_costed_chunks_are_contiguous_and_complete(self):
        from repro.indexing.base import chunk_positions

        costs = [5.0, 1.0, 1.0, 1.0, 40.0, 1.0, 1.0, 2.0]
        chunks = chunk_positions(len(costs), 2, costs=costs)
        assert self._flat(chunks) == list(range(len(costs)))
        for chunk in chunks:
            assert chunk == list(range(chunk[0], chunk[-1] + 1))

    def test_heavy_unit_closes_its_chunk(self):
        from repro.indexing.base import chunk_positions

        # One unit holds almost all the cost: it must not drag the cheap
        # tail into its chunk (the fixed-size cut would).
        costs = [100.0] + [1.0] * 7
        chunks = chunk_positions(len(costs), 2, costs=costs)
        assert chunks[0] == [0]

    def test_zero_total_cost_falls_back_to_sizebased(self):
        from repro.indexing.base import chunk_positions

        assert chunk_positions(8, 2, costs=[0.0] * 8) == chunk_positions(8, 2)

    def test_process_cost_chunks_match_legacy_for_uniform_costs(self):
        import math

        tasks = [
            WorkTask(local=lambda: None, prepare=lambda: None, remote=_double_payload)
            for _ in range(10)
        ]
        entries = [(position, None) for position in range(10)]
        workers = 2
        target = float(len(tasks)) / (2 * workers)
        chunks = ProcessPoolExecutor._cost_chunks(tasks, entries, target)
        legacy_size = math.ceil(len(entries) / (2 * workers))
        assert [len(chunk) for chunk in chunks] == [
            legacy_size
        ] * (len(entries) // legacy_size) + (
            [len(entries) % legacy_size] if len(entries) % legacy_size else []
        )

    def test_process_cost_chunks_isolate_heavy_task(self):
        tasks = []
        for cost in (50.0, 1.0, 1.0, 1.0):
            tasks.append(
                WorkTask(
                    local=lambda: None,
                    prepare=lambda: None,
                    remote=_double_payload,
                    cost=cost,
                )
            )
        entries = [(position, None) for position in range(4)]
        total = sum(task.cost for task in tasks)
        chunks = ProcessPoolExecutor._cost_chunks(tasks, entries, total / 4)
        assert [entry[0] for entry in chunks[0]] == [0]

    def test_none_target_gives_singleton_chunks(self):
        tasks = [
            WorkTask(local=lambda: None, prepare=lambda: None, remote=_double_payload)
            for _ in range(3)
        ]
        entries = [(position, None) for position in range(3)]
        chunks = ProcessPoolExecutor._cost_chunks(tasks, entries, None)
        assert [len(chunk) for chunk in chunks] == [1, 1, 1]
