"""Tests for the extension distances EDR and LCSS."""

import pytest

from repro import EDR, LCSS, DistanceError
from repro.distances.base import as_array


class TestEDR:
    def test_identical_sequences(self):
        assert EDR(epsilon=0.5)([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_within_threshold_matches(self):
        assert EDR(epsilon=0.5)([1.0, 2.0], [1.2, 2.3]) == 0.0

    def test_outside_threshold_costs_one(self):
        assert EDR(epsilon=0.1)([1.0], [2.0]) == 1.0

    def test_gap_costs_one(self):
        assert EDR(epsilon=0.1)([1.0, 5.0, 2.0], [1.0, 2.0]) == 1.0

    def test_value_is_integer_like(self):
        value = EDR(epsilon=0.5)([0.0, 3.0, 9.0], [0.1, 7.0])
        assert value == int(value)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(DistanceError):
            EDR(epsilon=-1.0)

    def test_flags(self):
        distance = EDR()
        assert not distance.is_metric
        assert distance.is_consistent

    def test_repr(self):
        assert "epsilon" in repr(EDR(epsilon=0.25))


class TestLCSS:
    def test_identical_sequences_distance_zero(self):
        assert LCSS(epsilon=0.25)([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_completely_different_distance_one(self):
        assert LCSS(epsilon=0.1)([0.0, 0.0], [10.0, 10.0]) == 1.0

    def test_similarity_length(self):
        lcss = LCSS(epsilon=0.1)
        a = as_array([1.0, 2.0, 3.0, 4.0])
        b = as_array([2.0, 4.0])
        assert lcss.similarity_length(a, b) == 2

    def test_partial_overlap(self):
        lcss = LCSS(epsilon=0.1)
        value = lcss([1.0, 2.0, 9.0, 9.0], [1.0, 2.0])
        assert value == pytest.approx(0.0)  # both elements of the shorter match

    def test_distance_in_unit_interval(self, rng):
        lcss = LCSS(epsilon=0.5)
        for _ in range(20):
            a = rng.normal(size=rng.integers(2, 8))
            b = rng.normal(size=rng.integers(2, 8))
            value = lcss(a, b)
            assert 0.0 <= value <= 1.0

    def test_negative_epsilon_rejected(self):
        with pytest.raises(DistanceError):
            LCSS(epsilon=-0.5)

    def test_flags(self):
        assert not LCSS().is_metric
        assert not LCSS().is_consistent

    def test_repr(self):
        assert "epsilon" in repr(LCSS(epsilon=0.75))
