"""Tests for ERP (Edit distance with Real Penalty)."""

import numpy as np
import pytest

from repro import ERP, DistanceError, Sequence
from repro.distances.base import ElementMetric


class TestERPValues:
    def test_identical_sequences(self):
        assert ERP()([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_single_gap_costs_distance_to_gap_element(self):
        # [1,2,3] vs [1,3]: the unmatched 2 is charged |2 - 0| = 2.
        assert ERP()([1.0, 2.0, 3.0], [1.0, 3.0]) == pytest.approx(2.0)

    def test_substitution_vs_gap_tradeoff(self):
        # [5] vs [1]: matching costs 4, two gaps cost 5 + 1 = 6 -> match.
        assert ERP()([5.0], [1.0]) == pytest.approx(4.0)

    def test_empty_against_sequence_is_sum_to_gap(self):
        # Compare via two gaps: [3,4] vs [3,4,5] adds a gap for 5.
        assert ERP()([3.0, 4.0], [3.0, 4.0, 5.0]) == pytest.approx(5.0)

    def test_custom_gap_element(self):
        distance = ERP(gap=2.0)
        # Unmatched 2 now costs |2 - 2| = 0.
        assert distance([1.0, 2.0, 3.0], [1.0, 3.0]) == pytest.approx(0.0)

    def test_trajectory_gap_broadcast(self):
        a = Sequence.from_points([[0.0, 0.0], [3.0, 4.0]])
        b = Sequence.from_points([[0.0, 0.0]])
        assert ERP()(a, b) == pytest.approx(5.0)

    def test_explicit_vector_gap(self):
        distance = ERP(gap=[1.0, 1.0])
        a = Sequence.from_points([[1.0, 1.0], [2.0, 2.0]])
        b = Sequence.from_points([[2.0, 2.0]])
        assert distance(a, b) == pytest.approx(0.0)

    def test_gap_dimension_mismatch_rejected(self):
        distance = ERP(gap=[1.0, 2.0, 3.0])
        a = Sequence.from_points([[0.0, 0.0]])
        with pytest.raises(DistanceError):
            distance(a, a)

    def test_invalid_gap_shape_rejected(self):
        with pytest.raises(DistanceError):
            ERP(gap=np.zeros((2, 2)))


class TestERPProperties:
    def test_symmetry(self):
        distance = ERP()
        a = [0.0, 1.0, 4.0, 2.0]
        b = [1.0, 4.0, 4.0]
        assert distance(a, b) == pytest.approx(distance(b, a))

    def test_triangle_inequality_sampled(self, rng):
        distance = ERP()
        for _ in range(25):
            a = rng.normal(size=rng.integers(2, 6))
            b = rng.normal(size=rng.integers(2, 6))
            c = rng.normal(size=rng.integers(2, 6))
            assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-9

    def test_flags(self):
        distance = ERP()
        assert distance.is_metric and distance.is_consistent

    def test_lower_bound_valid(self, rng):
        distance = ERP()
        for _ in range(20):
            a = rng.normal(size=5)
            b = rng.normal(size=7)
            assert distance.lower_bound(a, b) <= distance(a, b) + 1e-9

    def test_alignment_cost_does_not_exceed_distance(self):
        distance = ERP()
        a = [0.0, 1.0, 2.0]
        b = [0.0, 2.0]
        alignment = distance.alignment(a, b)
        assert alignment.cost == pytest.approx(distance(a, b))

    def test_manhattan_element_metric(self):
        distance = ERP(element_metric=ElementMetric("manhattan"))
        a = Sequence.from_points([[1.0, 1.0]])
        b = Sequence.from_points([[2.0, 3.0]])
        assert distance(a, b) == pytest.approx(3.0)

    def test_repr(self):
        assert "gap" in repr(ERP())
