"""Tests for the declarative query API: execute(), QueryResult, spec routing.

The redesign's contract: the query spec dataclasses are the single source
of truth for what a query means, ``execute(spec)`` is the one entry point
every backend serves, the legacy methods are thin wrappers that route
through specs, and ``execute_many`` accepts heterogeneous query types.
"""

import numpy as np
import pytest

from repro import (
    DiscreteFrechet,
    LongestSubsequenceQuery,
    MatcherConfig,
    NearestSubsequenceQuery,
    QueryError,
    QueryResult,
    RangeQuery,
    Sequence,
    SequenceDatabase,
    SequenceKind,
    ShardedMatcher,
    SubsequenceMatcher,
    TopKQuery,
)
from repro.core.queries import BaseQuery, QueryStats, match_ranking_key


@pytest.fixture
def planted_db():
    """Three time series; the first two share an identical 24-point pattern."""
    generator = np.random.default_rng(11)
    pattern = np.cumsum(generator.normal(size=24))
    db = SequenceDatabase(SequenceKind.TIME_SERIES, name="planted")
    first = np.concatenate([generator.uniform(30, 40, 8), pattern, generator.uniform(30, 40, 8)])
    second = np.concatenate([generator.uniform(-40, -30, 14), pattern, generator.uniform(-40, -30, 2)])
    third = generator.uniform(80, 90, size=40)
    db.add(Sequence.from_values(first, seq_id="with-pattern-1"))
    db.add(Sequence.from_values(second, seq_id="with-pattern-2"))
    db.add(Sequence.from_values(third, seq_id="background"))
    return db


@pytest.fixture
def pattern_query(planted_db):
    source = planted_db["with-pattern-1"]
    return Sequence(np.asarray(source.values[8:32]) + 0.01, SequenceKind.TIME_SERIES, "query")


@pytest.fixture
def config():
    return MatcherConfig(min_length=12, max_shift=1)


@pytest.fixture
def matcher(planted_db, config):
    return SubsequenceMatcher(planted_db, DiscreteFrechet(), config)


def match_identities(matches):
    return [
        (m.source_id, m.query_start, m.query_stop, m.db_start, m.db_stop, m.distance)
        for m in matches
    ]


def work_counters(stats: QueryStats) -> dict:
    """The deterministic accounting of a QueryStats (timings excluded)."""
    return {
        "segments_extracted": stats.segments_extracted,
        "segment_matches": stats.segment_matches,
        "candidate_chains": stats.candidate_chains,
        "index_distance_computations": stats.index_distance_computations,
        "verification_distance_computations": stats.verification_distance_computations,
        "index_cache_hits": stats.index_cache_hits,
        "verification_cache_hits": stats.verification_cache_hits,
        "prefilter_evaluations": stats.prefilter_evaluations,
        "prefilter_pruned": stats.prefilter_pruned,
        "naive_distance_computations": stats.naive_distance_computations,
        "executor": stats.executor,
        "workers": stats.workers,
        "shards": stats.shards,
        "passes": [work_counters(p) for p in stats.passes],
    }


class TestSpecBinding:
    def test_bind_returns_new_bound_spec(self, pattern_query):
        template = RangeQuery(radius=1.0)
        bound = template.bind(pattern_query)
        assert template.query is None
        assert bound.query is pattern_query
        assert bound.radius == template.radius

    def test_execute_requires_bound_query(self, matcher):
        with pytest.raises(QueryError):
            matcher.execute(RangeQuery(radius=1.0))

    def test_unsupported_spec_rejected(self, matcher, pattern_query):
        with pytest.raises(QueryError):
            matcher.execute("not a spec")

    def test_describe_is_json_safe_echo(self, pattern_query):
        spec = TopKQuery(k=3, max_radius=5.0).bind(pattern_query)
        description = spec.describe()
        assert description["type"] == "topk"
        assert description["k"] == 3
        assert description["max_radius"] == 5.0
        assert "query" not in description


class TestExecuteMatchesLegacy:
    """execute() and the legacy wrappers are the same query, same accounting."""

    def test_range(self, planted_db, pattern_query, config):
        legacy = SubsequenceMatcher(planted_db, DiscreteFrechet(), config)
        declarative = SubsequenceMatcher(planted_db, DiscreteFrechet(), config)
        via_method = legacy.range_search(pattern_query, 0.5)
        result = declarative.execute(RangeQuery(radius=0.5).bind(pattern_query))
        assert match_identities(result.matches) == match_identities(via_method)
        assert work_counters(result.stats) == work_counters(legacy.last_query_stats)

    def test_longest(self, planted_db, pattern_query, config):
        legacy = SubsequenceMatcher(planted_db, DiscreteFrechet(), config)
        declarative = SubsequenceMatcher(planted_db, DiscreteFrechet(), config)
        via_method = legacy.longest_similar(pattern_query, 0.5)
        result = declarative.execute(LongestSubsequenceQuery(radius=0.5).bind(pattern_query))
        assert match_identities(result.matches) == match_identities([via_method])
        assert work_counters(result.stats) == work_counters(legacy.last_query_stats)

    def test_nearest(self, planted_db, pattern_query, config):
        legacy = SubsequenceMatcher(planted_db, DiscreteFrechet(), config)
        declarative = SubsequenceMatcher(planted_db, DiscreteFrechet(), config)
        via_method = legacy.nearest_subsequence(pattern_query, 10.0)
        result = declarative.execute(
            NearestSubsequenceQuery(max_radius=10.0).bind(pattern_query)
        )
        assert match_identities(result.matches) == match_identities([via_method])
        assert work_counters(result.stats) == work_counters(legacy.last_query_stats)

    def test_sharded_backends_serve_the_same_specs(self, planted_db, pattern_query, config):
        sharded = ShardedMatcher(planted_db, DiscreteFrechet(), config, shards=2)
        via_method = sharded.range_search(pattern_query, 0.5)
        result = sharded.execute(RangeQuery(radius=0.5).bind(pattern_query))
        assert match_identities(result.matches) == match_identities(via_method)


class TestLegacyEntryPointsRouteThroughSpecs:
    """Every public query entry point round-trips through a spec object."""

    @pytest.fixture
    def bind_spy(self, monkeypatch):
        seen = []
        original = BaseQuery.bind

        def spy(self, query):
            seen.append(type(self))
            return original(self, query)

        monkeypatch.setattr(BaseQuery, "bind", spy)
        return seen

    def test_plain_matcher_wrappers(self, matcher, pattern_query, bind_spy):
        matcher.range_search(pattern_query, 0.5)
        matcher.longest_similar(pattern_query, 0.5)
        matcher.nearest_subsequence(pattern_query, 10.0)
        matcher.topk_subsequences(pattern_query, 2, max_radius=10.0)
        matcher.batch_query([pattern_query], 0.5)
        assert bind_spy == [
            RangeQuery,
            LongestSubsequenceQuery,
            NearestSubsequenceQuery,
            TopKQuery,
            RangeQuery,
        ]

    def test_sharded_matcher_wrappers(self, planted_db, pattern_query, config, bind_spy):
        sharded = ShardedMatcher(planted_db, DiscreteFrechet(), config, shards=2)
        bind_spy.clear()  # construction does not query
        sharded.longest_similar(pattern_query, 0.5)
        assert LongestSubsequenceQuery in bind_spy
        bind_spy.clear()
        sharded.nearest_subsequence(pattern_query, 10.0)
        assert NearestSubsequenceQuery in bind_spy


class TestQueryResultEnvelope:
    def test_envelope_fields(self, matcher, pattern_query):
        spec = RangeQuery(radius=0.5).bind(pattern_query)
        result = matcher.execute(spec)
        assert isinstance(result, QueryResult)
        assert result.query is spec
        assert result.error is None
        assert result.total_matches == len(result.matches)
        assert result.stats is matcher.last_query_stats
        assert list(result) == result.matches
        assert len(result) == len(result.matches)
        assert bool(result) == bool(result.matches)

    def test_best_is_first_match_or_none(self, matcher, pattern_query):
        hit = matcher.execute(LongestSubsequenceQuery(radius=0.5).bind(pattern_query))
        assert hit.best is hit.matches[0]
        alien = Sequence.from_values(np.full(20, 500.0), seq_id="alien")
        miss = matcher.execute(LongestSubsequenceQuery(radius=0.5).bind(alien))
        assert miss.best is None and not miss

    def test_paging(self, matcher, pattern_query):
        full = matcher.execute(RangeQuery(radius=0.5).bind(pattern_query))
        assert full.total_matches >= 3  # the planted pattern yields several pairs
        paged = matcher.execute(
            RangeQuery(radius=0.5, limit=2, offset=1).bind(pattern_query)
        )
        assert paged.total_matches == full.total_matches
        assert match_identities(paged.matches) == match_identities(full.matches[1:3])

    def test_paging_validation(self):
        with pytest.raises(QueryError):
            RangeQuery(radius=1.0, limit=0)
        with pytest.raises(QueryError):
            RangeQuery(radius=1.0, offset=-1)

    def test_sharded_pages_after_the_merge(self, planted_db, pattern_query, config):
        sharded = ShardedMatcher(planted_db, DiscreteFrechet(), config, shards=2)
        full = sharded.execute(RangeQuery(radius=0.5).bind(pattern_query))
        paged = sharded.execute(
            RangeQuery(radius=0.5, limit=2, offset=1).bind(pattern_query)
        )
        assert match_identities(paged.matches) == match_identities(full.matches[1:3])


class TestExecuteMany:
    def test_heterogeneous_batch(self, matcher, pattern_query):
        specs = [
            RangeQuery(radius=0.5).bind(pattern_query),
            LongestSubsequenceQuery(radius=0.5).bind(pattern_query),
            TopKQuery(k=2, max_radius=10.0).bind(pattern_query),
        ]
        results = matcher.execute_many(specs)
        assert [r.query for r in results] == specs
        assert all(r.error is None for r in results)
        assert len(results[0].matches) >= 1
        assert len(results[1].matches) == 1
        assert len(results[2].matches) == 2
        assert len(matcher.last_batch_stats) == 3

    def test_non_spec_entry_propagates(self, matcher, pattern_query):
        """A batch entry that is not a spec at all is a programming error."""
        with pytest.raises(QueryError):
            matcher.execute_many([RangeQuery(radius=0.5).bind(pattern_query), "bogus"])

    def test_unbound_spec_gets_empty_stats_not_previous_querys(self, matcher, pattern_query):
        results = matcher.execute_many(
            [
                RangeQuery(radius=0.5).bind(pattern_query),
                RangeQuery(radius=5.0),  # unbound: fails before doing any work
            ]
        )
        assert results[1].error is not None
        assert results[1].stats is not results[0].stats
        assert results[1].stats.index_distance_computations == 0
        assert matcher.last_batch_stats[1] is results[1].stats

    def test_failed_sweep_keeps_its_own_stats(self, matcher):
        """A Type III query that fails mid-sweep reports the sweep's work."""
        alien = Sequence.from_values(np.full(20, 500.0), seq_id="alien")
        results = matcher.execute_many(
            [NearestSubsequenceQuery(max_radius=0.01).bind(alien)]
        )
        assert results[0].error is not None
        assert results[0].stats.segments_extracted > 0  # the probe that found nothing

    def test_failed_query_yields_error_envelope(self, matcher, pattern_query):
        alien = Sequence.from_values(np.full(20, 500.0), seq_id="alien")
        results = matcher.execute_many(
            [
                NearestSubsequenceQuery(max_radius=0.01).bind(alien),
                LongestSubsequenceQuery(radius=0.5).bind(pattern_query),
            ]
        )
        assert results[0].error is not None and "max_radius" in results[0].error
        assert results[0].matches == []
        assert results[1].error is None and results[1].best is not None

    def test_batch_query_wrapper_matches_execute_many(self, planted_db, pattern_query, config):
        legacy = SubsequenceMatcher(planted_db, DiscreteFrechet(), config)
        declarative = SubsequenceMatcher(planted_db, DiscreteFrechet(), config)
        queries = [pattern_query, Sequence.from_values(np.full(20, 500.0), seq_id="alien")]
        via_batch = legacy.batch_query(queries, LongestSubsequenceQuery(radius=0.5))
        via_many = declarative.execute_many(
            [LongestSubsequenceQuery(radius=0.5).bind(query) for query in queries]
        )
        assert [m and match_identities([m]) for m in via_batch] == [
            match_identities(r.matches) if r.matches else None for r in via_many
        ]


class TestRankingKey:
    def test_total_order_breaks_distance_ties(self):
        from repro import SubsequenceMatch

        shorter = SubsequenceMatch(1.0, "a", 0, 12, 0, 12)
        longer = SubsequenceMatch(1.0, "a", 0, 20, 0, 20)
        other_source = SubsequenceMatch(1.0, "b", 0, 20, 0, 20)
        ranked = sorted([other_source, shorter, longer], key=match_ranking_key)
        assert ranked == [longer, other_source, shorter]

    def test_distance_dominates(self):
        from repro import SubsequenceMatch

        near = SubsequenceMatch(0.5, "z", 0, 12, 0, 12)
        far = SubsequenceMatch(2.0, "a", 0, 40, 0, 40)
        assert match_ranking_key(near) < match_ranking_key(far)


class TestLegacyDeprecation:
    """The per-type wrappers still work but steer callers to execute()."""

    def test_range_search_warns(self, matcher, pattern_query):
        with pytest.warns(DeprecationWarning, match="range_search"):
            matcher.range_search(pattern_query, 0.5)

    def test_longest_similar_warns(self, matcher, pattern_query):
        with pytest.warns(DeprecationWarning, match="longest_similar"):
            matcher.longest_similar(pattern_query, 0.5)

    def test_nearest_subsequence_warns(self, matcher, pattern_query):
        with pytest.warns(DeprecationWarning, match="nearest_subsequence"):
            matcher.nearest_subsequence(pattern_query, 5.0)

    def test_execute_does_not_warn(self, matcher, pattern_query):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            matcher.execute(RangeQuery(radius=0.5).bind(pattern_query))
            matcher.execute(TopKQuery(k=1, max_radius=10.0).bind(pattern_query))
