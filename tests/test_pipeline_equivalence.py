"""Equivalence tests for the staged query-execution pipeline.

Three guarantees the refactor must preserve:

* ``batch_range_query`` returns exactly what per-query ``range_query`` calls
  return, on every index and distance pairing;
* the pipeline-backed matcher returns exactly what the pre-refactor
  orchestration (a per-segment loop over ``index.range_query`` followed by
  chaining and fallback verification) returned;
* lower-bound prefiltering never changes a result set.
"""

import numpy as np
import pytest

from repro import (
    DTW,
    DiscreteFrechet,
    ERP,
    Levenshtein,
    LongestSubsequenceQuery,
    MatcherConfig,
    NearestSubsequenceQuery,
    RangeQuery,
    Sequence,
    SequenceDatabase,
    SequenceKind,
    SubsequenceMatcher,
)
from repro.core.candidates import CandidateChain, chain_segment_matches
from repro.core.queries import SegmentMatch
from repro.core.segmentation import extract_query_segments
from repro.core.verification import _VerificationCounter, verify_chain
from repro.distances import shared_cache
from repro.indexing import (
    CoverTree,
    LinearScanIndex,
    ReferenceIndex,
    ReferenceNet,
    VPTree,
)

ALL_INDEXES = ["reference-net", "cover-tree", "reference-based", "vp-tree", "linear-scan"]


@pytest.fixture(scope="module")
def planted():
    """A small planted database, its query, and window sequences."""
    generator = np.random.default_rng(42)
    pattern = np.cumsum(generator.normal(size=24))
    db = SequenceDatabase(SequenceKind.TIME_SERIES, name="planted")
    first = np.concatenate(
        [generator.uniform(30, 40, 8), pattern, generator.uniform(30, 40, 8)]
    )
    second = np.concatenate(
        [generator.uniform(-40, -30, 14), pattern + 0.05, generator.uniform(-40, -30, 2)]
    )
    third = generator.uniform(60, 70, size=40)
    db.add(Sequence.from_values(first, seq_id="p1"))
    db.add(Sequence.from_values(second, seq_id="p2"))
    db.add(Sequence.from_values(third, seq_id="bg"))
    query = Sequence(np.asarray(first[8:32]) + 0.01, SequenceKind.TIME_SERIES, "query")
    return db, query


def _match_key(match):
    return (match.source_id, match.query_start, match.query_stop, match.db_start, match.db_stop)


def _legacy_query(matcher, query, radius, mode):
    """The pre-refactor orchestration: per-segment probes, chain, verify."""
    segments = extract_query_segments(query, matcher.config)
    seg_matches = []
    windows_by_key = {window.key: window for window in matcher.windows}
    for segment in segments:
        for hit in matcher.index.range_query(segment.sequence, radius):
            window = windows_by_key[hit.key]
            seg_matches.append(
                SegmentMatch(
                    query_start=segment.start,
                    query_length=segment.length,
                    window=window,
                    distance=hit.distance,
                )
            )
    chains = chain_segment_matches(seg_matches, matcher.config)
    counter = _VerificationCounter()

    def verify_fallback(chain):
        verified = verify_chain(
            chain,
            query,
            matcher.database[chain.source_id],
            matcher.distance,
            radius,
            matcher.config,
            counter,
            cache=matcher.distance_cache,
        )
        if verified is not None or chain.window_count == 1:
            return verified
        middle = chain.window_count // 2
        best = None
        for half in (
            CandidateChain(chain.source_id, chain.matches[:middle]),
            CandidateChain(chain.source_id, chain.matches[middle:]),
        ):
            candidate = verify_fallback(half)
            if candidate is None:
                continue
            if (
                best is None
                or candidate.length > best.length
                or (candidate.length == best.length and candidate.distance < best.distance)
            ):
                best = candidate
        return best

    if mode == "range":
        results, seen = [], set()
        for chain in chains:
            verified = verify_fallback(chain)
            if verified is None:
                continue
            key = _match_key(verified)
            if key not in seen:
                seen.add(key)
                results.append(verified)
        return results
    best = None
    for chain in chains:
        potential = (chain.window_count + 2) * matcher.config.window_length
        if best is not None and potential <= best.length:
            break
        verified = verify_fallback(chain)
        if verified is None:
            continue
        if (
            best is None
            or verified.length > best.length
            or (verified.length == best.length and verified.distance < best.distance)
        ):
            best = verified
    return best


class TestBatchRangeQueryEquivalence:
    @pytest.mark.parametrize(
        "make_index",
        [
            lambda d: LinearScanIndex(d),
            lambda d: LinearScanIndex(d, prefilter=True),
            lambda d: ReferenceIndex(d, num_references=4),
            lambda d: ReferenceNet(d),
            lambda d: CoverTree(d),
            lambda d: VPTree(d),
        ],
        ids=["linear-scan", "linear-scan+prefilter", "reference-based", "reference-net",
             "cover-tree", "vp-tree"],
    )
    @pytest.mark.parametrize("distance", [DiscreteFrechet(), ERP()], ids=lambda d: d.name)
    def test_batch_equals_per_query(self, make_index, distance):
        generator = np.random.default_rng(5)
        index = make_index(distance)
        items = [
            Sequence.from_values(generator.normal(size=8), seq_id=f"w{i}") for i in range(50)
        ]
        for position, item in enumerate(items):
            index.add(item, key=position)
        if isinstance(index, (ReferenceIndex, VPTree)):
            index.build()
        queries = [
            Sequence.from_values(generator.normal(size=8), seq_id=f"q{i}") for i in range(5)
        ]
        radius = 1.5 if distance.name == "frechet" else 6.0
        singles = [index.range_query(query, radius) for query in queries]
        batches = index.batch_range_query(queries, radius)
        for single, batch in zip(singles, batches):
            assert sorted(m.key for m in single) == sorted(m.key for m in batch)
            single_distances = {m.key: m.distance for m in single}
            for match in batch:
                reference = single_distances[match.key]
                if reference is not None and match.distance is not None:
                    assert match.distance == pytest.approx(reference, abs=1e-9)

    def test_non_metric_distances_on_linear_scan(self):
        generator = np.random.default_rng(6)
        for distance in (DTW(),):
            index = LinearScanIndex(distance, prefilter=True)
            for position in range(40):
                index.add(
                    Sequence.from_values(generator.normal(size=10), seq_id=f"w{position}"),
                    key=position,
                )
            query = Sequence.from_values(generator.normal(size=10), seq_id="q")
            single = index.range_query(query, 4.0)
            batch = index.batch_range_query([query], 4.0)[0]
            assert sorted(m.key for m in single) == sorted(m.key for m in batch)


class TestPipelineMatchesLegacyOrchestration:
    @pytest.mark.parametrize("index_name", ALL_INDEXES)
    def test_range_search(self, planted, index_name):
        db, query = planted
        config = MatcherConfig(min_length=12, max_shift=1, index=index_name)
        matcher = SubsequenceMatcher(db, DiscreteFrechet(), config)
        expected = _legacy_query(matcher, query, 0.5, "range")
        actual = matcher.range_search(query, RangeQuery(radius=0.5))
        assert sorted(map(_match_key, actual)) == sorted(map(_match_key, expected))

    @pytest.mark.parametrize("index_name", ALL_INDEXES)
    def test_longest_similar(self, planted, index_name):
        db, query = planted
        config = MatcherConfig(min_length=12, max_shift=1, index=index_name)
        matcher = SubsequenceMatcher(db, DiscreteFrechet(), config)
        expected = _legacy_query(matcher, query, 0.5, "longest")
        actual = matcher.longest_similar(query, 0.5)
        assert (actual is None) == (expected is None)
        if actual is not None:
            assert _match_key(actual) == _match_key(expected)

    def test_levenshtein_matcher(self, string_database):
        config = MatcherConfig(min_length=8, max_shift=1, index="linear-scan")
        matcher = SubsequenceMatcher(string_database, Levenshtein(), config)
        query = Sequence.from_string("ACDEFGHIKL", string_database["s1"].alphabet)
        expected = _legacy_query(matcher, query, 2.0, "longest")
        actual = matcher.longest_similar(query, 2.0)
        assert _match_key(actual) == _match_key(expected)

    def test_prefilter_does_not_change_matcher_results(self, planted):
        db, query = planted
        base = MatcherConfig(min_length=12, max_shift=1, index="linear-scan")
        with_pf = SubsequenceMatcher(db, DiscreteFrechet(), base)
        without_pf = SubsequenceMatcher(
            db,
            DiscreteFrechet(),
            MatcherConfig(min_length=12, max_shift=1, index="linear-scan", prefilter=False),
        )
        got = with_pf.range_search(query, 0.5)
        want = without_pf.range_search(query, 0.5)
        assert sorted(map(_match_key, got)) == sorted(map(_match_key, want))
        assert with_pf.last_query_stats.prefilter_evaluations > 0
        assert without_pf.last_query_stats.prefilter_evaluations == 0


class TestQueryStatsPipeline:
    def test_stage_timings_recorded(self, planted):
        db, query = planted
        matcher = SubsequenceMatcher(
            db, DiscreteFrechet(), MatcherConfig(min_length=12, max_shift=1)
        )
        matcher.range_search(query, 0.5)
        stats = matcher.last_query_stats
        for stage in ("segment", "probe", "chain", "verify"):
            assert stage in stats.stage_timings
            assert stats.stage_timings[stage] >= 0.0

    def test_type_iii_pass_history(self, planted):
        db, query = planted
        matcher = SubsequenceMatcher(
            db, DiscreteFrechet(), MatcherConfig(min_length=12, max_shift=1)
        )
        best = matcher.nearest_subsequence(query, NearestSubsequenceQuery(max_radius=10.0))
        assert best is not None
        stats = matcher.last_query_stats
        assert len(stats.passes) > 1
        # Work counters aggregate over passes; shape counters are final-pass.
        final = stats.passes[-1]
        assert stats.candidate_chains == final.candidate_chains
        assert stats.segment_matches == final.segment_matches
        assert stats.index_distance_computations == sum(
            p.index_distance_computations for p in stats.passes
        )
        # Aggregated work must cover at least the final pass's work.
        assert stats.index_distance_computations >= final.index_distance_computations

    def test_segment_memo_reused_across_passes(self, planted):
        db, query = planted
        matcher = SubsequenceMatcher(
            db, DiscreteFrechet(), MatcherConfig(min_length=12, max_shift=1)
        )
        pipeline = matcher.pipeline
        first = pipeline.segments_for(query)
        second = pipeline.segments_for(query)
        assert first is second


class TestBatchQueryAndSharedCache:
    def test_batch_query_matches_individual_queries(self, planted):
        db, query = planted
        matcher = SubsequenceMatcher(
            db, DiscreteFrechet(), MatcherConfig(min_length=12, max_shift=1)
        )
        other = Sequence.from_values(np.asarray(db["p2"].values[14:38]) + 0.01, seq_id="q2")
        spec = LongestSubsequenceQuery(radius=0.5)
        batch_results = matcher.batch_query([query, other], spec)
        assert len(batch_results) == 2
        assert len(matcher.last_batch_stats) == 2
        individual = [matcher.longest_similar(query, spec), matcher.longest_similar(other, spec)]
        for got, want in zip(batch_results, individual):
            assert (got is None) == (want is None)
            if got is not None:
                assert _match_key(got) == _match_key(want)

    def test_batch_query_survives_per_query_failure(self, planted):
        db, query = planted
        matcher = SubsequenceMatcher(
            db, DiscreteFrechet(), MatcherConfig(min_length=12, max_shift=1)
        )
        alien = Sequence.from_values(np.full(20, 500.0), seq_id="alien")
        results = matcher.batch_query(
            [query, alien], NearestSubsequenceQuery(max_radius=1.0)
        )
        # The alien query has no segment match at max_radius (QueryError in
        # the single-query method); the batch keeps going and reports None.
        assert len(results) == 2
        assert results[1] is None
        assert len(matcher.last_batch_stats) == 2

    def test_batch_query_range_spec_from_float(self, planted):
        db, query = planted
        matcher = SubsequenceMatcher(
            db, DiscreteFrechet(), MatcherConfig(min_length=12, max_shift=1)
        )
        results = matcher.batch_query([query], 0.5)
        assert isinstance(results[0], list)

    def test_shared_cache_across_matchers(self, planted):
        db, query = planted
        cache = shared_cache("test-frechet-equivalence")
        config = MatcherConfig(min_length=12, max_shift=1)
        first = SubsequenceMatcher(db, DiscreteFrechet(), config, cache=cache)
        first.longest_similar(query, 0.5)
        entries_after_first = len(cache)
        assert entries_after_first > 0
        second = SubsequenceMatcher(db, DiscreteFrechet(), config, cache=cache)
        # The shared cache survives the second matcher's construction...
        assert len(cache) >= entries_after_first
        second.longest_similar(query, 0.5)
        # ...and answers its probes: the second matcher computes fewer
        # fresh distances than the first did.
        assert (
            second.last_query_stats.total_cache_hits
            >= first.last_query_stats.total_cache_hits
        )
        result_first = first.longest_similar(query, 0.5)
        result_second = second.longest_similar(query, 0.5)
        assert _match_key(result_first) == _match_key(result_second)

    def test_refresh_preserves_shared_cache(self, planted):
        db, _ = planted
        cache = shared_cache("test-refresh-preserved")
        config = MatcherConfig(min_length=12, max_shift=1)
        matcher = SubsequenceMatcher(db, DiscreteFrechet(), config, cache=cache)
        cache_len = len(cache)
        matcher.refresh()
        assert len(cache) >= cache_len


# --------------------------------------------------------------------- #
# Executor equivalence: thread/process x index class x query type
# --------------------------------------------------------------------- #

#: Every counter that must be identical between executors.  Timings are
#: excluded (they measure the substrate, not the work), as are executor /
#: workers (they describe the substrate).
WORK_COUNTERS = (
    "segments_extracted",
    "segment_matches",
    "candidate_chains",
    "naive_distance_computations",
    "index_distance_computations",
    "index_cache_hits",
    "verification_distance_computations",
    "verification_cache_hits",
    "prefilter_evaluations",
    "prefilter_pruned",
)


def _stats_fingerprint(stats):
    return {name: getattr(stats, name) for name in WORK_COUNTERS}


def _full_match_key(match):
    if match is None:
        return None
    return (*_match_key(match), match.distance)


class TestExecutorEquivalence:
    """Parallel executors must be *undetectable* from results and counters.

    For every index class and every query type, the thread and process
    executors must return byte-identical matches and identical merged work
    counters to a serial matcher over the same database -- the acceptance
    contract of the parallel execution engine.
    """

    @pytest.mark.parametrize("executor", ["thread", "process"])
    @pytest.mark.parametrize("index_name", ALL_INDEXES)
    def test_all_query_types_match_serial(self, planted, index_name, executor):
        db, query = planted
        serial = SubsequenceMatcher(
            db,
            DiscreteFrechet(),
            MatcherConfig(min_length=12, max_shift=1, index=index_name, executor="serial"),
        )
        parallel = SubsequenceMatcher(
            db,
            DiscreteFrechet(),
            MatcherConfig(
                min_length=12,
                max_shift=1,
                index=index_name,
                executor=executor,
                workers=4,
            ),
        )
        assert parallel.pipeline.executor.name == executor

        # Type I: identical match lists, in the same order.
        serial_range = serial.range_search(query, RangeQuery(radius=0.5))
        parallel_range = parallel.range_search(query, RangeQuery(radius=0.5))
        assert list(map(_full_match_key, parallel_range)) == list(
            map(_full_match_key, serial_range)
        )
        assert _stats_fingerprint(parallel.last_query_stats) == _stats_fingerprint(
            serial.last_query_stats
        )

        # Type II.
        serial_longest = serial.longest_similar(query, 0.5)
        parallel_longest = parallel.longest_similar(query, 0.5)
        assert _full_match_key(parallel_longest) == _full_match_key(serial_longest)
        assert _stats_fingerprint(parallel.last_query_stats) == _stats_fingerprint(
            serial.last_query_stats
        )

        # Type III: the whole radius sweep, pass history included.
        spec = NearestSubsequenceQuery(max_radius=10.0)
        serial_nearest = serial.nearest_subsequence(query, spec)
        parallel_nearest = parallel.nearest_subsequence(query, spec)
        assert _full_match_key(parallel_nearest) == _full_match_key(serial_nearest)
        assert _stats_fingerprint(parallel.last_query_stats) == _stats_fingerprint(
            serial.last_query_stats
        )
        assert len(parallel.last_query_stats.passes) == len(
            serial.last_query_stats.passes
        )
        for serial_pass, parallel_pass in zip(
            serial.last_query_stats.passes, parallel.last_query_stats.passes
        ):
            assert _stats_fingerprint(parallel_pass) == _stats_fingerprint(serial_pass)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_string_matcher_with_prefilter(self, string_database, executor):
        """Levenshtein + linear scan exercises the prefilter recording path."""
        config = dict(min_length=8, max_shift=1, index="linear-scan")
        serial = SubsequenceMatcher(
            string_database, Levenshtein(), MatcherConfig(executor="serial", **config)
        )
        parallel = SubsequenceMatcher(
            string_database,
            Levenshtein(),
            MatcherConfig(executor=executor, workers=4, **config),
        )
        query = Sequence.from_string("ACDEFGHIKL", string_database["s1"].alphabet)
        serial_result = serial.longest_similar(query, 2.0)
        parallel_result = parallel.longest_similar(query, 2.0)
        assert _full_match_key(parallel_result) == _full_match_key(serial_result)
        assert _stats_fingerprint(parallel.last_query_stats) == _stats_fingerprint(
            serial.last_query_stats
        )
        assert serial.last_query_stats.prefilter_evaluations > 0

    def test_parallel_batch_range_query_on_bare_indexes(self, planted):
        """The index-level batched entry point honours the executor too."""
        from repro.core.executor import make_executor

        db, _ = planted
        generator = np.random.default_rng(11)
        items = [
            Sequence.from_values(generator.normal(size=8), seq_id=f"w{i}")
            for i in range(40)
        ]
        queries = [
            Sequence.from_values(generator.normal(size=8), seq_id=f"q{i}")
            for i in range(6)
        ]
        from repro.distances.cache import DistanceCache

        executor = make_executor("thread", 4)
        for make_index in (
            lambda d: LinearScanIndex(d, prefilter=True, cache=DistanceCache()),
            lambda d: ReferenceNet(d, cache=DistanceCache()),
            lambda d: CoverTree(d),
            lambda d: VPTree(d),
            lambda d: ReferenceIndex(d, num_references=4),
        ):
            serial_index = make_index(DiscreteFrechet())
            parallel_index = make_index(DiscreteFrechet())
            for position, item in enumerate(items):
                serial_index.add(item, key=position)
                parallel_index.add(item, key=position)
            if isinstance(serial_index, (ReferenceIndex, VPTree)):
                serial_index.build()
                parallel_index.build()
            serial_results = serial_index.batch_range_query(queries, 1.5)
            parallel_results = parallel_index.batch_range_query(
                queries, 1.5, executor=executor
            )
            for serial_matches, parallel_matches in zip(serial_results, parallel_results):
                assert [(m.key, m.distance) for m in parallel_matches] == [
                    (m.key, m.distance) for m in serial_matches
                ]
            assert parallel_index.counter.total == serial_index.counter.total
            assert parallel_index.counter.cache_hits == serial_index.counter.cache_hits
            assert (
                parallel_index.counter.prefilter_evaluations
                == serial_index.counter.prefilter_evaluations
            )

    @pytest.mark.parametrize("log_format", ["columnar", "object"])
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_log_formats_match_serial(self, planted, executor, log_format):
        """Both record/replay encodings reproduce the serial accounting."""
        db, query = planted
        serial = SubsequenceMatcher(
            db,
            DiscreteFrechet(),
            MatcherConfig(
                min_length=12, max_shift=1, index="linear-scan", executor="serial"
            ),
        )
        parallel = SubsequenceMatcher(
            db,
            DiscreteFrechet(),
            MatcherConfig(
                min_length=12,
                max_shift=1,
                index="linear-scan",
                executor=executor,
                workers=4,
                log_format=log_format,
            ),
        )
        serial_range = serial.range_search(query, RangeQuery(radius=0.5))
        parallel_range = parallel.range_search(query, RangeQuery(radius=0.5))
        assert list(map(_full_match_key, parallel_range)) == list(
            map(_full_match_key, serial_range)
        )
        assert _stats_fingerprint(parallel.last_query_stats) == _stats_fingerprint(
            serial.last_query_stats
        )

    @pytest.mark.parametrize("transport", ["pickle", "auto", "shared"])
    def test_process_transports_match_serial(self, planted, transport):
        """The payload transport never leaks into results or counters."""
        db, query = planted
        serial = SubsequenceMatcher(
            db,
            DiscreteFrechet(),
            MatcherConfig(
                min_length=12, max_shift=1, index="linear-scan", executor="serial"
            ),
        )
        parallel = SubsequenceMatcher(
            db,
            DiscreteFrechet(),
            MatcherConfig(
                min_length=12,
                max_shift=1,
                index="linear-scan",
                executor="process",
                workers=4,
                transport=transport,
            ),
        )
        try:
            serial_range = serial.range_search(query, RangeQuery(radius=0.5))
            parallel_range = parallel.range_search(query, RangeQuery(radius=0.5))
            assert list(map(_full_match_key, parallel_range)) == list(
                map(_full_match_key, serial_range)
            )
            assert _stats_fingerprint(parallel.last_query_stats) == _stats_fingerprint(
                serial.last_query_stats
            )
        finally:
            parallel.close()

    def test_executor_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        assert MatcherConfig(min_length=12).executor == "thread"
        monkeypatch.delenv("REPRO_EXECUTOR")
        assert MatcherConfig(min_length=12).executor == "serial"

    def test_cpu_and_wall_stage_timings_recorded(self, planted):
        db, query = planted
        matcher = SubsequenceMatcher(
            db,
            DiscreteFrechet(),
            MatcherConfig(min_length=12, max_shift=1, executor="thread", workers=2),
        )
        matcher.range_search(query, 0.5)
        stats = matcher.last_query_stats
        assert stats.executor == "thread"
        assert stats.workers == 2
        for stage in ("segment", "probe", "chain", "verify"):
            assert stage in stats.stage_timings
            assert stage in stats.cpu_stage_timings
            assert stats.cpu_stage_timings[stage] >= 0.0


# --------------------------------------------------------------------- #
# Kernel-backend equivalence: compiled tiers x executors vs the oracle
# --------------------------------------------------------------------- #


def _available_compiled_kernels():
    """Concrete compiled providers usable on this machine (pyloop always)."""
    from repro.distances.compiled import make_provider

    names = ["pyloop"]
    for name in ("cc", "numba"):
        try:
            make_provider(name)
        except Exception:
            continue
        names.append(name)
    return names


class TestKernelBackendEquivalence:
    """Compiled kernels must be *undetectable* from results and counters.

    The same contract the executors honour, along the other axis: for every
    available compiled provider and for both the serial and the thread
    executor, matches AND work counters must be identical to the NumPy
    matcher -- the kernel knob may only change speed (and the
    ``kernel_backend`` label on the stats).
    """

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    @pytest.mark.parametrize("kernel", _available_compiled_kernels())
    def test_all_query_types_match_numpy(self, planted, kernel, executor):
        db, query = planted
        def make(kern, execu):
            return SubsequenceMatcher(
                db,
                DiscreteFrechet(),
                MatcherConfig(
                    min_length=12,
                    max_shift=1,
                    index="linear-scan",
                    kernel=kern,
                    executor=execu,
                    workers=4 if execu != "serial" else None,
                ),
            )
        oracle = make("numpy", "serial")
        subject = make(kernel, executor)

        serial_range = oracle.range_search(query, RangeQuery(radius=0.5))
        subject_range = subject.range_search(query, RangeQuery(radius=0.5))
        assert list(map(_full_match_key, subject_range)) == list(
            map(_full_match_key, serial_range)
        )
        assert _stats_fingerprint(subject.last_query_stats) == _stats_fingerprint(
            oracle.last_query_stats
        )
        assert subject.last_query_stats.kernel_backend == kernel
        assert oracle.last_query_stats.kernel_backend == "numpy"

        serial_longest = oracle.longest_similar(query, 0.5)
        subject_longest = subject.longest_similar(query, 0.5)
        assert _full_match_key(subject_longest) == _full_match_key(serial_longest)
        assert _stats_fingerprint(subject.last_query_stats) == _stats_fingerprint(
            oracle.last_query_stats
        )

        spec = NearestSubsequenceQuery(max_radius=10.0)
        serial_nearest = oracle.nearest_subsequence(query, spec)
        subject_nearest = subject.nearest_subsequence(query, spec)
        assert _full_match_key(subject_nearest) == _full_match_key(serial_nearest)
        assert _stats_fingerprint(subject.last_query_stats) == _stats_fingerprint(
            oracle.last_query_stats
        )
        for oracle_pass, subject_pass in zip(
            oracle.last_query_stats.passes, subject.last_query_stats.passes
        ):
            assert _stats_fingerprint(subject_pass) == _stats_fingerprint(oracle_pass)

    @pytest.mark.parametrize("kernel", _available_compiled_kernels())
    def test_string_matcher_with_prefilter(self, string_database, kernel):
        """Levenshtein + prefilter: the edit kernels and the bounds interact."""
        config = dict(min_length=8, max_shift=1, index="linear-scan")
        oracle = SubsequenceMatcher(
            string_database, Levenshtein(), MatcherConfig(kernel="numpy", **config)
        )
        subject = SubsequenceMatcher(
            string_database, Levenshtein(), MatcherConfig(kernel=kernel, **config)
        )
        query = Sequence.from_string("ACDEFGHIKL", string_database["s1"].alphabet)
        oracle_result = oracle.longest_similar(query, 2.0)
        subject_result = subject.longest_similar(query, 2.0)
        assert _full_match_key(subject_result) == _full_match_key(oracle_result)
        assert _stats_fingerprint(subject.last_query_stats) == _stats_fingerprint(
            oracle.last_query_stats
        )
        assert subject.last_query_stats.prefilter_evaluations > 0

    def test_set_kernel_switches_live_matcher(self, planted):
        db, query = planted
        matcher = SubsequenceMatcher(
            db,
            DiscreteFrechet(),
            MatcherConfig(min_length=12, max_shift=1, index="linear-scan", kernel="numpy"),
        )
        matcher.range_search(query, RangeQuery(radius=0.5))
        assert matcher.last_query_stats.kernel_backend == "numpy"
        matcher.set_kernel("pyloop")
        matcher.range_search(query, RangeQuery(radius=0.5))
        assert matcher.last_query_stats.kernel_backend == "pyloop"
