"""Columnar vs object record/replay equivalence.

The recording layer keeps two request-log formats (see
:mod:`repro.distances.recording`): the original one-tuple-per-request
``"object"`` log and the preallocated-numpy ``"columnar"`` log.  The object
format is the executable reference semantics; these tests drive random
request streams -- plain calls, bounded calls, batched probes, verify-cache
lookup/store sequences -- through both formats against identical base
caches and assert that the returned values, the replayed counter tallies,
and the resulting cache content (including insertion/eviction order on a
bounded cache) are indistinguishable.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DiscreteFrechet, Sequence
from repro.core.verification import _VerificationCounter
from repro.distances.cache import DistanceCache
from repro.distances.recording import (
    LOG_FORMATS,
    RecordingCounting,
    RecordingVerifyCache,
    default_log_format,
)
from repro.indexing.stats import CountingDistance, DistanceCounter

#: A small operand pool: repeats across requests are what make cache hits,
#: no-downgrade upgrades, and evictions actually happen in the streams.
_POOL_SIZE = 6


def _make_pool():
    generator = np.random.default_rng(7)
    pool = [
        Sequence.from_values(generator.normal(size=5), seq_id=f"s{i}")
        for i in range(_POOL_SIZE)
    ]
    # One raw array: not cacheable, exercises the kind=0 log rows.
    raw = generator.normal(size=5)
    return pool, raw


_SEQUENCES, _RAW = _make_pool()

#: One recorded request: ("call", i, j) | ("bounded", i, j, cutoff) |
#: ("batch", i, [j...], cutoff_or_None).  Indexes < 0 pick the raw array.
_request = st.one_of(
    st.tuples(
        st.just("call"),
        st.integers(-1, _POOL_SIZE - 1),
        st.integers(-1, _POOL_SIZE - 1),
    ),
    st.tuples(
        st.just("bounded"),
        st.integers(-1, _POOL_SIZE - 1),
        st.integers(-1, _POOL_SIZE - 1),
        st.floats(0.1, 5.0),
    ),
    st.tuples(
        st.just("batch"),
        st.integers(0, _POOL_SIZE - 1),
        st.lists(st.integers(0, _POOL_SIZE - 1), min_size=1, max_size=5),
        st.one_of(st.none(), st.floats(0.1, 5.0)),
    ),
)


def _operand(index):
    return _RAW if index < 0 else _SEQUENCES[index]


def _cache_fingerprint(cache):
    return [
        (first.seq_id, second.seq_id, value, exact)
        for first, second, value, exact in cache.iter_entries()
    ]


def _counter_fingerprint(counter):
    return (
        counter.total,
        counter.cache_hits,
        counter.prefilter_evaluations,
        counter.prefilter_pruned,
    )


def _drive_probe(requests, log_format, prefilter, max_entries, warm):
    """Record ``requests``, replay, return (values, counters, cache state)."""
    base = DistanceCache(max_entries=max_entries)
    if warm:
        base.seed(_SEQUENCES[0], _SEQUENCES[1], 0.25)
    recorder = RecordingCounting(
        DiscreteFrechet(), base, prefilter=prefilter, log_format=log_format
    )
    returned = []
    for request in requests:
        if request[0] == "call":
            returned.append(recorder(_operand(request[1]), _operand(request[2])))
        elif request[0] == "bounded":
            returned.append(
                recorder.bounded(_operand(request[1]), _operand(request[2]), request[3])
            )
        else:
            _kind, query_index, item_indexes, cutoff = request
            values = recorder.batch(
                _operand(query_index),
                [_operand(i) for i in item_indexes],
                cutoff=cutoff,
            )
            returned.extend(float(v) for v in values)
    live = CountingDistance(
        DiscreteFrechet(), DistanceCounter(), cache=base, prefilter=prefilter
    )
    recorder.replay_into(live)
    return returned, _counter_fingerprint(live.counter), _cache_fingerprint(base)


class TestProbeLogEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        requests=st.lists(_request, max_size=25),
        prefilter=st.booleans(),
        max_entries=st.one_of(st.none(), st.integers(2, 10)),
        warm=st.booleans(),
    )
    def test_columnar_matches_object_replay(
        self, requests, prefilter, max_entries, warm
    ):
        outcomes = {
            log_format: _drive_probe(requests, log_format, prefilter, max_entries, warm)
            for log_format in LOG_FORMATS
        }
        columnar, reference = outcomes["columnar"], outcomes["object"]
        assert columnar[0] == reference[0]  # returned values
        assert columnar[1] == reference[1]  # counter tallies
        assert columnar[2] == reference[2]  # cache content + order

    def test_replay_is_idempotent_per_recorder(self):
        # One recorder, one replay: the counter sees exactly the recorded
        # work, and a second independent recorder over the now-warm cache
        # classifies everything as hits.
        base = DistanceCache()
        first = RecordingCounting(DiscreteFrechet(), base, log_format="columnar")
        first(_SEQUENCES[0], _SEQUENCES[1])
        first.bounded(_SEQUENCES[0], _SEQUENCES[2], 2.0)
        live = CountingDistance(DiscreteFrechet(), DistanceCounter(), cache=base)
        first.replay_into(live)
        assert live.counter.total == 2
        assert live.counter.cache_hits == 0
        second = RecordingCounting(DiscreteFrechet(), base, log_format="columnar")
        second(_SEQUENCES[0], _SEQUENCES[1])
        second.bounded(_SEQUENCES[0], _SEQUENCES[2], 2.0)
        second.replay_into(live)
        assert live.counter.total == 2
        assert live.counter.cache_hits == 2


def _drive_verify(requests, log_format, max_entries):
    base = DistanceCache(max_entries=max_entries)
    recorder = RecordingVerifyCache(base, log_format=log_format)
    returned = []
    for first_index, second_index, cutoff, value in requests:
        first, second = _SEQUENCES[first_index], _SEQUENCES[second_index]
        cached = recorder.lookup(first, second, cutoff=cutoff)
        returned.append(cached)
        if cached is None:
            recorder.store(first, second, value, cutoff=cutoff)
    counter = _VerificationCounter()
    recorder.replay_into(base, counter)
    return returned, (counter.count, counter.cache_hits), _cache_fingerprint(base)


class TestVerifyLogEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        requests=st.lists(
            st.tuples(
                st.integers(0, _POOL_SIZE - 1),
                st.integers(0, _POOL_SIZE - 1),
                st.one_of(st.none(), st.floats(0.1, 5.0)),
                st.floats(0.0, 10.0),
            ),
            max_size=30,
        ),
        max_entries=st.one_of(st.none(), st.integers(2, 8)),
    )
    def test_columnar_matches_object_replay(self, requests, max_entries):
        outcomes = {
            log_format: _drive_verify(requests, log_format, max_entries)
            for log_format in LOG_FORMATS
        }
        assert outcomes["columnar"] == outcomes["object"]


class TestLogFormatSelection:
    def test_default_is_columnar(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG_FORMAT", raising=False)
        assert default_log_format() == "columnar"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_FORMAT", "object")
        assert default_log_format() == "object"
        assert RecordingCounting(DiscreteFrechet(), None).log is not None

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_FORMAT", "parquet")
        with pytest.raises(ValueError):
            default_log_format()

    def test_bad_explicit_format_rejected(self):
        with pytest.raises(ValueError):
            RecordingCounting(DiscreteFrechet(), None, log_format="binary")
