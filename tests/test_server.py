"""Tests for the HTTP service (``repro.server``).

Two harnesses drive the same :class:`SearchApp`:

* an in-process ASGI call (no socket) for endpoint semantics and error
  paths, and
* :class:`BackgroundServer` -- the real stdlib HTTP server on a real
  socket -- for the wire-parity and concurrency guarantees.

The load-bearing claims: ``POST /search`` is byte-identical to the
in-process ``result_envelope(service.execute(spec), ...)`` for every query
type on plain, sharded, and snapshot backends (and ``repro search --json``
emits exactly that envelope -- see ``test_cli.py``), and the server admits
>= 8 concurrent queries whose answers match a serial run byte for byte.
"""

import asyncio
import json
import os
import threading

import numpy as np
import pytest

from repro import (
    DiscreteFrechet,
    LongestSubsequenceQuery,
    MatcherConfig,
    NearestSubsequenceQuery,
    RangeQuery,
    SearchService,
    Sequence,
    SequenceDatabase,
    SequenceKind,
    ShardedMatcher,
    SubsequenceMatcher,
    TopKQuery,
    canonical_json,
    result_envelope,
    save_matcher,
    sequence_to_wire,
)
from repro.server import BackgroundServer, SearchApp, ServerMetrics


@pytest.fixture
def planted_db():
    generator = np.random.default_rng(11)
    pattern = np.cumsum(generator.normal(size=24))
    db = SequenceDatabase(SequenceKind.TIME_SERIES, name="planted")
    first = np.concatenate([generator.uniform(30, 40, 8), pattern, generator.uniform(30, 40, 8)])
    second = np.concatenate([generator.uniform(-40, -30, 14), pattern, generator.uniform(-40, -30, 2)])
    third = generator.uniform(80, 90, size=40)
    db.add(Sequence.from_values(first, seq_id="with-pattern-1"))
    db.add(Sequence.from_values(second, seq_id="with-pattern-2"))
    db.add(Sequence.from_values(third, seq_id="background"))
    return db


@pytest.fixture
def pattern_query(planted_db):
    source = planted_db["with-pattern-1"]
    return Sequence(np.asarray(source.values[8:32]) + 0.01, SequenceKind.TIME_SERIES, "query")


@pytest.fixture
def config():
    return MatcherConfig(min_length=12, max_shift=1)


ALL_SPECS = [
    RangeQuery(radius=0.5),
    LongestSubsequenceQuery(radius=0.5),
    NearestSubsequenceQuery(max_radius=10.0),
    TopKQuery(k=3, max_radius=10.0),
]

TOPK = TopKQuery(k=3, max_radius=10.0)


def make_service(planted_db, config, backend: str, tmp_path=None) -> SearchService:
    """A FRESH service per call -- parity tests must never share caches."""
    if backend == "plain":
        return SearchService(SubsequenceMatcher(planted_db, DiscreteFrechet(), config))
    if backend == "sharded":
        return SearchService(
            ShardedMatcher(planted_db, DiscreteFrechet(), config, shards=2)
        )
    if backend == "snapshot":
        path = tmp_path / "matcher.npz"
        if not path.exists():
            save_matcher(SubsequenceMatcher(planted_db, DiscreteFrechet(), config), path)
        return SearchService(path)
    raise AssertionError(backend)


def search_body(spec, query, **extra):
    body = {"query": spec.describe(), "sequence": sequence_to_wire(query)}
    body.update(extra)
    return body


# --------------------------------------------------------------------- #
# In-process ASGI harness
# --------------------------------------------------------------------- #
def asgi_request(app, method, path, payload=None, raw_body=None):
    """Drive the ASGI app directly; returns ``(status, decoded_json)``."""

    async def run():
        if raw_body is not None:
            body = raw_body
        elif payload is not None:
            body = json.dumps(payload).encode("utf-8")
        else:
            body = b""
        inbox = [
            {"type": "http.request", "body": body, "more_body": False},
            {"type": "http.disconnect"},
        ]
        outbox = []

        async def receive():
            return inbox.pop(0)

        async def send(message):
            outbox.append(message)

        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method,
            "path": path,
            "raw_path": path.encode("utf-8"),
            "query_string": b"",
            "headers": [(b"content-type", b"application/json")],
            "server": ("testserver", 80),
            "client": ("testclient", 1),
        }
        await app(scope, receive, send)
        status = outbox[0]["status"]
        raw = b"".join(
            m.get("body", b"") for m in outbox if m["type"] == "http.response.body"
        )
        return status, json.loads(raw.decode("utf-8")) if raw else None

    return asyncio.run(run())


# --------------------------------------------------------------------- #
# Wire parity: HTTP POST /search == in-process execute, all backends
# --------------------------------------------------------------------- #
class TestSearchParity:
    @pytest.mark.parametrize("backend", ["plain", "sharded", "snapshot"])
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.kind)
    def test_http_envelope_is_byte_identical(
        self, planted_db, pattern_query, config, tmp_path, backend, spec
    ):
        # Two independent, identically-built services: a shared one would
        # leak warm distance caches into the second run's work counters.
        served = make_service(planted_db, config, backend, tmp_path)
        reference = make_service(planted_db, config, backend, tmp_path)

        app = SearchApp(served)
        status, envelope = asgi_request(
            app,
            "POST",
            "/search",
            search_body(spec, pattern_query, include_timings=False),
        )
        assert status == 200

        result = reference.execute_many([spec.bind(pattern_query)])[0]
        expected = result_envelope(result, reference, include_timings=False)
        # ``repro search --json --no-timings`` prints exactly ``expected``
        # (the CLI delegates to the same result_envelope; see test_cli.py),
        # so this also proves CLI <-> HTTP byte parity.
        assert canonical_json(envelope) == canonical_json(expected)

    def test_request_id_and_origin_are_echoed(self, planted_db, pattern_query, config):
        app = SearchApp(make_service(planted_db, config, "plain"))
        status, envelope = asgi_request(
            app,
            "POST",
            "/search",
            search_body(
                TOPK,
                pattern_query,
                request_id="req-9",
                query_origin={"source_id": "with-pattern-1", "offset": 8},
            ),
        )
        assert status == 200
        assert envelope["request_id"] == "req-9"
        assert envelope["query_origin"] == {"source_id": "with-pattern-1", "offset": 8}

    def test_executor_override_over_the_wire(self, planted_db, pattern_query, config):
        app = SearchApp(make_service(planted_db, config, "plain"))
        status, envelope = asgi_request(
            app,
            "POST",
            "/search",
            search_body(TOPK, pattern_query, executor="thread", workers=2),
        )
        assert status == 200
        assert envelope["stats"]["executor"] == "thread"
        assert envelope["stats"]["workers"] == 2
        # The override never leaks into the served backend's configuration.
        assert app.service.backend.config.executor == config.executor

    def test_batch_matches_sequential_singles(self, planted_db, pattern_query, config):
        served = SearchApp(make_service(planted_db, config, "plain"))
        reference = make_service(planted_db, config, "plain")

        specs = [TOPK, RangeQuery(radius=0.5)]
        status, payload = asgi_request(
            served,
            "POST",
            "/search/batch",
            {
                "requests": [
                    search_body(spec, pattern_query, include_timings=False)
                    for spec in specs
                ]
            },
        )
        assert status == 200
        assert len(payload["results"]) == 2

        # The reference executes the same specs in the same order on one
        # service, so cache warm-up history matches the batch's.
        for spec, envelope in zip(specs, payload["results"]):
            result = reference.execute_many([spec.bind(pattern_query)])[0]
            expected = result_envelope(result, reference, include_timings=False)
            assert canonical_json(envelope) == canonical_json(expected)


# --------------------------------------------------------------------- #
# Operational endpoints
# --------------------------------------------------------------------- #
class TestHealthAndMetrics:
    def test_health_on_live_backend(self, planted_db, config):
        app = SearchApp(make_service(planted_db, config, "plain"), max_in_flight=9)
        status, payload = asgi_request(app, "GET", "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["schema_version"] == 2
        assert 1 in payload["accepted_schema_versions"]
        assert payload["loaded"] is True
        assert payload["snapshot"] is None
        assert payload["in_flight"] == 0
        assert payload["max_in_flight"] == 9

    def test_health_never_forces_the_snapshot_load(
        self, planted_db, pattern_query, config, tmp_path
    ):
        service = make_service(planted_db, config, "snapshot", tmp_path)
        app = SearchApp(service)
        status, payload = asgi_request(app, "GET", "/health")
        assert status == 200
        assert payload["loaded"] is False
        assert payload["snapshot"].endswith("matcher.npz")
        assert service._backend is None  # still nothing read from disk
        asgi_request(app, "POST", "/search", search_body(TOPK, pattern_query))
        assert asgi_request(app, "GET", "/health")[1]["loaded"] is True

    def test_metrics_counters_and_latency(self, planted_db, pattern_query, config):
        app = SearchApp(make_service(planted_db, config, "plain"))
        for _ in range(2):
            status, _ = asgi_request(
                app, "POST", "/search", search_body(TOPK, pattern_query)
            )
            assert status == 200
        asgi_request(app, "POST", "/search", raw_body=b"not json")

        status, payload = asgi_request(app, "GET", "/metrics")
        assert status == 200
        assert payload["queries_served"] == 2
        assert payload["parse_errors"] == 1
        assert payload["query_errors"] == 0
        assert payload["in_flight"] == 0
        latency = payload["latency"]
        assert latency["window"] == 2
        assert latency["p50_seconds"] > 0
        assert latency["p99_seconds"] >= latency["p50_seconds"]
        cache = payload["cache"]
        # The second identical query hits the warm distance cache.
        assert cache["index_cache_hits"] > 0
        assert 0.0 < cache["index_hit_rate"] <= 1.0

    def test_metrics_object_is_shareable(self, planted_db, config):
        metrics = ServerMetrics()
        app = SearchApp(make_service(planted_db, config, "plain"), metrics=metrics)
        assert app.metrics is metrics
        assert metrics.snapshot()["queries_served"] == 0


# --------------------------------------------------------------------- #
# Mutations over HTTP
# --------------------------------------------------------------------- #
class TestMutationEndpoints:
    def grown_sequence(self):
        generator = np.random.default_rng(99)
        return Sequence.from_values(generator.uniform(0, 1, 30), seq_id="grown")

    def test_add_then_remove_round_trips_fingerprint(
        self, planted_db, pattern_query, config
    ):
        app = SearchApp(make_service(planted_db, config, "plain"))
        before = app.service.fingerprint()

        status, payload = asgi_request(
            app,
            "POST",
            "/sequences",
            {"sequence": sequence_to_wire(self.grown_sequence())},
        )
        assert status == 200
        assert payload["seq_id"] == "grown"
        assert payload["sequences"] == 4
        assert payload["fingerprint"] != before

        # The grown corpus still answers queries over HTTP.
        status, envelope = asgi_request(
            app, "POST", "/search", search_body(TOPK, pattern_query)
        )
        assert status == 200 and len(envelope["matches"]) == 3

        status, payload = asgi_request(app, "DELETE", "/sequences/grown")
        assert status == 200
        assert payload["removed_length"] == 30
        assert payload["sequences"] == 3
        assert payload["fingerprint"] == before

    def test_duplicate_add_is_409(self, planted_db, config):
        app = SearchApp(make_service(planted_db, config, "plain"))
        body = {"sequence": sequence_to_wire(self.grown_sequence())}
        assert asgi_request(app, "POST", "/sequences", body)[0] == 200
        status, payload = asgi_request(app, "POST", "/sequences", body)
        assert status == 409
        assert "grown" in payload["error"]

    def test_remove_unknown_is_404(self, planted_db, config):
        app = SearchApp(make_service(planted_db, config, "plain"))
        status, payload = asgi_request(app, "DELETE", "/sequences/absent")
        assert status == 404
        assert "error" in payload

    def test_snapshot_endpoint_persists_mutations(
        self, planted_db, pattern_query, config, tmp_path
    ):
        service = make_service(planted_db, config, "snapshot", tmp_path)
        app = SearchApp(service)
        asgi_request(
            app,
            "POST",
            "/sequences",
            {"sequence": sequence_to_wire(self.grown_sequence())},
        )
        status, payload = asgi_request(app, "POST", "/snapshots", {})
        assert status == 200
        assert payload["path"].endswith("matcher.npz")

        reloaded = SearchService(tmp_path / "matcher.npz")
        assert reloaded.fingerprint() == service.fingerprint()
        assert len(reloaded.backend.database) == 4

    def test_snapshot_endpoint_explicit_path(self, planted_db, config, tmp_path):
        app = SearchApp(make_service(planted_db, config, "plain"))
        target = tmp_path / "explicit.npz"
        status, payload = asgi_request(
            app, "POST", "/snapshots", {"path": str(target)}
        )
        assert status == 200
        assert payload["path"] == str(target)
        assert target.exists()

    def test_snapshot_endpoint_without_path_is_400(self, planted_db, config):
        app = SearchApp(make_service(planted_db, config, "plain"))
        status, payload = asgi_request(app, "POST", "/snapshots", {})
        assert status == 400
        assert "error" in payload


# --------------------------------------------------------------------- #
# Error paths
# --------------------------------------------------------------------- #
class TestErrorPaths:
    @pytest.fixture
    def app(self, planted_db, config):
        return SearchApp(make_service(planted_db, config, "plain"))

    def test_malformed_json_is_400_envelope(self, app):
        status, envelope = asgi_request(app, "POST", "/search", raw_body=b"{nope")
        assert status == 400
        assert "not valid JSON" in envelope["error"]
        assert envelope["schema_version"] == 2
        assert envelope["matches"] == []

    def test_empty_body_is_400(self, app):
        status, envelope = asgi_request(app, "POST", "/search")
        assert status == 400
        assert "empty" in envelope["error"]

    def test_unknown_request_field_is_400_with_request_id(self, app, pattern_query):
        status, envelope = asgi_request(
            app,
            "POST",
            "/search",
            search_body(TOPK, pattern_query, request_id="bad-1", priority="high"),
        )
        assert status == 400
        assert "unknown request field" in envelope["error"]
        assert envelope["request_id"] == "bad-1"

    def test_invalid_spec_is_400(self, app, pattern_query):
        body = search_body(TopKQuery(k=1, max_radius=1.0), pattern_query)
        body["query"] = {"type": "topk", "k": 0, "max_radius": 1.0}
        status, envelope = asgi_request(app, "POST", "/search", body)
        assert status == 400
        assert "k must be >= 1" in envelope["error"]

    def test_failed_query_is_422_with_its_own_stats(self, app):
        alien = Sequence.from_values(np.full(20, 500.0), seq_id="alien")
        status, envelope = asgi_request(
            app,
            "POST",
            "/search",
            search_body(TopKQuery(k=1, max_radius=0.01), alien),
        )
        assert status == 422
        assert envelope["error"] is not None
        assert envelope["matches"] == []
        assert envelope["stats"]["passes"] > 0  # the failed sweep's own work
        assert app.metrics.snapshot()["query_errors"] == 1

    def test_unknown_route_is_404(self, app):
        status, payload = asgi_request(app, "GET", "/nope")
        assert status == 404
        assert "unknown route" in payload["error"]

    def test_wrong_method_is_405(self, app):
        status, payload = asgi_request(app, "GET", "/search")
        assert status == 405
        assert "use POST" in payload["error"]
        assert asgi_request(app, "POST", "/health")[0] == 405

    def test_capacity_rejection_is_503(self, app, pattern_query):
        app._in_flight = app.max_in_flight  # saturate admission
        try:
            status, envelope = asgi_request(
                app, "POST", "/search", search_body(TOPK, pattern_query)
            )
        finally:
            app._in_flight = 0
        assert status == 503
        assert "capacity" in envelope["error"]
        assert app.metrics.snapshot()["rejected"] == 1

    def test_timeout_is_504(self, app, pattern_query, monkeypatch):
        import time as time_module

        real_execute_many = app.service.execute_many

        def slow_execute_many(*args, **kwargs):
            time_module.sleep(0.4)
            return real_execute_many(*args, **kwargs)

        monkeypatch.setattr(app.service, "execute_many", slow_execute_many)
        status, envelope = asgi_request(
            app,
            "POST",
            "/search",
            search_body(TOPK, pattern_query, timeout=0.05, request_id="late"),
        )
        assert status == 504
        assert "deadline" in envelope["error"]
        assert envelope["request_id"] == "late"
        assert app.metrics.snapshot()["timeouts"] == 1

    def test_batch_entry_errors_name_the_position(self, app, pattern_query):
        status, payload = asgi_request(
            app,
            "POST",
            "/search/batch",
            {
                "requests": [
                    search_body(TOPK, pattern_query),
                    {"query": {"type": "fuzzy"}},
                ]
            },
        )
        assert status == 400
        assert "batch entry 1" in payload["error"]

    def test_batch_empty_and_oversized_are_400(self, app, pattern_query):
        assert asgi_request(app, "POST", "/search/batch", {"requests": []})[0] == 400
        small = SearchApp(app.service, max_batch=1)
        entry = search_body(TOPK, pattern_query)
        status, payload = asgi_request(
            small, "POST", "/search/batch", {"requests": [entry, entry]}
        )
        assert status == 400
        assert "cap" in payload["error"]

    def test_add_sequence_malformed_body_is_400(self, app):
        assert asgi_request(app, "POST", "/sequences", {"nope": 1})[0] == 400
        status, payload = asgi_request(
            app, "POST", "/sequences", {"sequence": {"kind": "video", "values": [1]}}
        )
        assert status == 400
        assert "unknown sequence kind" in payload["error"]


# --------------------------------------------------------------------- #
# The real socket: stdlib server + concurrency guarantee
# --------------------------------------------------------------------- #
class TestLiveServer:
    def test_round_trip_over_a_real_socket(self, planted_db, pattern_query, config):
        service = make_service(planted_db, config, "plain")
        with BackgroundServer(SearchApp(service)) as server:
            status, payload = server.request_json("GET", "/health")
            assert status == 200 and payload["status"] == "ok"

            status, envelope = server.request_json(
                "POST", "/search", search_body(TOPK, pattern_query)
            )
            assert status == 200
            assert len(envelope["matches"]) == 3

            status, payload = server.request_json("GET", "/nope")
            assert status == 404

    def test_sustains_eight_concurrent_queries_identical_to_serial(
        self, planted_db, pattern_query, config
    ):
        clients = 10
        body = search_body(TOPK, pattern_query, include_timings=False)

        # Serial reference: same requests, one at a time, fresh service.
        serial_service = make_service(planted_db, config, "plain")
        with BackgroundServer(SearchApp(serial_service)) as server:
            serial = [
                server.request_json("POST", "/search", body) for _ in range(clients)
            ]
        assert all(status == 200 for status, _ in serial)

        concurrent_service = make_service(planted_db, config, "plain")
        app = SearchApp(concurrent_service, max_in_flight=16)
        responses = [None] * clients
        barrier = threading.Barrier(clients)

        def fire(position, server):
            barrier.wait()
            responses[position] = server.request_json("POST", "/search", body)

        with BackgroundServer(app) as server:
            # Hold the service lock so every admitted query queues behind
            # it: the in-flight gauge must reach all 10 clients at once.
            with concurrent_service._lock:
                threads = [
                    threading.Thread(target=fire, args=(position, server))
                    for position in range(clients)
                ]
                for thread in threads:
                    thread.start()
                deadline = 10.0
                import time as time_module

                started = time_module.perf_counter()
                peak = 0
                while time_module.perf_counter() - started < deadline:
                    peak = max(peak, server.request_json("GET", "/health")[1]["in_flight"])
                    if peak >= clients:
                        break
                assert peak >= 8, f"never saw 8 queries in flight (peak {peak})"
            for thread in threads:
                thread.join(timeout=30)
        assert all(response is not None for response in responses)
        assert all(status == 200 for status, _ in responses)

        # Byte-identical to the serial run.  All requests are the same, so
        # compare as multisets: the first query on each server computes
        # distances cold, the rest replay the warm cache identically.
        serial_bytes = sorted(canonical_json(envelope) for _, envelope in serial)
        concurrent_bytes = sorted(
            canonical_json(envelope) for _, envelope in responses
        )
        assert concurrent_bytes == serial_bytes


# --------------------------------------------------------------------- #
# Optional smoke against an externally launched `repro serve`
# --------------------------------------------------------------------- #
@pytest.mark.skipif(
    "REPRO_SERVER_URL" not in os.environ,
    reason="set REPRO_SERVER_URL to smoke-test a live `repro serve` process",
)
class TestExternalServer:
    """CI starts `repro serve` and points REPRO_SERVER_URL at it."""

    def request(self, method, path, payload=None):
        import http.client
        import urllib.parse

        parsed = urllib.parse.urlparse(os.environ["REPRO_SERVER_URL"])
        connection = http.client.HTTPConnection(
            parsed.hostname, parsed.port or 80, timeout=30
        )
        try:
            body = None if payload is None else json.dumps(payload).encode("utf-8")
            connection.request(
                method, path, body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            raw = response.read()
            return response.status, json.loads(raw.decode("utf-8")) if raw else None
        finally:
            connection.close()

    def test_health(self):
        status, payload = self.request("GET", "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["schema_version"] == 2

    def test_search_round_trip(self):
        generator = np.random.default_rng(5)
        query = Sequence.from_values(
            np.cumsum(generator.normal(size=30)), seq_id="smoke"
        )
        status, envelope = self.request(
            "POST",
            "/search",
            search_body(TopKQuery(k=1, max_radius=50.0), query, request_id="smoke-1"),
        )
        # The external corpus is arbitrary: a clean answer or a clean
        # query-failure envelope are both healthy outcomes.
        assert status in (200, 422)
        assert envelope["schema_version"] == 2
        assert envelope["request_id"] == "smoke-1"
        assert envelope["config"]["fingerprint"]

    def test_parse_error_envelope(self):
        status, envelope = self.request("POST", "/search", {"query": {"type": "fuzzy"}})
        assert status == 400
        assert "error" in envelope and envelope["error"]

    def test_metrics(self):
        status, payload = self.request("GET", "/metrics")
        assert status == 200
        assert payload["queries_served"] >= 1
