"""Tests for the Reference Net index."""

import numpy as np
import pytest

from repro import (
    DTW,
    DistanceError,
    Euclidean,
    IndexError_,
    Levenshtein,
    LinearScanIndex,
    ReferenceNet,
)


def build(points, **kwargs):
    net = ReferenceNet(Euclidean(), **kwargs)
    for position, point in enumerate(points):
        net.add(point, key=position)
    return net


@pytest.fixture
def clustered_points(rng):
    centres = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    points = []
    for _ in range(90):
        centre = centres[rng.integers(3)]
        points.append(centre + rng.normal(scale=0.5, size=2))
    return points


class TestConstruction:
    def test_rejects_non_metric_distance(self):
        with pytest.raises(DistanceError):
            ReferenceNet(DTW())

    def test_rejects_invalid_eps_prime(self):
        with pytest.raises(IndexError_):
            ReferenceNet(Euclidean(), eps_prime=0.0)

    def test_rejects_invalid_nummax(self):
        with pytest.raises(IndexError_):
            ReferenceNet(Euclidean(), nummax=0)

    def test_radius_doubles_per_level(self):
        net = ReferenceNet(Euclidean(), eps_prime=0.5)
        assert net.radius(0) == 0.5
        assert net.radius(3) == 4.0


class TestInsertion:
    def test_single_item_is_root(self):
        net = build([[0.0, 0.0]])
        assert len(net) == 1
        assert net.root_key == 0

    def test_duplicate_key_rejected(self):
        net = build([[0.0, 0.0]])
        with pytest.raises(IndexError_):
            net.add([1.0, 1.0], key=0)

    def test_invariants_hold_after_many_insertions(self, clustered_points):
        net = build(clustered_points)
        net.check_invariants()

    def test_root_level_rises_for_far_items(self):
        net = build([[0.0, 0.0], [100.0, 0.0]])
        assert net.radius(net.max_level) >= 100.0
        net.check_invariants()

    def test_identical_items_are_all_stored(self):
        net = build([[1.0, 1.0]] * 5)
        assert len(net) == 5
        net.check_invariants()

    def test_every_key_queryable_at_zero_radius(self, clustered_points):
        net = build(clustered_points[:40])
        for position, point in enumerate(clustered_points[:40]):
            keys = {match.key for match in net.range_query(point, 1e-9)}
            assert position in keys

    def test_level_of(self, clustered_points):
        net = build(clustered_points[:20])
        for key in range(20):
            assert net.level_of(key) >= 0
        with pytest.raises(IndexError_):
            net.level_of(999)

    def test_nummax_caps_parent_count(self, clustered_points):
        net = build(clustered_points, nummax=2)
        net.check_invariants()
        stats = net.stats()
        assert stats.average_parents <= 2.0 + 1e-9

    def test_auto_keys(self):
        net = ReferenceNet(Euclidean())
        first = net.add([0.0, 0.0])
        second = net.add([1.0, 1.0])
        assert first != second


class TestRangeQuery:
    def test_matches_linear_scan(self, clustered_points):
        net = build(clustered_points)
        scan = LinearScanIndex(Euclidean())
        for position, point in enumerate(clustered_points):
            scan.add(point, key=position)
        for radius in (0.1, 0.7, 2.0, 11.0, 50.0):
            query = clustered_points[5]
            expected = sorted(match.key for match in scan.range_query(query, radius))
            actual = sorted(match.key for match in net.range_query(query, radius))
            assert actual == expected, f"radius={radius}"

    def test_external_query_object(self, clustered_points):
        net = build(clustered_points)
        scan = LinearScanIndex(Euclidean())
        for position, point in enumerate(clustered_points):
            scan.add(point, key=position)
        query = np.array([5.0, 5.0])
        expected = sorted(match.key for match in scan.range_query(query, 8.0))
        actual = sorted(match.key for match in net.range_query(query, 8.0))
        assert actual == expected

    def test_reported_distances_are_correct(self, clustered_points):
        net = build(clustered_points)
        query = clustered_points[0]
        distance = Euclidean()
        for match in net.range_query(query, 3.0):
            if match.distance is not None:
                assert match.distance == pytest.approx(distance(query, net.get(match.key)))
            # Triangle-inequality-only matches must still be within range.
            assert distance(query, net.get(match.key)) <= 3.0 + 1e-9

    def test_prunes_relative_to_linear_scan(self, clustered_points):
        net = build(clustered_points)
        net.counter.reset()
        net.range_query(clustered_points[0], 1.0)
        assert net.counter.total < len(clustered_points)

    def test_empty_net(self):
        net = ReferenceNet(Euclidean())
        assert net.range_query([0.0, 0.0], 1.0) == []

    def test_negative_radius_rejected(self, clustered_points):
        net = build(clustered_points[:5])
        with pytest.raises(IndexError_):
            net.range_query([0.0, 0.0], -0.1)

    def test_huge_radius_returns_everything(self, clustered_points):
        net = build(clustered_points)
        matches = net.range_query([0.0, 0.0], 1e6)
        assert len(matches) == len(clustered_points)

    def test_works_with_levenshtein(self):
        from repro import PROTEIN_ALPHABET, Sequence

        words = ["ACDEFGHIKL", "ACDEFGHIKV", "MNPQRSTVWY", "MNPQRSTVWA", "ACDEFGHIKL"]
        net = ReferenceNet(Levenshtein())
        scan = LinearScanIndex(Levenshtein())
        for position, word in enumerate(words):
            item = Sequence.from_string(word, PROTEIN_ALPHABET)
            net.add(item, key=position)
            scan.add(item, key=position)
        query = Sequence.from_string("ACDEFGHIKL", PROTEIN_ALPHABET)
        expected = sorted(match.key for match in scan.range_query(query, 1.0))
        actual = sorted(match.key for match in net.range_query(query, 1.0))
        assert actual == expected


class TestDeletion:
    def test_remove_leaf(self, clustered_points):
        net = build(clustered_points[:30])
        net.remove(7)
        assert 7 not in net
        assert len(net) == 29
        net.check_invariants()

    def test_remove_missing_raises(self, clustered_points):
        net = build(clustered_points[:5])
        with pytest.raises(IndexError_):
            net.remove(999)

    def test_remove_root_rebuilds(self, clustered_points):
        net = build(clustered_points[:30])
        root = net.root_key
        net.remove(root)
        assert root not in net
        assert len(net) == 29
        net.check_invariants()

    def test_remove_all(self, clustered_points):
        net = build(clustered_points[:15])
        for key in range(15):
            net.remove(key)
        assert len(net) == 0

    def test_query_correct_after_deletions(self, clustered_points, rng):
        points = clustered_points[:40]
        net = build(points)
        removed = {3, 11, 19, 25}
        for key in removed:
            net.remove(key)
        net.check_invariants()
        scan = LinearScanIndex(Euclidean())
        for position, point in enumerate(points):
            if position not in removed:
                scan.add(point, key=position)
        query = points[0]
        expected = sorted(match.key for match in scan.range_query(query, 2.0))
        actual = sorted(match.key for match in net.range_query(query, 2.0))
        assert actual == expected

    def test_reinsert_after_remove(self, clustered_points):
        net = build(clustered_points[:10])
        item = net.remove(4)
        net.add(item, key=4)
        assert 4 in net
        net.check_invariants()


class TestStats:
    def test_node_count_matches_size(self, clustered_points):
        net = build(clustered_points)
        assert net.stats().node_count == len(clustered_points)

    def test_space_grows_linearly(self, clustered_points):
        net = ReferenceNet(Euclidean())
        sizes = []
        for position, point in enumerate(clustered_points):
            net.add(point, key=position)
            if position + 1 in (30, 60, 90):
                sizes.append(net.stats().parent_link_count)
        assert sizes[0] < sizes[1] < sizes[2]
        # Roughly linear: the last third should not explode quadratically.
        assert sizes[2] <= 4 * sizes[0] + 10

    def test_level_histogram_sums_to_nodes(self, clustered_points):
        net = build(clustered_points)
        stats = net.stats()
        assert sum(stats.level_histogram.values()) == stats.node_count

    def test_estimated_size_positive(self, clustered_points):
        stats = build(clustered_points[:10]).stats()
        assert stats.estimated_size_bytes > 0
        assert stats.estimated_size_mb > 0

    def test_exclusivity_violation_count_is_finite(self, clustered_points):
        net = build(clustered_points[:30])
        assert net.exclusivity_violations() >= 0

    def test_repr(self, clustered_points):
        net = build(clustered_points[:5], nummax=3)
        text = repr(net)
        assert "nummax=3" in text and "euclidean" in text
