"""Tests for the discrete Fréchet distance."""

import pytest

from repro import DiscreteFrechet, Sequence
from repro.distances.base import ElementMetric


class TestFrechetValues:
    def test_identical_sequences(self):
        assert DiscreteFrechet()([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_time_shift_absorbed(self):
        long = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0]
        short = [1.0, 2.0, 3.0]
        assert DiscreteFrechet()(long, short) == 0.0

    def test_bottleneck_not_sum(self):
        # Two mismatches of size 1 each: DFD is 1 (max), not 2 (sum).
        a = [0.0, 5.0, 10.0]
        b = [1.0, 5.0, 11.0]
        assert DiscreteFrechet()(a, b) == pytest.approx(1.0)

    def test_constant_offset(self):
        a = [0.0, 1.0, 2.0]
        b = [3.0, 4.0, 5.0]
        assert DiscreteFrechet()(a, b) == pytest.approx(3.0)

    def test_trajectory_distance(self):
        a = Sequence.from_points([[0, 0], [1, 0], [2, 0]])
        b = Sequence.from_points([[0, 1], [1, 1], [2, 1]])
        assert DiscreteFrechet()(a, b) == pytest.approx(1.0)

    def test_classic_leash_example(self):
        # The dog walks straight; the owner detours. The leash must span
        # the largest simultaneous separation.
        dog = Sequence.from_points([[0, 0], [1, 0], [2, 0], [3, 0]])
        owner = Sequence.from_points([[0, 1], [1, 3], [2, 1], [3, 1]])
        assert DiscreteFrechet()(dog, owner) == pytest.approx(3.0)

    def test_manhattan_element_metric(self):
        distance = DiscreteFrechet(element_metric=ElementMetric("manhattan"))
        a = Sequence.from_points([[0.0, 0.0]])
        b = Sequence.from_points([[1.0, 2.0]])
        assert distance(a, b) == pytest.approx(3.0)


class TestFrechetProperties:
    def test_symmetry(self, rng):
        distance = DiscreteFrechet()
        for _ in range(20):
            a = rng.normal(size=rng.integers(2, 6))
            b = rng.normal(size=rng.integers(2, 6))
            assert distance(a, b) == pytest.approx(distance(b, a))

    def test_triangle_inequality_sampled(self, rng):
        distance = DiscreteFrechet()
        for _ in range(25):
            a = rng.normal(size=rng.integers(2, 6))
            b = rng.normal(size=rng.integers(2, 6))
            c = rng.normal(size=rng.integers(2, 6))
            assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-9

    def test_never_below_endpoint_costs(self, rng):
        distance = DiscreteFrechet()
        for _ in range(20):
            a = rng.normal(size=4)
            b = rng.normal(size=6)
            assert distance.lower_bound(a, b) <= distance(a, b) + 1e-12

    def test_flags(self):
        distance = DiscreteFrechet()
        assert distance.is_metric and distance.is_consistent

    def test_alignment_cost_matches_distance(self):
        distance = DiscreteFrechet()
        a = [0.0, 2.0, 4.0]
        b = [0.0, 4.0]
        alignment = distance.alignment(a, b)
        assert alignment.cost == pytest.approx(distance(a, b))
        assert alignment.covers_all_indices(3, 2)

    def test_dfd_at_most_dtw(self, rng):
        # The maximum coupling cost can never exceed the sum of couplings of
        # the DTW-optimal path, so DFD <= DTW always.
        from repro import DTW

        dtw = DTW()
        dfd = DiscreteFrechet()
        for _ in range(15):
            a = rng.normal(size=5)
            b = rng.normal(size=6)
            assert dfd(a, b) <= dtw(a, b) + 1e-9

    def test_repr(self):
        assert "element_metric" in repr(DiscreteFrechet())
