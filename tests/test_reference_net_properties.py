"""Property-based tests for the Reference Net.

The essential contract: for any set of points, any query, and any radius,
the reference net's range query returns exactly the same keys as a linear
scan.  Structural invariants must also survive arbitrary insert/delete
interleavings.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import Euclidean, LinearScanIndex, ReferenceNet

coordinates = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)
points_strategy = st.lists(
    st.tuples(coordinates, coordinates), min_size=1, max_size=40
)
radii = st.floats(min_value=0.0, max_value=60.0, allow_nan=False, allow_infinity=False)


def _build_pair(points, **net_kwargs):
    net = ReferenceNet(Euclidean(), **net_kwargs)
    scan = LinearScanIndex(Euclidean())
    for position, point in enumerate(points):
        array = np.array(point)
        net.add(array, key=position)
        scan.add(array, key=position)
    return net, scan


class TestRangeQueryEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(points=points_strategy, radius=radii, query_index=st.integers(min_value=0, max_value=39))
    def test_matches_linear_scan(self, points, radius, query_index):
        net, scan = _build_pair(points)
        query = np.array(points[query_index % len(points)])
        expected = sorted(match.key for match in scan.range_query(query, radius))
        actual = sorted(match.key for match in net.range_query(query, radius))
        assert actual == expected

    @settings(max_examples=25, deadline=None)
    @given(points=points_strategy, radius=radii)
    def test_matches_linear_scan_external_query(self, points, radius):
        net, scan = _build_pair(points)
        query = np.array([1.0, -1.0])
        expected = sorted(match.key for match in scan.range_query(query, radius))
        actual = sorted(match.key for match in net.range_query(query, radius))
        assert actual == expected

    @settings(max_examples=25, deadline=None)
    @given(points=points_strategy, radius=radii, nummax=st.integers(min_value=1, max_value=4))
    def test_nummax_preserves_correctness(self, points, radius, nummax):
        net, scan = _build_pair(points, nummax=nummax)
        query = np.array(points[0])
        expected = sorted(match.key for match in scan.range_query(query, radius))
        actual = sorted(match.key for match in net.range_query(query, radius))
        assert actual == expected

    @settings(max_examples=25, deadline=None)
    @given(
        points=points_strategy,
        eps_prime=st.floats(min_value=0.1, max_value=8.0, allow_nan=False),
        radius=radii,
    )
    def test_eps_prime_preserves_correctness(self, points, eps_prime, radius):
        net, scan = _build_pair(points, eps_prime=eps_prime)
        query = np.array(points[-1])
        expected = sorted(match.key for match in scan.range_query(query, radius))
        actual = sorted(match.key for match in net.range_query(query, radius))
        assert actual == expected


class TestStructuralInvariants:
    @settings(max_examples=30, deadline=None)
    @given(points=points_strategy)
    def test_invariants_after_insertion(self, points):
        net, _ = _build_pair(points)
        net.check_invariants()

    @settings(max_examples=25, deadline=None)
    @given(
        points=points_strategy,
        removals=st.lists(st.integers(min_value=0, max_value=39), max_size=10),
    )
    def test_invariants_and_correctness_after_deletions(self, points, removals):
        net, _ = _build_pair(points)
        remaining = dict(enumerate(points))
        for key in removals:
            key = key % len(points)
            if key in remaining and len(remaining) > 1:
                net.remove(key)
                del remaining[key]
        net.check_invariants()
        assert len(net) == len(remaining)
        scan = LinearScanIndex(Euclidean())
        for key, point in remaining.items():
            scan.add(np.array(point), key=key)
        query = np.array(next(iter(remaining.values())))
        expected = sorted(match.key for match in scan.range_query(query, 5.0))
        actual = sorted(match.key for match in net.range_query(query, 5.0))
        assert actual == expected

    @settings(max_examples=30, deadline=None)
    @given(points=points_strategy)
    def test_every_node_linked(self, points):
        net, _ = _build_pair(points)
        stats = net.stats()
        # Each node except the root has at least one parent (inclusive property).
        assert stats.parent_link_count >= len(points) - 1

    @settings(max_examples=30, deadline=None)
    @given(points=points_strategy, nummax=st.integers(min_value=1, max_value=5))
    def test_nummax_bounds_space_linearly(self, points, nummax):
        net, _ = _build_pair(points, nummax=nummax)
        stats = net.stats()
        # The paper's nummax cap guarantees at most nummax parents per node,
        # i.e. linear space with a controllable constant.
        assert stats.parent_link_count <= nummax * max(len(points) - 1, 1)
