"""Tests for the Levenshtein and weighted Levenshtein distances."""

import pytest

from repro import DNA_ALPHABET, DistanceError, Levenshtein, PROTEIN_ALPHABET, Sequence, WeightedLevenshtein


def seq(text, alphabet=DNA_ALPHABET):
    return Sequence.from_string(text, alphabet)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "first, second, expected",
        [
            ("ACGT", "ACGT", 0),
            ("ACGT", "ACGA", 1),
            ("ACGT", "ACG", 1),
            ("ACGT", "CGT", 1),
            ("A", "T", 1),
            ("ACGT", "TGCA", 4),
            ("AAAA", "AA", 2),
            ("GATTACA", "GCATGCT", 4),
        ],
    )
    def test_known_values(self, first, second, expected):
        assert Levenshtein()(seq(first), seq(second)) == expected

    def test_symmetry(self):
        distance = Levenshtein()
        a, b = seq("ACGGTAC"), seq("TACGGA")
        assert distance(a, b) == distance(b, a)

    def test_length_difference_lower_bound(self):
        distance = Levenshtein()
        a, b = seq("ACGTACGT"), seq("ACG")
        assert distance.lower_bound(a, b) == 5
        assert distance.lower_bound(a, b) <= distance(a, b)

    def test_flags(self):
        distance = Levenshtein()
        assert distance.is_metric and distance.is_consistent
        assert distance.supports_unequal_lengths

    def test_alignment_couplings_cover_matched_positions(self):
        distance = Levenshtein()
        alignment = distance.alignment(seq("ACGT"), seq("AGT"))
        assert alignment.cost == 1
        # Couplings must be strictly increasing in both coordinates.
        for (i1, j1), (i2, j2) in zip(alignment.couplings, alignment.couplings[1:]):
            assert i2 > i1 and j2 > j1

    def test_works_on_protein_alphabet(self):
        a = Sequence.from_string("ACDEFG", PROTEIN_ALPHABET)
        b = Sequence.from_string("ACDQFG", PROTEIN_ALPHABET)
        assert Levenshtein()(a, b) == 1


class TestWeightedLevenshtein:
    def test_defaults_match_unit_costs(self):
        weighted = WeightedLevenshtein()
        plain = Levenshtein()
        a, b = seq("ACGTAC"), seq("AGTTC")
        assert weighted(a, b) == plain(a, b)

    def test_custom_substitution_cost(self):
        # Make A<->C substitutions cheap.
        costs = {(0, 1): 0.2, (1, 0): 0.2}
        weighted = WeightedLevenshtein(substitution_costs=costs)
        assert weighted(seq("A"), seq("C")) == pytest.approx(0.2)

    def test_custom_gap_costs(self):
        weighted = WeightedLevenshtein(insertion_cost=2.0, deletion_cost=3.0)
        assert weighted(seq("AC"), seq("ACG")) == pytest.approx(2.0)
        assert weighted(seq("ACG"), seq("AC")) == pytest.approx(3.0)

    def test_negative_costs_rejected(self):
        with pytest.raises(DistanceError):
            WeightedLevenshtein(insertion_cost=-1.0)
        with pytest.raises(DistanceError):
            WeightedLevenshtein(substitution_costs={(0, 1): -0.5})

    def test_metric_flag_is_caller_declared(self):
        assert not WeightedLevenshtein().is_metric
        assert WeightedLevenshtein(metric=True).is_metric

    def test_rejects_multidimensional_elements(self):
        trajectory = Sequence.from_points([[0, 0], [1, 1]])
        with pytest.raises(DistanceError):
            WeightedLevenshtein()(trajectory, trajectory)

    def test_consistency_flag(self):
        assert WeightedLevenshtein().is_consistent
