"""Admissibility tests for the registered lower bounds.

Every bound in :mod:`repro.distances.lower_bounds` must never exceed the
exact distance it applies to -- that is what makes prefilter pruning safe --
and the batched form must agree with the scalar form.
"""

import numpy as np
import pytest

from repro import DTW, EDR, ERP, DiscreteFrechet, Euclidean, Hamming, Levenshtein
from repro.distances import (
    WeightedLevenshtein,
    bounds_for,
    combined_batch_bound,
    combined_bound,
    registered_lower_bounds,
)
from repro.distances.base import ElementMetric, as_array

RNG = np.random.default_rng(99)

SERIES_DISTANCES = [
    DTW(),
    DTW(element_metric=ElementMetric("manhattan")),
    DTW(band=5),
    ERP(),
    ERP(gap=2.0),
    DiscreteFrechet(),
    EDR(epsilon=0.3),
]
STRING_DISTANCES = [
    Levenshtein(),
    WeightedLevenshtein(insertion_cost=0.5, deletion_cost=2.0),
]


def _random_series_pairs(count=40):
    pairs = []
    for _ in range(count):
        a = RNG.normal(size=int(RNG.integers(5, 30))) * RNG.uniform(0.5, 4.0)
        b = RNG.normal(size=int(RNG.integers(5, 30))) * RNG.uniform(0.5, 4.0)
        pairs.append((a, b))
    return pairs


def _random_trajectory_pairs(count=30):
    pairs = []
    for _ in range(count):
        a = RNG.normal(size=(int(RNG.integers(5, 20)), 2)) * 3.0
        b = RNG.normal(size=(int(RNG.integers(5, 20)), 2)) * 3.0
        pairs.append((a, b))
    return pairs


def _random_string_pairs(count=40):
    pairs = []
    for _ in range(count):
        a = RNG.integers(0, 5, size=int(RNG.integers(4, 25)))
        b = RNG.integers(0, 5, size=int(RNG.integers(4, 25)))
        pairs.append((a, b))
    return pairs


class TestAdmissibility:
    @pytest.mark.parametrize("distance", SERIES_DISTANCES, ids=lambda d: repr(d))
    def test_series_bounds_never_exceed_exact(self, distance):
        band = distance.band if isinstance(distance, DTW) else None
        for a, b in _random_series_pairs():
            if band is not None and abs(len(a) - len(b)) > band:
                continue  # infeasible band: compute() raises by design
            exact = distance(a, b)
            for bound in bounds_for(distance):
                value = bound.pair(distance, as_array(a), as_array(b))
                assert value <= exact + 1e-9, (bound.name, value, exact)

    @pytest.mark.parametrize(
        "distance",
        [DTW(), ERP(gap=[0.0, 0.0]), DiscreteFrechet()],
        ids=lambda d: d.name,
    )
    def test_trajectory_bounds_never_exceed_exact(self, distance):
        for a, b in _random_trajectory_pairs():
            exact = distance(a, b)
            assert combined_bound(distance, a, b) <= exact + 1e-9

    @pytest.mark.parametrize("distance", STRING_DISTANCES, ids=lambda d: d.name)
    def test_string_bounds_never_exceed_exact(self, distance):
        for a, b in _random_string_pairs():
            exact = distance(a, b)
            assert combined_bound(distance, a, b) <= exact + 1e-9

    def test_euclidean_norm_bound(self):
        distance = Euclidean()
        for _ in range(30):
            a = RNG.normal(size=15)
            b = RNG.normal(size=15)
            assert combined_bound(distance, a, b) <= distance(a, b) + 1e-9

    def test_kim_bound_admissible_for_single_element_pairs(self):
        # Both endpoints of a 1x1 pair are the same coupling: summing them
        # would double-count and exceed the exact DTW distance.
        distance = DTW()
        for _ in range(20):
            a = RNG.normal(size=1)
            b = RNG.normal(size=1)
            exact = distance(a, b)
            assert combined_bound(distance, a, b) <= exact + 1e-9
        batched = combined_batch_bound(
            distance, as_array(RNG.normal(size=1)), np.stack([as_array(RNG.normal(size=1))])
        )
        assert batched.shape == (1,)

    def test_tiny_window_matcher_results_unchanged_by_prefilter(self):
        # End-to-end guard for the 1x1 case: window_length 1 (min_length 2).
        from repro import (
            MatcherConfig,
            RangeQuery,
            Sequence,
            SequenceDatabase,
            SequenceKind,
            SubsequenceMatcher,
        )

        db = SequenceDatabase(SequenceKind.TIME_SERIES)
        db.add(Sequence.from_values(RNG.normal(size=12), seq_id="a"))
        db.add(Sequence.from_values(RNG.normal(size=12), seq_id="b"))
        query = Sequence.from_values(RNG.normal(size=6), seq_id="q")
        spec = RangeQuery(radius=1.5, exhaustive=True)
        results = {}
        for prefilter in (True, False):
            config = MatcherConfig(
                min_length=2, max_shift=0, index="linear-scan", prefilter=prefilter
            )
            matcher = SubsequenceMatcher(db, DTW(), config)
            found = matcher.range_search(query, spec)
            results[prefilter] = sorted(
                (m.source_id, m.query_start, m.query_stop, m.db_start, m.db_stop)
                for m in found
            )
        assert results[True] == results[False]

    def test_every_registered_bound_applies_somewhere(self):
        distances = SERIES_DISTANCES + STRING_DISTANCES + [Euclidean()]
        for bound in registered_lower_bounds():
            assert any(bound.applies_to(distance) for distance in distances), bound.name


class TestBatchAgreesWithScalar:
    @pytest.mark.parametrize(
        "distance",
        [DTW(), ERP(), DiscreteFrechet(), Levenshtein(), EDR(), Euclidean()],
        ids=lambda d: d.name,
    )
    def test_batch_bound_matches_pairwise(self, distance):
        query = as_array(RNG.normal(size=12))
        items = np.stack([RNG.normal(size=(12, 1)) for _ in range(10)])
        batched = combined_batch_bound(distance, query, items)
        for index in range(items.shape[0]):
            scalar = combined_bound(distance, query, items[index])
            assert batched[index] == pytest.approx(scalar, abs=1e-9)

    def test_batch_bound_on_trajectories(self):
        distance = DTW()
        query = as_array(RNG.normal(size=(10, 2)))
        items = np.stack([RNG.normal(size=(14, 2)) for _ in range(8)])
        batched = combined_batch_bound(distance, query, items)
        for index in range(items.shape[0]):
            assert batched[index] == pytest.approx(
                combined_bound(distance, query, items[index]), abs=1e-9
            )


class TestNoBoundsCases:
    def test_unbounded_distance_gets_zero(self):
        assert combined_bound(Hamming(), RNG.integers(0, 3, 8), RNG.integers(0, 3, 8)) == 0.0

    def test_batch_zero_for_unbounded_distance(self):
        items = np.stack([RNG.normal(size=(8, 1)) for _ in range(4)])
        values = combined_batch_bound(Hamming(), as_array(RNG.normal(size=8)), items)
        assert np.all(values == 0.0)
